// Shared bench infrastructure: table printing, standard LabStack
// definitions, and adapters that plug each benchmark subject (kernel
// API, kernel FS, LabStor stack) into the workload generators.
#pragma once

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/sim_runtime.h"
#include "kernelsim/access_api.h"
#include "kernelsim/kernel_fs.h"
#include "telemetry/telemetry.h"
#include "workload/target.h"

namespace labstor::bench {

// ---------------------------------------------------------------
// Output helpers: every bench prints the rows/series of its figure.
// ---------------------------------------------------------------

inline void PrintHeader(const std::string& title) {
  std::printf("\n==== %s ====\n", title.c_str());
}

class Table {
 public:
  explicit Table(std::vector<std::string> columns)
      : columns_(std::move(columns)) {}

  void AddRow(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  void Print() const {
    std::vector<size_t> widths(columns_.size());
    for (size_t c = 0; c < columns_.size(); ++c) widths[c] = columns_[c].size();
    for (const auto& row : rows_) {
      for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
        widths[c] = std::max(widths[c], row[c].size());
      }
    }
    const auto print_row = [&](const std::vector<std::string>& row) {
      for (size_t c = 0; c < row.size(); ++c) {
        std::printf("%-*s  ", static_cast<int>(widths[c]), row[c].c_str());
      }
      std::printf("\n");
    };
    print_row(columns_);
    for (const auto& row : rows_) print_row(row);
  }

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string Fmt(const char* format, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), format, value);
  return buf;
}

// Tail-latency summary over per-op samples. Every bench that reports a
// latency distribution uses this shape so the BENCH_*.json files stay
// comparable across benches.
struct TailStats {
  uint64_t count = 0;
  double mean = 0.0;
  double p50 = 0.0;
  double p99 = 0.0;
  double p999 = 0.0;
};

// Sorts a copy of `samples`; an empty input yields all-zero stats.
// Percentiles use the nearest-rank definition: rank = ceil(n * p)
// (1-based), so p50 of {1, 2} is 1 and p100-ish ranks clamp to max.
TailStats Summarize(std::vector<double> samples);

// RFC 8259 string quoting: escapes quote, backslash, and every control
// character (named escapes for \b \f \n \r \t, \u00XX otherwise), so a
// scenario or device name containing a newline cannot corrupt a
// BENCH_*.json file.
std::string JsonQuote(const std::string& s);

// Shared BENCH_<name>.json emitter:
//   {"bench": <name>, "meta": {...}, "series": {<series>: {k: v, ...}}}
// Fields keep insertion order. AddTail drops a TailStats under the
// standard keys (count, mean_ns, p50_ns, p99_ns, p999_ns).
class BenchJson {
 public:
  explicit BenchJson(std::string bench) : bench_(std::move(bench)) {}

  void Meta(const std::string& key, const std::string& value);
  void Meta(const std::string& key, double value, const char* format = "%.1f");
  void Add(const std::string& series, const std::string& key, uint64_t value);
  void Add(const std::string& series, const std::string& key, double value,
           const char* format = "%.1f");
  void AddTail(const std::string& series, const TailStats& stats);

  // Writes the file and prints `wrote <path>`; false on I/O failure.
  bool Write(const std::string& path) const;

 private:
  struct Series {
    std::string name;
    // key -> already-JSON-formatted value (number or quoted string).
    std::vector<std::pair<std::string, std::string>> fields;
  };
  Series& Find(const std::string& name);

  std::string bench_;
  std::vector<std::pair<std::string, std::string>> meta_;
  std::vector<Series> series_;
};

// Telemetry dump hook: every bench that attaches a Telemetry calls
// this once to drop `<name>_metrics.json` (merged registry scrape) and
// `<name>_trace.json` (Perfetto-loadable Chrome trace) next to its
// printed results.
void DumpTelemetry(const telemetry::Telemetry& tel, const std::string& name);

// ---------------------------------------------------------------
// Standard LabStack YAML (the paper's Lab-All / Lab-Min / Lab-D).
// ---------------------------------------------------------------

// Full-featured async FS stack: permissions, LabFS, LRU, NoOp,
// KernelDriver.
std::string LabAllFsStack(const std::string& mount, const std::string& tag,
                          const std::string& device = "nvme0");
// Lab-Min: drops permissions.
std::string LabMinFsStack(const std::string& mount, const std::string& tag,
                          const std::string& device = "nvme0");
// Lab-D: Lab-Min executing synchronously (decentralized).
std::string LabDFsStack(const std::string& mount, const std::string& tag,
                        const std::string& device = "nvme0");
// KVS stacks for Fig. 9(b).
std::string LabKvsStack(const std::string& mount, const std::string& tag,
                        bool with_permissions, bool sync,
                        const std::string& device = "nvme0");

// ---------------------------------------------------------------
// BlockTarget adapters.
// ---------------------------------------------------------------

// Kernel / LabStor storage-API route (Fig. 6).
class ApiBlockTarget final : public workload::BlockTarget {
 public:
  ApiBlockTarget(sim::Environment& env, simdev::SimDevice& device,
                 kernelsim::ApiKind kind)
      : api_(env, device, kind), num_queues_(device.num_channels()) {}

  sim::Task<void> Io(simdev::IoOp op, uint32_t thread, uint64_t offset,
                     uint64_t length) override {
    return api_.DoIo(op, thread % num_queues_, offset, length);
  }

 private:
  kernelsim::AccessApi api_;
  uint32_t num_queues_;
};

// Kernel block path + explicit scheduler policy (Fig. 8 baselines).
enum class SchedPolicy { kNoOp, kBlkSwitch };

class KernelSchedTarget final : public workload::BlockTarget {
 public:
  KernelSchedTarget(sim::Environment& env, simdev::SimDevice& device,
                    SchedPolicy policy, uint32_t num_queues)
      : env_(env), device_(device), policy_(policy), num_queues_(num_queues) {}

  sim::Task<void> Io(simdev::IoOp op, uint32_t thread, uint64_t offset,
                     uint64_t length) override;

 private:
  sim::Environment& env_;
  simdev::SimDevice& device_;
  SchedPolicy policy_;
  uint32_t num_queues_;
};

// A LabStack as a block device (Fig. 5a, Fig. 8 Lab variants).
class StackBlockTarget final : public workload::BlockTarget {
 public:
  StackBlockTarget(core::SimRuntime& rt, core::Stack& stack)
      : rt_(rt), stack_(stack) {}

  sim::Task<void> Io(simdev::IoOp op, uint32_t thread, uint64_t offset,
                     uint64_t length) override;

 private:
  core::SimRuntime& rt_;
  core::Stack& stack_;
};

// ---------------------------------------------------------------
// FsTarget adapters (Fig. 7 / Fig. 9c).
// ---------------------------------------------------------------

class KernelFsTarget final : public workload::FsTarget {
 public:
  KernelFsTarget(sim::Environment& env, simdev::SimDevice& device,
                 kernelsim::KfsKind kind)
      : fs_(env, device, kind) {}

  sim::Task<void> Create(uint32_t) override { return fs_.Create(); }
  sim::Task<void> Open(uint32_t) override { return fs_.Open(); }
  sim::Task<void> Close(uint32_t) override { return fs_.Close(); }
  sim::Task<void> Write(uint32_t thread, uint64_t offset,
                        uint64_t length) override {
    return fs_.Write(thread % 31, offset, length);
  }
  sim::Task<void> Read(uint32_t thread, uint64_t offset,
                       uint64_t length) override {
    return fs_.Read(thread % 31, offset, length);
  }
  sim::Task<void> Fsync(uint32_t thread) override {
    return fs_.Fsync(thread % 31);
  }
  sim::Task<void> Unlink(uint32_t) override { return fs_.Unlink(); }

 private:
  kernelsim::KernelFs fs_;
};

// A LabStor FS stack driven through GenericFS-style requests. Each
// generator thread works on its own rotating file under `mount`.
class StackFsTarget final : public workload::FsTarget {
 public:
  StackFsTarget(core::SimRuntime& rt, core::Stack& stack, std::string mount)
      : rt_(rt), stack_(stack), mount_(std::move(mount)) {}

  sim::Task<void> Create(uint32_t thread) override;
  sim::Task<void> Open(uint32_t thread) override;
  sim::Task<void> Close(uint32_t thread) override;
  sim::Task<void> Write(uint32_t thread, uint64_t offset,
                        uint64_t length) override;
  sim::Task<void> Read(uint32_t thread, uint64_t offset,
                       uint64_t length) override;
  sim::Task<void> Fsync(uint32_t thread) override;
  sim::Task<void> Unlink(uint32_t thread) override;

 private:
  struct ThreadState {
    uint64_t create_seq = 0;  // rotating file name per thread
  };
  std::string CurrentPath(uint32_t thread);
  sim::Task<void> Submit(uint32_t thread, ipc::OpCode op, uint64_t offset,
                         uint64_t length, uint16_t flags = 0);

  core::SimRuntime& rt_;
  core::Stack& stack_;
  std::string mount_;
  std::vector<ThreadState> threads_{256};
};

// Pre-create one `bytes`-sized file per generator thread (Filebench
// filesets exist before measurement). Drives env.Run().
void PrepopulateFs(sim::Environment& env, workload::FsTarget& fs,
                   uint32_t threads, uint64_t bytes);

// ---------------------------------------------------------------
// LabelTarget adapters (Fig. 9b).
// ---------------------------------------------------------------

class KernelLabelTarget final : public workload::LabelTarget {
 public:
  KernelLabelTarget(sim::Environment& env, simdev::SimDevice& device,
                    kernelsim::KfsKind kind)
      : fs_(env, device, kind) {}

  sim::Task<void> StoreLabel(uint32_t thread, uint64_t index,
                             uint64_t length) override {
    // A label becomes a UNIX file: open-seek-write-close.
    return fs_.OpenSeekWriteClose(thread % 31, index * length, length);
  }
  sim::Task<void> LoadLabel(uint32_t thread, uint64_t index,
                            uint64_t length) override;

 private:
  kernelsim::KernelFs fs_;
};

class StackLabelTarget final : public workload::LabelTarget {
 public:
  StackLabelTarget(core::SimRuntime& rt, core::Stack& stack, std::string mount)
      : rt_(rt), stack_(stack), mount_(std::move(mount)) {}

  sim::Task<void> StoreLabel(uint32_t thread, uint64_t index,
                             uint64_t length) override;
  sim::Task<void> LoadLabel(uint32_t thread, uint64_t index,
                            uint64_t length) override;

 private:
  core::SimRuntime& rt_;
  core::Stack& stack_;
  std::string mount_;
};

}  // namespace labstor::bench
