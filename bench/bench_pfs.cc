// E8 — Fig. 9(a): a parallel filesystem over customized LabStacks.
//
// The mini-PFS (OrangeFS-like: one NVMe metadata server, striped data
// servers) runs VPIC (write phase) and BD-CATS (read phase) while the
// storage nodes' local I/O stacks vary: ext4 (kernel path) vs
// LabFS-All vs LabFS-Min. Data-server media sweeps HDD/SSD/NVMe.
//
// Paper shape: 6-12% end-to-end improvement from the faster metadata
// path, growing as the data tier gets faster; on HDD the gain is
// swallowed by seeks.
#include "bench/common.h"
#include "common/logging.h"
#include "pfs/mini_pfs.h"
#include "workload/arrival.h"
#include "workload/vpic.h"

namespace labstor::bench {
namespace {

labstor::workload::VpicResult RunOnce(const simdev::DeviceParams& data_device,
                                      pfs::LocalStackKind local) {
  sim::Environment env;
  pfs::PfsConfig config;
  config.num_data_servers = 4;
  config.data_device = data_device;
  config.local_stack = local;
  pfs::MiniPfs fs(env, config);
  // Scaled from the paper's 640 procs x 16 steps x ~16MB (165GB): the
  // metadata-to-data ratio per byte is identical.
  workload::VpicConfig vpic;
  vpic.processes = 64;
  vpic.timesteps = 4;
  vpic.bytes_per_step = 4ull << 20;
  return workload::RunVpicThenBdcats(env, fs, vpic);
}

// Open-loop tail latency: Poisson stripe writes from independent
// client ranks (tenants). Unlike the closed-loop VPIC phases above,
// arrival times are independent of completions, so queueing at the
// metadata server and data-tier NICs shows up in p99/p999.
struct PfsTail {
  double p50 = 0, p99 = 0, p999 = 0;
};

PfsTail TailLatency(const simdev::DeviceParams& data_device,
                    pfs::LocalStackKind local) {
  sim::Environment env;
  pfs::PfsConfig config;
  config.num_data_servers = 4;
  config.data_device = data_device;
  config.local_stack = local;
  pfs::MiniPfs fs(env, config);
  workload::ArrivalOptions opts;
  opts.mode = workload::ArrivalMode::kOpenPoisson;
  opts.streams = 8;            // client ranks
  opts.ops_per_stream = 200;   // 64KB stripes each
  opts.rate_per_stream = 2000.0;
  opts.seed = 7;
  const auto stats = workload::RunArrivals(
      env, opts, [&fs, &config](uint32_t client, uint64_t index) {
        return fs.WriteFile(client, index * config.stripe_size,
                            config.stripe_size);
      });
  PfsTail tail;
  tail.p50 = static_cast<double>(stats.latency.Percentile(50));
  tail.p99 = static_cast<double>(stats.latency.Percentile(99));
  tail.p999 = static_cast<double>(stats.latency.Percentile(99.9));
  return tail;
}

}  // namespace
}  // namespace labstor::bench

int main() {
  labstor::Logger::Get().set_level(labstor::LogLevel::kWarn);
  using namespace labstor::bench;
  using labstor::pfs::LocalStackKind;
  PrintHeader("Fig 9(a) — PFS (VPIC write + BD-CATS read) over LabStacks");
  Table table({"data tier", "local stack", "VPIC (s)", "BD-CATS (s)",
               "speedup vs ext4"});
  const std::vector<std::pair<std::string, labstor::simdev::DeviceParams>> tiers = {
      {"hdd", labstor::simdev::DeviceParams::SasHdd(8ull << 30)},
      {"sata_ssd", labstor::simdev::DeviceParams::SataSsd(8ull << 30)},
      {"nvme", labstor::simdev::DeviceParams::NvmeP3700(8ull << 30)},
  };
  for (const auto& [tier, params] : tiers) {
    double ext4_total = 0;
    for (const LocalStackKind local :
         {LocalStackKind::kExt4, LocalStackKind::kLabFsAll,
          LocalStackKind::kLabFsMin}) {
      const auto result = RunOnce(params, local);
      const double write_s = static_cast<double>(result.write_makespan) / 1e9;
      const double read_s = static_cast<double>(result.read_makespan) / 1e9;
      const double total = write_s + read_s;
      if (local == LocalStackKind::kExt4) ext4_total = total;
      table.AddRow({tier, std::string(LocalStackKindName(local)),
                    Fmt("%.2f", write_s), Fmt("%.2f", read_s),
                    Fmt("%.3fx", ext4_total / total)});
    }
  }
  table.Print();

  PrintHeader("PFS open-loop stripe-write tail latency (NVMe tier, ms)");
  Table tail_table({"local stack", "p50", "p99", "p999"});
  const auto nvme = labstor::simdev::DeviceParams::NvmeP3700(8ull << 30);
  for (const LocalStackKind local :
       {LocalStackKind::kExt4, LocalStackKind::kLabFsAll,
        LocalStackKind::kLabFsMin}) {
    const auto tail = TailLatency(nvme, local);
    tail_table.AddRow({std::string(LocalStackKindName(local)),
                       Fmt("%.3f", tail.p50 / 1e6), Fmt("%.3f", tail.p99 / 1e6),
                       Fmt("%.3f", tail.p999 / 1e6)});
  }
  tail_table.Print();
  std::printf(
      "\nPaper shape: LabFS local stacks buy 6-12%% end-to-end; the benefit\n"
      "grows with faster data tiers (HDD ~flat, NVMe largest) because the\n"
      "metadata server's software path stops hiding behind media time.\n"
      "(VPIC scaled from 640 procs/165GB to 64 procs/1GB.)\n");
  return 0;
}
