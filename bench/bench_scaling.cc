// Virtual-core scaling benchmark (DESIGN.md §11): how the runtime's
// software path behaves as the simulated worker pool grows past the
// physical core count of any host we have. Two parts:
//
//   * sweep — the DES drives W ∈ {4, 16, 64, 128, 256} simulated
//     workers, each owning one client queue issuing 4KB creates
//     through the async 4-layer FS stack. Per-core hardware queues
//     (num_hw_queues = max(31, W)) keep the device out of the way, so
//     mean and p99 virtual ns/request measure the runtime: flat means
//     no contention cliff, a super-linear climb reproduces the
//     per-hw-queue serialization this PR fixed. Each point also times
//     a real (wall-clock) orchestrator Rebalance pass at that scale —
//     the epoch cost the galloping-search rewrite bounds.
//   * fusion — real-mode inline sync execution of the same 4-layer
//     chain with stack fusion on vs off: the ns/request delta is the
//     per-hop DAG-walk overhead that fusing composes away.
//   * device — the same low-load seeded DES workload under polled vs
//     interrupt completion delivery (DESIGN.md §13): interrupt mode
//     must cut the idle-poll spin (AvgBusyCores) without changing a
//     single device byte. Seeded via --dst_seed for replay; the gate
//     exits nonzero on a busy-cores regression or a digest mismatch.
//
// Results go to BENCH_scaling.json (or argv[1]); the device phase goes
// to BENCH_device.json (or argv[2]).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/common.h"
#include "common/logging.h"
#include "core/client.h"
#include "core/orchestrator.h"
#include "core/runtime.h"
#include "core/sim_runtime.h"
#include "dst/schedule.h"
#include "simdev/registry.h"

namespace labstor::bench {
namespace {

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

bool Quick() { return std::getenv("BENCH_SCALING_QUICK") != nullptr; }

std::string FsStackYaml(const char* mode, const char* tag) {
  std::string yaml = "mount: fs::/sw";
  yaml += tag;
  yaml += "\nrules:\n  exec_mode: ";
  yaml += mode;
  yaml +=
      "\ndag:\n"
      "  - mod: labfs\n"
      "    uuid: labfs_sw";
  yaml += tag;
  yaml +=
      "\n    params:\n"
      "      log_records_per_worker: 8192\n"
      "    outputs: [lru_sw";
  yaml += tag;
  yaml += "]\n  - mod: lru_cache\n    uuid: lru_sw";
  yaml += tag;
  yaml += "\n    outputs: [sched_sw";
  yaml += tag;
  yaml += "]\n  - mod: noop_sched\n    uuid: sched_sw";
  yaml += tag;
  yaml += "\n    outputs: [drv_sw";
  yaml += tag;
  yaml += "]\n  - mod: kernel_driver\n    uuid: drv_sw";
  yaml += tag;
  yaml += "\n";
  return yaml;
}

// ---------------------------------------------------------------
// Part 1: the DES worker-count sweep.
// ---------------------------------------------------------------

struct SweepPoint {
  size_t workers = 0;
  uint64_t requests = 0;
  double mean_ns = 0;       // virtual time
  double p99_ns = 0;        // virtual time
  double rebalance_us = 0;  // wall time, one dynamic epoch pass
};

struct Recorder {
  std::vector<sim::Time> latencies;
};

sim::Task<void> TimedRequest(sim::Environment& env, core::SimRuntime& rt,
                             uint32_t qid, core::Stack& stack,
                             ipc::Request& req, Recorder* rec) {
  const sim::Time t0 = env.now();
  const Status st = co_await rt.Execute(qid, stack, req);
  if (!st.ok()) {
    std::fprintf(stderr, "request failed: %s\n", st.ToString().c_str());
    std::abort();
  }
  rec->latencies.push_back(env.now() - t0);
}

SweepPoint RunSweepPoint(size_t workers, size_t per_queue) {
  sim::Environment env;
  simdev::DeviceRegistry devices(&env);
  simdev::DeviceParams params = simdev::DeviceParams::NvmeP3700(1u << 30);
  params.num_hw_queues =
      static_cast<uint32_t>(std::max<size_t>(workers, 31));
  params.device_parallelism = params.num_hw_queues;
  if (!devices.Create(params).ok()) std::abort();
  core::SimRuntime rt(env, devices, workers);
  const std::string tag = std::to_string(workers);
  auto stack = rt.MountYaml(FsStackYaml("async", tag.c_str()));
  if (!stack.ok()) {
    std::fprintf(stderr, "mount failed: %s\n",
                 stack.status().ToString().c_str());
    std::abort();
  }
  for (size_t q = 0; q < workers; ++q) {
    rt.RegisterQueue(static_cast<uint32_t>(q + 1), 3 * sim::kUs);
  }
  core::RoundRobinOrchestrator rr;
  std::vector<core::QueueLoad> loads;
  for (size_t q = 0; q < workers; ++q) {
    loads.push_back(core::QueueLoad{static_cast<uint32_t>(q + 1), 0, 0});
  }
  rt.ApplyAssignment(rr.Rebalance(loads, workers));

  const size_t total = workers * per_queue;
  auto rec = std::make_unique<Recorder>();
  rec->latencies.reserve(total);
  std::vector<std::unique_ptr<ipc::Request>> reqs;
  reqs.reserve(total);
  for (size_t q = 0; q < workers; ++q) {
    for (size_t i = 0; i < per_queue; ++i) {
      auto req = std::make_unique<ipc::Request>();
      req->op = ipc::OpCode::kCreate;
      req->SetPath("fs::/sw" + tag + "/q" + std::to_string(q) + "_" +
                   std::to_string(i));
      env.Spawn(TimedRequest(env, rt, static_cast<uint32_t>(q + 1), **stack,
                             *req, rec.get()));
      reqs.push_back(std::move(req));
    }
  }
  env.Run();
  if (rec->latencies.size() != total) std::abort();

  SweepPoint point;
  point.workers = workers;
  point.requests = total;
  uint64_t sum = 0;
  for (const sim::Time lat : rec->latencies) sum += lat;
  point.mean_ns = static_cast<double>(sum) / static_cast<double>(total);
  std::sort(rec->latencies.begin(), rec->latencies.end());
  point.p99_ns = static_cast<double>(
      rec->latencies[std::min(total - 1, (total * 99) / 100)]);

  // Wall cost of one dynamic epoch pass at this queue/worker scale.
  core::DynamicOrchestrator dynamic;
  std::vector<core::QueueLoad> epoch_loads;
  for (uint32_t i = 1; i <= static_cast<uint32_t>(workers) * 4; ++i) {
    const bool heavy = (i % 8) == 0;
    epoch_loads.push_back(core::QueueLoad{
        i, heavy ? 20 * sim::kMs : 3 * sim::kUs, heavy ? 50u : 1u});
  }
  const uint64_t t0 = NowNs();
  constexpr int kPasses = 10;
  for (int p = 0; p < kPasses; ++p) {
    const core::Assignment a = dynamic.Rebalance(epoch_loads, workers);
    if (a.num_workers() > workers) std::abort();
  }
  point.rebalance_us =
      static_cast<double>(NowNs() - t0) / (1000.0 * kPasses);
  return point;
}

// ---------------------------------------------------------------
// Part 2: fused vs unfused inline sync execution (real wall-clock).
// ---------------------------------------------------------------

struct FusionResult {
  uint64_t requests = 0;
  double fused_ns = 0;
  double unfused_ns = 0;
  double reduction_pct = 0;
};

FusionResult RunFusionPhase() {
  simdev::DeviceRegistry devices(nullptr);
  if (!devices.Create(simdev::DeviceParams::NvmeP3700(256 << 20)).ok()) {
    std::abort();
  }
  core::Runtime::Options options;
  options.max_workers = 1;
  core::Runtime runtime(std::move(options), devices);
  auto spec = core::StackSpec::Parse(FsStackYaml("sync", "f"));
  if (!spec.ok()) std::abort();
  auto stack = runtime.MountStack(*spec, ipc::Credentials{1, 0, 0});
  if (!stack.ok()) std::abort();
  core::Client client(runtime, ipc::Credentials{100, 1000, 1000});
  if (!client.Connect().ok()) std::abort();

  auto req = client.NewRequest(4096);
  if (!req.ok()) std::abort();
  ipc::Request* r = *req;
  std::memset(r->data, 0x3C, 4096);
  r->op = ipc::OpCode::kCreate;
  r->SetPath("fs::/swf/x");
  if (!client.Execute(*r, **stack).ok()) std::abort();

  const auto one_write = [&] {
    r->Reuse();
    r->op = ipc::OpCode::kWrite;
    r->SetPath("fs::/swf/x");
    r->offset = 0;
    r->length = 4096;
    if (!client.Execute(*r, **stack).ok()) std::abort();
  };
  const uint64_t warmup = Quick() ? 500 : 5000;
  const uint64_t iters = Quick() ? 5000 : 50000;
  const auto measure = [&]() -> double {
    for (uint64_t i = 0; i < warmup; ++i) one_write();
    const uint64_t t0 = NowNs();
    for (uint64_t i = 0; i < iters; ++i) one_write();
    return static_cast<double>(NowNs() - t0) / static_cast<double>(iters);
  };

  FusionResult result;
  result.requests = iters;
  if (!(*stack)->is_fused()) std::abort();  // sync linear chain must fuse
  result.fused_ns = measure();
  runtime.ns().set_enable_fusion(false);
  if ((*stack)->is_fused()) std::abort();
  result.unfused_ns = measure();
  result.reduction_pct =
      100.0 * (result.unfused_ns - result.fused_ns) / result.unfused_ns;
  return result;
}

// ---------------------------------------------------------------
// Part 3: polled vs interrupt completion delivery under low load.
// ---------------------------------------------------------------

struct DeviceModeResult {
  std::string mode;
  uint64_t requests = 0;
  double avg_busy_cores = 0;  // includes modeled idle-poll spin
  uint64_t polled = 0;
  uint64_t interrupts = 0;
  uint64_t digest = 0;  // FNV-1a over the full device contents
  double virtual_ms = 0;
};

// One paced client op: create the file, then write one 4KB block so
// the stack issues a real device op the worker must wait on (polled
// CQE spin vs parked-until-IRQ — the thing this phase measures).
sim::Task<void> PacedRequest(sim::Environment& env, core::SimRuntime& rt,
                             uint32_t qid, core::Stack& stack,
                             ipc::Request& req, const std::string& path,
                             sim::Time arrival) {
  co_await env.Delay(arrival);
  req.op = ipc::OpCode::kCreate;
  req.SetPath(path);
  Status st = co_await rt.Execute(qid, stack, req);
  if (st.ok()) {
    std::vector<uint8_t> payload(4096, 0x7D);
    req.Reuse();
    req.op = ipc::OpCode::kWrite;
    req.SetPath(path);
    req.offset = 0;
    req.length = payload.size();
    req.data = payload.data();
    st = co_await rt.Execute(qid, stack, req);
  }
  if (!st.ok()) {
    std::fprintf(stderr, "device-phase request failed: %s\n",
                 st.ToString().c_str());
    std::abort();
  }
}

uint64_t DeviceDigest(simdev::SimDevice& dev) {
  uint64_t hash = 1469598103934665603ULL;  // FNV-1a offset basis
  std::vector<uint8_t> block(4096);
  for (uint64_t off = 0; off < dev.params().capacity_bytes;
       off += block.size()) {
    if (!dev.ReadNow(off, block).ok()) std::abort();
    for (const uint8_t byte : block) {
      hash = (hash ^ byte) * 1099511628211ULL;
    }
  }
  return hash;
}

// Low load: requests arrive spaced hundreds of microseconds apart, so
// between arrivals every worker is idle. Polling burns the idle gap
// spinning on device queues; interrupt delivery parks the waiter until
// the (priced) IRQ fires. Same seed, same arrivals in both modes.
DeviceModeResult RunDeviceMode(const char* completion, uint64_t seed) {
  dst::Schedule sched(seed);
  sim::Environment env;
  simdev::DeviceRegistry devices(&env);
  auto dev = devices.Create(simdev::DeviceParams::NvmeP3700(64 << 20));
  if (!dev.ok()) std::abort();
  constexpr size_t kWorkers = 4;
  core::SimRuntime rt(env, devices, kWorkers);
  rt.SetScheduleHook(sched.MakeSimHook(20 * sim::kUs));
  std::string yaml =
      "mount: fs::/dv\n"
      "dag:\n"
      "  - mod: labfs\n"
      "    uuid: labfs_dv\n"
      "    params:\n"
      "      log_records_per_worker: 8192\n"
      "    outputs: [drv_dv]\n"
      "  - mod: kernel_driver\n"
      "    uuid: drv_dv\n"
      "    params:\n"
      "      completion: ";
  yaml += completion;
  yaml += "\n";
  auto stack = rt.MountYaml(yaml);
  if (!stack.ok()) {
    std::fprintf(stderr, "device-phase mount failed: %s\n",
                 stack.status().ToString().c_str());
    std::abort();
  }
  std::vector<core::QueueLoad> loads;
  for (size_t q = 0; q < kWorkers; ++q) {
    rt.RegisterQueue(static_cast<uint32_t>(q + 1), 3 * sim::kUs);
    loads.push_back(core::QueueLoad{static_cast<uint32_t>(q + 1), 0, 0});
  }
  core::RoundRobinOrchestrator rr;
  rt.ApplyAssignment(rr.Rebalance(loads, kWorkers));

  const size_t total = Quick() ? 32 : 128;
  std::vector<std::unique_ptr<ipc::Request>> reqs;
  reqs.reserve(total);
  for (size_t i = 0; i < total; ++i) {
    auto req = std::make_unique<ipc::Request>();
    // ~300us mean inter-arrival, jittered from the seeded stream so
    // --dst_seed replays the exact arrival pattern.
    const sim::Time arrival =
        static_cast<sim::Time>(i) * 300 * sim::kUs +
        sched.Range("bench.device.arrival", 0, 100) * sim::kUs;
    env.Spawn(PacedRequest(env, rt, static_cast<uint32_t>(1 + i % kWorkers),
                           **stack, *req, "fs::/dv/f" + std::to_string(i),
                           arrival));
    reqs.push_back(std::move(req));
  }
  const sim::Time end = env.Run();

  DeviceModeResult result;
  result.mode = completion;
  result.requests = total;
  result.avg_busy_cores = rt.AvgBusyCores(end);
  result.polled = rt.polled_completions();
  result.interrupts = rt.interrupt_completions();
  result.digest = DeviceDigest(**dev);
  result.virtual_ms = static_cast<double>(end) / 1e6;
  return result;
}

void WriteDeviceJson(const DeviceModeResult& polled,
                     const DeviceModeResult& irq, uint64_t seed,
                     const char* path) {
  char seed_hex[32];
  std::snprintf(seed_hex, sizeof(seed_hex), "0x%llx",
                static_cast<unsigned long long>(seed));
  BenchJson json("device");
  json.Meta("seed", seed_hex);
  json.Meta("byte_identical", polled.digest == irq.digest ? "true" : "false");
  json.Meta("busy_reduction_pct",
            100.0 * (polled.avg_busy_cores - irq.avg_busy_cores) /
                polled.avg_busy_cores,
            "%.2f");
  for (const DeviceModeResult* r : {&polled, &irq}) {
    json.Add(r->mode, "requests", r->requests);
    json.Add(r->mode, "avg_busy_cores", r->avg_busy_cores, "%.4f");
    json.Add(r->mode, "polled_completions", r->polled);
    json.Add(r->mode, "interrupt_completions", r->interrupts);
    json.Add(r->mode, "virtual_ms", r->virtual_ms, "%.2f");
  }
  (void)json.Write(path);  // BenchJson reports the path itself
}

void WriteJson(const std::vector<SweepPoint>& sweep, const FusionResult& fusion,
               const char* path) {
  FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path);
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"scaling\",\n  \"sweep\": {\n");
  for (size_t i = 0; i < sweep.size(); ++i) {
    const SweepPoint& p = sweep[i];
    std::fprintf(f,
                 "    \"%zu\": {\"requests\": %llu, \"mean_ns\": %.1f, "
                 "\"p99_ns\": %.1f, \"rebalance_us\": %.1f}%s\n",
                 p.workers, static_cast<unsigned long long>(p.requests),
                 p.mean_ns, p.p99_ns, p.rebalance_us,
                 i + 1 < sweep.size() ? "," : "");
  }
  std::fprintf(f,
               "  },\n  \"fusion\": {\"requests\": %llu, \"fused_ns\": %.1f, "
               "\"unfused_ns\": %.1f, \"reduction_pct\": %.2f}\n}\n",
               static_cast<unsigned long long>(fusion.requests),
               fusion.fused_ns, fusion.unfused_ns, fusion.reduction_pct);
  std::fclose(f);
  std::printf("\nwrote %s\n", path);
}

}  // namespace
}  // namespace labstor::bench

int main(int argc, char** argv) {
  labstor::Logger::Get().set_level(labstor::LogLevel::kWarn);
  labstor::dst::InitSeeds(&argc, argv);  // --dst_seed replays the device phase
  using namespace labstor::bench;

  const size_t per_queue = Quick() ? 8 : 32;
  std::vector<SweepPoint> sweep;
  for (const size_t workers : {4u, 16u, 64u, 128u, 256u}) {
    sweep.push_back(RunSweepPoint(workers, per_queue));
  }
  const FusionResult fusion = RunFusionPhase();

  const uint64_t device_seed = labstor::dst::SeedList().front();
  const DeviceModeResult dev_polled = RunDeviceMode("polling", device_seed);
  const DeviceModeResult dev_irq = RunDeviceMode("interrupt", device_seed);

  PrintHeader("Virtual-core scaling — DES sweep + stack fusion");
  Table table({"workers", "requests", "mean ns/req", "p99 ns/req",
               "rebalance us"});
  for (const SweepPoint& p : sweep) {
    table.AddRow({std::to_string(p.workers), std::to_string(p.requests),
                  Fmt("%.0f", p.mean_ns), Fmt("%.0f", p.p99_ns),
                  Fmt("%.1f", p.rebalance_us)});
  }
  table.Print();

  PrintHeader("Stack fusion — inline sync 4-layer chain");
  Table fused({"variant", "ns/request"});
  fused.AddRow({"fused", Fmt("%.0f", fusion.fused_ns)});
  fused.AddRow({"unfused", Fmt("%.0f", fusion.unfused_ns)});
  fused.AddRow({"reduction %", Fmt("%.2f", fusion.reduction_pct)});
  fused.Print();

  PrintHeader("Completion delivery — low-load polled vs interrupt");
  Table dev({"mode", "requests", "avg busy cores", "polled", "interrupts"});
  for (const DeviceModeResult* r : {&dev_polled, &dev_irq}) {
    dev.AddRow({r->mode, std::to_string(r->requests),
                Fmt("%.4f", r->avg_busy_cores), std::to_string(r->polled),
                std::to_string(r->interrupts)});
  }
  dev.Print();

  WriteJson(sweep, fusion, argc > 1 ? argv[1] : "BENCH_scaling.json");
  WriteDeviceJson(dev_polled, dev_irq, device_seed,
                  argc > 2 ? argv[2] : "BENCH_device.json");

  // Acceptance gates: interrupt delivery must actually cut idle-poll
  // work at low load, and must never change durable device state.
  if (dev_polled.digest != dev_irq.digest) {
    std::fprintf(stderr,
                 "FAIL: polled and interrupt runs diverged in device bytes\n");
    return 1;
  }
  if (dev_irq.avg_busy_cores >= dev_polled.avg_busy_cores) {
    std::fprintf(stderr,
                 "FAIL: interrupt mode did not reduce idle-poll work "
                 "(polling %.4f busy cores, interrupt %.4f)\n",
                 dev_polled.avg_busy_cores, dev_irq.avg_busy_cores);
    return 1;
  }
  return 0;
}
