// E7 — Fig. 8 + Table II: I/O scheduler policies, in-kernel vs LabStor.
//
// Two FIO apps on one NVMe: T-app (8 threads, 64KB random writes,
// iodepth 32) and L-app (8 threads, 4KB random writes, iodepth 1).
// Schedulers: NoOp (origin-core queue mapping) and blk-switch
// (load-aware, size-classed), each as the in-kernel implementation and
// as a LabStor LabMod. L-app average and p99 latency are reported for
// isolated and colocated runs.
//
// Paper shape: isolated, NoOp == blk-switch (~110µs; Lab ~5% lower).
// Colocated, Linux-NoOp explodes (~945µs — head-of-line blocking
// behind 64KB bursts); blk-switch restores latency; Lab-blk beats
// Linux-blk by ~20% by skipping the kernel path.
#include "bench/common.h"
#include "common/logging.h"
#include "workload/fio.h"

namespace labstor::bench {
namespace {

constexpr uint32_t kQueues = 8;
constexpr sim::Time kRunFor = 80 * sim::kMs;

struct Sample {
  double l_avg_us = 0;
  double l_p99_us = 0;
  double t_bw_mbps = 0;
};

enum class Impl { kLinux, kLab };

Sample RunOnce(Impl impl, SchedPolicy policy, bool colocated) {
  sim::Environment env;
  simdev::DeviceRegistry devices(&env);
  simdev::DeviceParams params = simdev::DeviceParams::NvmeP3700(4ull << 30);
  params.num_hw_queues = kQueues;
  // NVMe arbitrates round-robin across hardware queues; one service
  // slot per queue approximates that fairness (the stock preset's
  // 4 FIFO slots would let the T-app's backlog head-of-line block L
  // requests *inside* the device, hiding the scheduler effect the
  // figure isolates).
  params.device_parallelism = kQueues;
  auto created = devices.Create(params);
  if (!created.ok()) std::abort();
  simdev::SimDevice& device = **created;

  std::unique_ptr<core::SimRuntime> rt;
  std::unique_ptr<workload::BlockTarget> target;
  core::Stack* stack = nullptr;
  if (impl == Impl::kLinux) {
    target = std::make_unique<KernelSchedTarget>(env, device, policy, kQueues);
  } else {
    rt = std::make_unique<core::SimRuntime>(env, devices, /*workers=*/8);
    const char* sched_yaml =
        policy == SchedPolicy::kNoOp
            ? "mount: blk::/sched\n"
              "dag:\n"
              "  - mod: noop_sched\n"
              "    uuid: sched_f8\n"
              "    params:\n"
              "      num_queues: 8\n"
              "    outputs: [drv_f8]\n"
              "  - mod: kernel_driver\n"
              "    uuid: drv_f8\n"
            : "mount: blk::/sched\n"
              "dag:\n"
              "  - mod: blk_switch_sched\n"
              "    uuid: sched_f8\n"
              "    params:\n"
              "      num_queues: 8\n"
              "      device: nvme0\n"
              "    outputs: [drv_f8]\n"
              "  - mod: kernel_driver\n"
              "    uuid: drv_f8\n";
    auto mounted = rt->MountYaml(sched_yaml);
    if (!mounted.ok()) {
      std::fprintf(stderr, "%s\n", mounted.status().ToString().c_str());
      std::abort();
    }
    stack = *mounted;
    core::RoundRobinOrchestrator rr;
    std::vector<core::QueueLoad> loads;
    for (uint32_t t = 0; t < 16; ++t) {
      rt->RegisterQueue(t, 5 * sim::kUs);
      loads.push_back(core::QueueLoad{t, 5 * sim::kUs, 1});
    }
    rt->ApplyAssignment(rr.Rebalance(loads, 8));
    target = std::make_unique<StackBlockTarget>(*rt, *stack);
  }

  // L-app: threads 0..7. T-app: threads 8..15 (NoOp maps by thread id,
  // so L thread i and T thread i+8 collide on queue i%8 — the paper's
  // multi-tenant interference).
  workload::FioJob l_job;
  l_job.op = simdev::IoOp::kWrite;
  l_job.request_size = 4096;
  l_job.threads = 8;
  l_job.iodepth = 1;
  l_job.duration = kRunFor;
  l_job.span_per_thread = 1 << 28;
  workload::FioStats l_stats;

  workload::FioJob t_job = l_job;
  t_job.request_size = 64 * 1024;
  t_job.iodepth = 32;
  workload::FioStats t_stats;

  // The generators see one target; thread ids separate the apps. Wrap
  // to offset T-app thread ids.
  class OffsetTarget final : public workload::BlockTarget {
   public:
    OffsetTarget(workload::BlockTarget& inner, uint32_t offset)
        : inner_(inner), offset_(offset) {}
    sim::Task<void> Io(simdev::IoOp op, uint32_t thread, uint64_t off,
                       uint64_t len) override {
      return inner_.Io(op, thread + offset_, off, len);
    }

   private:
    workload::BlockTarget& inner_;
    uint32_t offset_;
  } t_target(*target, 8);

  workload::SpawnFio(env, *target, l_job, &l_stats);
  if (colocated) workload::SpawnFio(env, t_target, t_job, &t_stats);
  const sim::Time begin = env.now();
  const sim::Time end = env.Run();
  l_stats.makespan = end - begin;
  t_stats.makespan = end - begin;

  Sample sample;
  sample.l_avg_us = l_stats.latency.Mean() / 1000.0;
  sample.l_p99_us = static_cast<double>(l_stats.latency.Percentile(99)) / 1000.0;
  sample.t_bw_mbps = t_stats.BandwidthMBps();
  return sample;
}

std::string Name(Impl impl, SchedPolicy policy) {
  std::string name = impl == Impl::kLinux ? "Linux-" : "Lab-";
  name += policy == SchedPolicy::kNoOp ? "NoOp" : "Blk";
  return name;
}

}  // namespace
}  // namespace labstor::bench

int main() {
  labstor::Logger::Get().set_level(labstor::LogLevel::kWarn);
  using namespace labstor::bench;
  PrintHeader("Fig 8 / Table II — I/O schedulers: L-app latency");
  Table table({"sched", "isolated avg (us)", "isolated p99 (us)",
               "colocated avg (us)", "colocated p99 (us)", "T BW (MB/s)"});
  for (const Impl impl : {Impl::kLinux, Impl::kLab}) {
    for (const SchedPolicy policy : {SchedPolicy::kNoOp, SchedPolicy::kBlkSwitch}) {
      const Sample isolated = RunOnce(impl, policy, /*colocated=*/false);
      const Sample colocated = RunOnce(impl, policy, /*colocated=*/true);
      table.AddRow({Name(impl, policy), Fmt("%.1f", isolated.l_avg_us),
                    Fmt("%.1f", isolated.l_p99_us),
                    Fmt("%.1f", colocated.l_avg_us),
                    Fmt("%.1f", colocated.l_p99_us),
                    Fmt("%.0f", colocated.t_bw_mbps)});
    }
  }
  table.Print();
  std::printf(
      "\nPaper shape: isolated, all schedulers sit near ~110µs (Lab a touch\n"
      "lower). Colocated, Linux-NoOp suffers head-of-line blocking (~9x\n"
      "latency); blk-switch recovers it; the Lab variants undercut their\n"
      "Linux counterparts by skipping kernel crossings (~20%% on blk).\n");
  return 0;
}
