// E6 — Fig. 7: metadata throughput (FxMark create-intensive).
//
// Client threads (1..24) create files as fast as each filesystem
// admits. Baselines: EXT4 / XFS / F2FS models (journal/AG locking).
// LabStor: LabFS-All (async + permissions), LabFS-Min (async), and
// LabFS-D (sync, decentralized), Runtime with 16 workers.
//
// Paper shape: LabFS configs outperform the kernel filesystems by up
// to ~3x single-threaded and keep scaling (sharded hashmap, per-worker
// allocator), while the kernel FSes flatten on their locks. Dropping
// permissions buys a few percent; going sync (no IPC) buys ~20% more.
#include "bench/common.h"
#include "common/logging.h"
#include "workload/fxmark.h"

namespace labstor::bench {
namespace {

constexpr uint64_t kFilesPerThread = 600;

double KernelOpsPerSec(kernelsim::KfsKind kind, uint32_t threads) {
  sim::Environment env;
  simdev::SimDevice device(&env, simdev::DeviceParams::NvmeP3700(1ull << 30));
  KernelFsTarget target(env, device, kind);
  return workload::RunFxmarkCreate(env, target, threads, kFilesPerThread)
      .OpsPerSec();
}

double LabOpsPerSec(const std::string& flavor, uint32_t threads) {
  sim::Environment env;
  simdev::DeviceRegistry devices(&env);
  if (!devices.Create(simdev::DeviceParams::NvmeP3700(2ull << 30)).ok()) {
    std::abort();
  }
  core::SimRuntime rt(env, devices, /*workers=*/16);
  std::string yaml;
  if (flavor == "labfs_all") {
    yaml = LabAllFsStack("fs::/meta", "m7");
  } else if (flavor == "labfs_min") {
    yaml = LabMinFsStack("fs::/meta", "m7");
  } else {
    yaml = LabDFsStack("fs::/meta", "m7");
  }
  auto stack = rt.MountYaml(yaml);
  if (!stack.ok()) {
    std::fprintf(stderr, "%s\n", stack.status().ToString().c_str());
    std::abort();
  }
  core::RoundRobinOrchestrator rr;
  std::vector<core::QueueLoad> loads;
  for (uint32_t t = 0; t < threads; ++t) {
    rt.RegisterQueue(t, 8 * sim::kUs);
    loads.push_back(core::QueueLoad{t, 8 * sim::kUs, 1});
  }
  rt.ApplyAssignment(rr.Rebalance(loads, 16));
  StackFsTarget target(rt, **stack, "fs::/meta");
  return workload::RunFxmarkCreate(env, target, threads, kFilesPerThread)
      .OpsPerSec();
}

}  // namespace
}  // namespace labstor::bench

int main() {
  labstor::Logger::Get().set_level(labstor::LogLevel::kWarn);
  using namespace labstor::bench;
  PrintHeader("Fig 7 — metadata throughput (file creates/sec), NVMe");
  Table table({"threads", "ext4", "xfs", "f2fs", "labfs_all", "labfs_min",
               "labfs_d"});
  for (const uint32_t threads : {1u, 2u, 4u, 8u, 16u, 24u}) {
    std::vector<std::string> row{std::to_string(threads)};
    row.push_back(Fmt("%.0f", KernelOpsPerSec(labstor::kernelsim::KfsKind::kExt4,
                                              threads)));
    row.push_back(
        Fmt("%.0f", KernelOpsPerSec(labstor::kernelsim::KfsKind::kXfs, threads)));
    row.push_back(Fmt(
        "%.0f", KernelOpsPerSec(labstor::kernelsim::KfsKind::kF2fs, threads)));
    row.push_back(Fmt("%.0f", LabOpsPerSec("labfs_all", threads)));
    row.push_back(Fmt("%.0f", LabOpsPerSec("labfs_min", threads)));
    row.push_back(Fmt("%.0f", LabOpsPerSec("labfs_d", threads)));
    table.AddRow(std::move(row));
  }
  table.Print();
  std::printf(
      "\nPaper shape: all LabFS configs above the kernel FSes (up to ~3x at\n"
      "one thread) and scaling with threads; ext4/f2fs flatten on a single\n"
      "lock, xfs scales to its 4 allocation groups then flattens; -perms\n"
      "adds a few %%; sync execution (no IPC) adds ~20%% more.\n");
  return 0;
}
