// Computational pushdown vs client-driven dependent I/O (DESIGN.md
// §12). Two phases, both in virtual time:
//
//   * single-node — a pushdown -> labkvs -> sched -> driver stack on
//     one SimRuntime. For chain depths 4 and 8, a pointer chase is
//     timed two ways: the client-driven loop (one Get round trip per
//     hop, next key parsed client-side) and one ExecChain that runs
//     the whole chase at the device-queue layer.
//   * cluster — the same comparison across the network: gateway node 0
//     routes to a remote shard owner, so the client-driven loop pays a
//     full gateway->owner round trip per hop while the pushdown chain
//     forwards once and resubmits locally at the owner.
//
// Each mode reports ns/chain tails (mean/p50/p99/p999) plus
// client<->worker crossings per chain: 2*depth for the client loop,
// 2 for pushdown — the ISSUE acceptance bar is a >= 4x reduction with
// lower mean ns/chain at depth 8 in BOTH phases. Crossing counts are
// cross-checked against the PushdownMod's own crossings_saved
// telemetry (2*(hops-1) per chain). Results go to BENCH_pushdown.json
// (or argv[1]).
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench/common.h"
#include "cluster/cluster.h"
#include "cluster/node.h"
#include "core/sim_runtime.h"
#include "ipc/chain.h"
#include "ipc/request.h"
#include "labmods/pushdown.h"
#include "simdev/registry.h"

namespace labstor::bench {
namespace {

constexpr uint32_t kChainId = 1;
constexpr uint32_t kKeyBytes = 32;  // chase links: 32-byte key head
constexpr size_t kValueLen = 64;

bool Quick() { return std::getenv("BENCH_PUSHDOWN_QUICK") != nullptr; }

// 64-byte value whose first kKeyBytes carry the NUL-terminated next
// key of the chase; the tail byte pattern marks the hop.
std::vector<uint8_t> LinkValue(const std::string& next, uint8_t tag) {
  std::vector<uint8_t> v(kValueLen, tag);
  std::fill(v.begin(), v.begin() + kKeyBytes, uint8_t{0});
  std::memcpy(v.data(), next.data(),
              std::min<size_t>(next.size(), kKeyBytes - 1));
  return v;
}

struct ModeStats {
  TailStats tail;
  double crossings_per_chain = 0;
};

struct PhaseResult {
  ModeStats client;
  ModeStats pushdown;
  // Cross-check from the pushdown mod's own counters, per chain.
  double crossings_saved_per_chain = 0;
  double saved_ns_per_chain = 0;
};

// ---------------------------------------------------------------
// Phase 1: single-node runtime.
// ---------------------------------------------------------------

std::string PushdownKvsYaml() {
  return
      "mount: kvs::/bench\n"
      "rules:\n"
      "  exec_mode: async\n"
      "dag:\n"
      "  - mod: pushdown\n"
      "    uuid: pd_bench\n"
      "    outputs: [kvs_bench]\n"
      "  - mod: labkvs\n"
      "    uuid: kvs_bench\n"
      "    params:\n"
      "      device: nvme0\n"
      "      log_records_per_worker: 8192\n"
      "    outputs: [sched_bench]\n"
      "  - mod: noop_sched\n"
      "    uuid: sched_bench\n"
      "    outputs: [drv_bench]\n"
      "  - mod: kernel_driver\n"
      "    uuid: drv_bench\n"
      "    params:\n"
      "      device: nvme0\n";
}

std::string ChainKey(uint32_t i) {
  return "kvs::/bench/k" + std::to_string(i);
}

sim::Task<void> DriveSingleNode(sim::Environment& env, core::SimRuntime& rt,
                                core::Stack& stack, uint32_t depth,
                                size_t iters, std::vector<double>* client_ns,
                                std::vector<double>* push_ns, Status* status) {
  // Seed the chase k0 -> k1 -> ... -> k(depth-1).
  for (uint32_t i = 0; i < depth; ++i) {
    std::vector<uint8_t> value =
        i + 1 < depth ? LinkValue(ChainKey(i + 1), static_cast<uint8_t>(i))
                      : std::vector<uint8_t>(kValueLen, uint8_t{0xAA});
    ipc::Request req;
    req.op = ipc::OpCode::kPut;
    req.client_pid = 1;
    req.length = value.size();
    req.data = value.data();
    req.SetPath(ChainKey(i));
    const Status st = co_await rt.Execute(1, stack, req);
    if (!st.ok()) {
      *status = st;
      co_return;
    }
  }

  std::vector<uint8_t> buf(4096);

  // Client-driven baseline: one round trip per hop, parse the next key
  // out of the returned value between hops.
  for (size_t it = 0; it < iters; ++it) {
    const sim::Time t0 = env.now();
    std::string key = ChainKey(0);
    for (uint32_t hop = 0; hop < depth; ++hop) {
      ipc::Request req;
      req.op = ipc::OpCode::kGet;
      req.client_pid = 1;
      req.length = buf.size();
      req.data = buf.data();
      req.SetPath(key);
      const Status st = co_await rt.Execute(1, stack, req);
      if (!st.ok()) {
        *status = st;
        co_return;
      }
      if (hop + 1 < depth) {
        key.assign(reinterpret_cast<const char*>(buf.data()));
      }
    }
    client_ns->push_back(static_cast<double>(env.now() - t0));
  }

  // Pushdown: one submission, the mod resubmits every dependent hop.
  for (size_t it = 0; it < iters; ++it) {
    const sim::Time t0 = env.now();
    ipc::Request req;
    req.op = ipc::OpCode::kChainExec;
    req.client_pid = 1;
    req.chain_id = kChainId;
    req.length = buf.size();
    req.data = buf.data();
    req.SetPath(ChainKey(0));
    const Status st = co_await rt.Execute(1, stack, req);
    if (!st.ok()) {
      *status = st;
      co_return;
    }
    push_ns->push_back(static_cast<double>(env.now() - t0));
  }
}

Status RunSingleNode(uint32_t depth, size_t iters, PhaseResult* out) {
  sim::Environment env;
  simdev::DeviceRegistry devices(&env);
  LABSTOR_RETURN_IF_ERROR(
      devices.Create(simdev::DeviceParams::NvmeP3700()).status());
  core::SimRuntime rt(env, devices, /*workers=*/2);
  auto stack = rt.MountYaml(PushdownKvsYaml());
  LABSTOR_RETURN_IF_ERROR(stack.status());
  rt.RegisterQueue(1, 3 * sim::kUs);

  LABSTOR_ASSIGN_OR_RETURN(mod, rt.registry().Find("pd_bench"));
  auto* pd = dynamic_cast<labmods::PushdownMod*>(mod);
  if (pd == nullptr) return Status::Internal("pd_bench is not a PushdownMod");
  LABSTOR_RETURN_IF_ERROR(pd->Register(
      ipc::BuildPointerChaseChain(kChainId, depth, kKeyBytes),
      rt.ns().epoch_ref().load(std::memory_order_acquire)));

  std::vector<double> client_ns, push_ns;
  Status drive = Status::Ok();
  env.Spawn(DriveSingleNode(env, rt, **stack, depth, iters, &client_ns,
                            &push_ns, &drive));
  env.Run();
  LABSTOR_RETURN_IF_ERROR(drive);
  if (client_ns.size() != iters || push_ns.size() != iters) {
    return Status::Internal("single-node phase lost samples");
  }

  out->client.tail = Summarize(std::move(client_ns));
  out->client.crossings_per_chain = 2.0 * depth;
  out->pushdown.tail = Summarize(std::move(push_ns));
  out->pushdown.crossings_per_chain = 2.0;
  out->crossings_saved_per_chain =
      static_cast<double>(pd->crossings_saved()) / static_cast<double>(iters);
  out->saved_ns_per_chain =
      static_cast<double>(pd->saved_ns()) / static_cast<double>(iters);
  return Status::Ok();
}

// ---------------------------------------------------------------
// Phase 2: cluster, gateway -> remote shard owner.
// ---------------------------------------------------------------

// Finds `depth` labels that all hash to the SAME owner, and one that
// is not the gateway: the whole chase must live on one node for the
// chain's dependent Gets to resolve locally at that owner.
std::vector<std::string> RemoteChaseLabels(const cluster::Cluster& cluster,
                                           uint32_t gateway, uint32_t depth) {
  const auto map = cluster.map();
  for (int trial = 0; trial < 1024; ++trial) {
    const std::string head = "p" + std::to_string(trial) + "h0";
    const uint32_t owner = map->OwnerOfLabel(head);
    if (owner == gateway) continue;
    std::vector<std::string> labels{head};
    for (int i = 0; labels.size() < depth && i < 4096; ++i) {
      const std::string label =
          "p" + std::to_string(trial) + "h" + std::to_string(labels.size()) +
          "x" + std::to_string(i);
      if (map->OwnerOfLabel(label) == owner) labels.push_back(label);
    }
    if (labels.size() == depth) return labels;
  }
  return {};
}

sim::Task<void> DriveCluster(sim::Environment& env, cluster::Cluster& cluster,
                             uint32_t gateway,
                             const std::vector<std::string>& labels,
                             size_t iters, std::vector<double>* client_ns,
                             std::vector<double>* push_ns, Status* status) {
  const uint32_t depth = static_cast<uint32_t>(labels.size());
  // Seed the chase with real bytes: label i links to label i+1 by the
  // owner-local namespace path the chain's kDerefKey step will follow.
  for (uint32_t i = 0; i < depth; ++i) {
    std::vector<uint8_t> value =
        i + 1 < depth
            ? LinkValue(cluster::ClusterNode::KeyFor(labels[i + 1]),
                        static_cast<uint8_t>(i))
            : std::vector<uint8_t>(kValueLen, uint8_t{0xAA});
    const Status st =
        co_await cluster.PutBytes(gateway, /*tenant=*/0, labels[i],
                                  std::move(value));
    if (!st.ok()) {
      *status = st;
      co_return;
    }
  }

  // Client-driven baseline: one gateway->owner round trip per hop (the
  // client knows each next label after parsing the previous value;
  // parsing is client-side and free, the network hops are not).
  for (size_t it = 0; it < iters; ++it) {
    const sim::Time t0 = env.now();
    for (uint32_t hop = 0; hop < depth; ++hop) {
      uint64_t size = 0;
      const Status st =
          co_await cluster.Get(gateway, /*tenant=*/0, labels[hop], &size);
      if (!st.ok()) {
        *status = st;
        co_return;
      }
    }
    client_ns->push_back(static_cast<double>(env.now() - t0));
  }

  // Pushdown: the chain is forwarded to the owner once and every
  // dependent hop resolves inside the owner's stack.
  for (size_t it = 0; it < iters; ++it) {
    const sim::Time t0 = env.now();
    uint64_t size = 0;
    uint32_t steps = 0;
    const Status st = co_await cluster.ExecChain(gateway, /*tenant=*/0,
                                                 kChainId, labels[0], &size,
                                                 &steps);
    if (!st.ok()) {
      *status = st;
      co_return;
    }
    push_ns->push_back(static_cast<double>(env.now() - t0));
  }
}

Status RunCluster(uint32_t depth, size_t iters, PhaseResult* out) {
  sim::Environment env;
  cluster::ClusterConfig config;
  config.initial_nodes = 4;
  cluster::Cluster cluster(env, config);
  LABSTOR_RETURN_IF_ERROR(cluster.init_status());

  const uint32_t gateway = cluster.LiveNodeIds().front();
  const std::vector<std::string> labels =
      RemoteChaseLabels(cluster, gateway, depth);
  if (labels.size() != depth) {
    return Status::Internal("no co-owned remote label set for depth " +
                            std::to_string(depth));
  }
  const uint32_t owner = cluster.map()->OwnerOfLabel(labels[0]);
  LABSTOR_RETURN_IF_ERROR(cluster.RegisterChain(
      ipc::BuildPointerChaseChain(kChainId, depth, kKeyBytes)));
  labmods::PushdownMod* pd = cluster.node(owner)->pushdown();
  const uint64_t saved_before = pd->crossings_saved();
  const uint64_t saved_ns_before = pd->saved_ns();

  std::vector<double> client_ns, push_ns;
  Status drive = Status::Ok();
  env.Spawn(DriveCluster(env, cluster, gateway, labels, iters, &client_ns,
                         &push_ns, &drive));
  env.Run();
  LABSTOR_RETURN_IF_ERROR(drive);
  if (client_ns.size() != iters || push_ns.size() != iters) {
    return Status::Internal("cluster phase lost samples");
  }

  out->client.tail = Summarize(std::move(client_ns));
  out->client.crossings_per_chain = 2.0 * depth;
  out->pushdown.tail = Summarize(std::move(push_ns));
  out->pushdown.crossings_per_chain = 2.0;
  out->crossings_saved_per_chain =
      static_cast<double>(pd->crossings_saved() - saved_before) /
      static_cast<double>(iters);
  out->saved_ns_per_chain =
      static_cast<double>(pd->saved_ns() - saved_ns_before) /
      static_cast<double>(iters);
  return Status::Ok();
}

// ---------------------------------------------------------------
// Reporting.
// ---------------------------------------------------------------

void Report(BenchJson& json, Table& table, const std::string& phase,
            uint32_t depth, const PhaseResult& r) {
  const auto series = [&](const char* mode) {
    return phase + "_depth" + std::to_string(depth) + "_" + mode;
  };
  const double ratio =
      r.client.crossings_per_chain / r.pushdown.crossings_per_chain;

  json.AddTail(series("client"), r.client.tail);
  json.Add(series("client"), "crossings_per_chain",
           r.client.crossings_per_chain);
  json.AddTail(series("pushdown"), r.pushdown.tail);
  json.Add(series("pushdown"), "crossings_per_chain",
           r.pushdown.crossings_per_chain);
  json.Add(series("pushdown"), "crossings_saved_per_chain",
           r.crossings_saved_per_chain);
  json.Add(series("pushdown"), "saved_ns_per_chain", r.saved_ns_per_chain);
  json.Add(series("pushdown"), "crossings_ratio", ratio);

  for (const char* mode : {"client", "pushdown"}) {
    const ModeStats& m =
        std::strcmp(mode, "client") == 0 ? r.client : r.pushdown;
    table.AddRow({phase, std::to_string(depth), mode,
                  Fmt("%.0f", m.tail.mean), Fmt("%.0f", m.tail.p99),
                  Fmt("%.1f", m.crossings_per_chain)});
  }
}

bool CheckAcceptance(const char* phase, uint32_t depth, const PhaseResult& r) {
  const double ratio =
      r.client.crossings_per_chain / r.pushdown.crossings_per_chain;
  const bool ok = ratio >= 4.0 && r.pushdown.tail.mean < r.client.tail.mean;
  std::printf("acceptance[%s depth %u]: crossings %.1fx, mean %.0f -> %.0f "
              "ns/chain: %s\n",
              phase, depth, ratio, r.client.tail.mean, r.pushdown.tail.mean,
              ok ? "PASS" : "FAIL");
  return ok;
}

int Main(int argc, char** argv) {
  const size_t iters = Quick() ? 50 : 2000;
  const std::vector<uint32_t> depths = {4, 8};

  BenchJson json("pushdown");
  json.Meta("iters_per_mode", static_cast<double>(iters), "%.0f");
  json.Meta("quick", Quick() ? "true" : "false");
  Table table({"phase", "depth", "mode", "mean_ns", "p99_ns",
               "crossings/chain"});

  bool accepted = true;
  for (const uint32_t depth : depths) {
    PhaseResult single;
    Status st = RunSingleNode(depth, iters, &single);
    if (!st.ok()) {
      std::fprintf(stderr, "single-node depth %u failed: %s\n", depth,
                   st.ToString().c_str());
      return 1;
    }
    Report(json, table, "single_node", depth, single);
    if (depth == 8) accepted &= CheckAcceptance("single_node", depth, single);

    PhaseResult clustered;
    st = RunCluster(depth, iters, &clustered);
    if (!st.ok()) {
      std::fprintf(stderr, "cluster depth %u failed: %s\n", depth,
                   st.ToString().c_str());
      return 1;
    }
    Report(json, table, "cluster", depth, clustered);
    if (depth == 8) accepted &= CheckAcceptance("cluster", depth, clustered);
  }

  PrintHeader("pushdown vs client-driven dependent I/O (virtual ns)");
  table.Print();
  json.Meta("accepted", accepted ? "true" : "false");
  if (!json.Write(argc > 1 ? argv[1] : "BENCH_pushdown.json")) return 1;
  return accepted ? 0 : 1;
}

}  // namespace
}  // namespace labstor::bench

int main(int argc, char** argv) { return labstor::bench::Main(argc, argv); }
