// E9 — Fig. 9(b): LABIOS distributed object store workers.
//
// A LABIOS worker persists 8KB "labels". Backends: kernel filesystems
// (each label = open-seek-write-close on ext4/xfs/f2fs) vs LabKVS
// stacks (single put), with and without permissions, sync and async.
// Devices: NVMe and emulated PMEM, single worker thread (as the
// paper).
//
// Paper shape: filesystem backends trail LabKVS by >=12% (4 syscalls
// vs 1 op); relaxing access control adds up to ~16% more.
#include "bench/common.h"
#include "common/logging.h"
#include "workload/arrival.h"
#include "workload/labios.h"

namespace labstor::bench {
namespace {

constexpr uint64_t kLabels = 3000;
constexpr uint64_t kLabelSize = 8 * 1024;

double KernelLabelsPerSec(const simdev::DeviceParams& params,
                          kernelsim::KfsKind kind) {
  sim::Environment env;
  simdev::SimDevice device(&env, params);
  KernelLabelTarget target(env, device, kind);
  return workload::RunLabiosWorker(env, target, 1, kLabels, kLabelSize)
      .LabelsPerSec();
}

double LabKvsLabelsPerSec(const simdev::DeviceParams& params,
                          bool with_permissions, bool sync) {
  sim::Environment env;
  simdev::DeviceRegistry devices(&env);
  simdev::DeviceParams p = params;
  p.name = "dev9b";
  if (!devices.Create(p).ok()) std::abort();
  core::SimRuntime rt(env, devices, /*workers=*/1);  // paper: 1 runtime thread
  auto stack = rt.MountYaml(LabKvsStack("kvs::/labios", "l9b",
                                        with_permissions, sync, "dev9b"));
  if (!stack.ok()) {
    std::fprintf(stderr, "%s\n", stack.status().ToString().c_str());
    std::abort();
  }
  rt.RegisterQueue(0, 5 * sim::kUs);
  StackLabelTarget target(rt, **stack, "kvs::/labios");
  return workload::RunLabiosWorker(env, target, 1, kLabels, kLabelSize)
      .LabelsPerSec();
}

// Open-loop tail latency of a single LabKVS worker: Poisson label
// arrivals instead of the closed loop above, so p99 reflects queueing
// behind the worker rather than collapsing to the service time.
struct LabiosTail {
  double p50 = 0, p99 = 0, p999 = 0;
};

LabiosTail LabKvsTail(const simdev::DeviceParams& params,
                      bool with_permissions, double rate_per_sec) {
  sim::Environment env;
  simdev::DeviceRegistry devices(&env);
  simdev::DeviceParams p = params;
  p.name = "dev9b";
  if (!devices.Create(p).ok()) std::abort();
  core::SimRuntime rt(env, devices, /*workers=*/1);
  auto stack = rt.MountYaml(LabKvsStack("kvs::/labios", "l9b",
                                        with_permissions, /*sync=*/false,
                                        "dev9b"));
  if (!stack.ok()) std::abort();
  rt.RegisterQueue(0, 5 * sim::kUs);
  StackLabelTarget target(rt, **stack, "kvs::/labios");
  workload::ArrivalOptions opts;
  opts.mode = workload::ArrivalMode::kOpenPoisson;
  opts.streams = 1;
  opts.ops_per_stream = 2000;
  opts.rate_per_stream = rate_per_sec;
  opts.seed = 11;
  const auto stats = workload::RunArrivals(
      env, opts, [&target](uint32_t stream, uint64_t index) {
        return target.StoreLabel(stream, index, kLabelSize);
      });
  LabiosTail tail;
  tail.p50 = static_cast<double>(stats.latency.Percentile(50));
  tail.p99 = static_cast<double>(stats.latency.Percentile(99));
  tail.p999 = static_cast<double>(stats.latency.Percentile(99.9));
  return tail;
}

}  // namespace
}  // namespace labstor::bench

int main() {
  labstor::Logger::Get().set_level(labstor::LogLevel::kWarn);
  using namespace labstor::bench;
  using labstor::kernelsim::KfsKind;
  PrintHeader("Fig 9(b) — LABIOS worker throughput (8KB labels/sec)");
  Table table({"backend", "nvme", "pmem"});
  const auto nvme = labstor::simdev::DeviceParams::NvmeP3700(2ull << 30);
  const auto pmem = labstor::simdev::DeviceParams::PmemEmulated(2ull << 30);
  const auto row = [&](const std::string& name, double n, double p) {
    table.AddRow({name, Fmt("%.0f", n), Fmt("%.0f", p)});
  };
  row("ext4 (open-seek-write-close)", KernelLabelsPerSec(nvme, KfsKind::kExt4),
      KernelLabelsPerSec(pmem, KfsKind::kExt4));
  row("xfs", KernelLabelsPerSec(nvme, KfsKind::kXfs),
      KernelLabelsPerSec(pmem, KfsKind::kXfs));
  row("f2fs", KernelLabelsPerSec(nvme, KfsKind::kF2fs),
      KernelLabelsPerSec(pmem, KfsKind::kF2fs));
  row("labkvs+perms (centralized)",
      LabKvsLabelsPerSec(nvme, true, false), LabKvsLabelsPerSec(pmem, true, false));
  row("labkvs (centralized)",
      LabKvsLabelsPerSec(nvme, false, false), LabKvsLabelsPerSec(pmem, false, false));
  row("labkvs (minimal/sync)",
      LabKvsLabelsPerSec(nvme, false, true), LabKvsLabelsPerSec(pmem, false, true));
  table.Print();

  PrintHeader("LabKVS open-loop put tail latency (NVMe, 8KB labels, us)");
  Table tail_table({"backend", "rate (/s)", "p50", "p99", "p999"});
  for (const double rate : {20000.0, 60000.0}) {
    for (const bool perms : {true, false}) {
      const auto tail = LabKvsTail(nvme, perms, rate);
      tail_table.AddRow({perms ? "labkvs+perms" : "labkvs",
                         Fmt("%.0f", rate), Fmt("%.1f", tail.p50 / 1e3),
                         Fmt("%.1f", tail.p99 / 1e3),
                         Fmt("%.1f", tail.p999 / 1e3)});
    }
  }
  tail_table.Print();
  std::printf(
      "\nPaper shape: filesystem backends are >=12%% slower than LabKVS (the\n"
      "POSIX translation costs 4 syscalls per label vs a single put);\n"
      "relaxing access control / decentralizing buys up to ~16%% more.\n");
  return 0;
}
