// E10 — Fig. 9(c): Filebench cloud workloads on NVMe.
//
// varmail / webserver / webproxy / fileserver (default-config op
// mixes) run with 8 threads over EXT4/XFS/F2FS and the three LabFS
// stacks (All / Min / D), Runtime with 8 workers.
//
// Paper shape: LabFS wins big on the metadata/fsync-heavy mixes (up to
// ~2.5x on varmail-like), modestly on read-heavy ones, and roughly
// ties on fileserver, whose 1MB transfers are media-bound.
#include "bench/common.h"
#include "common/logging.h"
#include "workload/filebench.h"

namespace labstor::bench {
namespace {

constexpr uint32_t kThreads = 8;
constexpr uint64_t kIterations = 120;

double KernelOps(workload::FilebenchKind kind, kernelsim::KfsKind fs) {
  sim::Environment env;
  simdev::SimDevice device(&env, simdev::DeviceParams::NvmeP3700(4ull << 30));
  KernelFsTarget target(env, device, fs);
  PrepopulateFs(env, target, kThreads, 16 * 1024);
  return workload::RunFilebench(env, target, kind, kThreads, kIterations)
      .OpsPerSec();
}

double LabOps(workload::FilebenchKind kind, const std::string& flavor) {
  sim::Environment env;
  simdev::DeviceRegistry devices(&env);
  if (!devices.Create(simdev::DeviceParams::NvmeP3700(4ull << 30)).ok()) {
    std::abort();
  }
  core::SimRuntime rt(env, devices, /*workers=*/8);
  std::string yaml;
  if (flavor == "labfs_all") {
    yaml = LabAllFsStack("fs::/fb", "f9c");
  } else if (flavor == "labfs_min") {
    yaml = LabMinFsStack("fs::/fb", "f9c");
  } else {
    yaml = LabDFsStack("fs::/fb", "f9c");
  }
  auto stack = rt.MountYaml(yaml);
  if (!stack.ok()) {
    std::fprintf(stderr, "%s\n", stack.status().ToString().c_str());
    std::abort();
  }
  core::RoundRobinOrchestrator rr;
  std::vector<core::QueueLoad> loads;
  for (uint32_t t = 0; t < kThreads; ++t) {
    rt.RegisterQueue(t, 10 * sim::kUs);
    loads.push_back(core::QueueLoad{t, 10 * sim::kUs, 1});
  }
  rt.ApplyAssignment(rr.Rebalance(loads, 8));
  StackFsTarget target(rt, **stack, "fs::/fb");
  PrepopulateFs(env, target, kThreads, 16 * 1024);
  return workload::RunFilebench(env, target, kind, kThreads, kIterations)
      .OpsPerSec();
}

}  // namespace
}  // namespace labstor::bench

int main() {
  labstor::Logger::Get().set_level(labstor::LogLevel::kWarn);
  using namespace labstor::bench;
  using labstor::kernelsim::KfsKind;
  using labstor::workload::FilebenchKind;
  PrintHeader("Fig 9(c) — Filebench throughput (iterations/sec), NVMe");
  Table table({"workload", "ext4", "xfs", "f2fs", "labfs_all", "labfs_min",
               "labfs_d", "best-lab vs best-kfs"});
  for (const FilebenchKind kind :
       {FilebenchKind::kVarmail, FilebenchKind::kWebserver,
        FilebenchKind::kWebproxy, FilebenchKind::kFileserver}) {
    const double ext4 = KernelOps(kind, KfsKind::kExt4);
    const double xfs = KernelOps(kind, KfsKind::kXfs);
    const double f2fs = KernelOps(kind, KfsKind::kF2fs);
    const double all = LabOps(kind, "labfs_all");
    const double min = LabOps(kind, "labfs_min");
    const double d = LabOps(kind, "labfs_d");
    const double best_k = std::max({ext4, xfs, f2fs});
    const double best_l = std::max({all, min, d});
    table.AddRow({std::string(FilebenchKindName(kind)), Fmt("%.0f", ext4),
                  Fmt("%.0f", xfs), Fmt("%.0f", f2fs), Fmt("%.0f", all),
                  Fmt("%.0f", min), Fmt("%.0f", d),
                  Fmt("%.2fx", best_l / best_k)});
  }
  table.Print();
  std::printf(
      "\nPaper shape: LabFS stacks lead markedly on metadata-heavy mixes\n"
      "(varmail/webproxy, up to ~2.5x) by cutting context switches and path\n"
      "length; fileserver is the exception — 1MB transfers are media-bound,\n"
      "so the stacks roughly tie.\n");
  return 0;
}
