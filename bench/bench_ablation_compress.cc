// Ablation — the from-scratch LZSS compressor behind the Compression
// LabMod: throughput and ratio across corpus shapes (the cost model's
// 'zlib-class' assumption is sanity-checked against these numbers).
#include <benchmark/benchmark.h>

#include <vector>

#include "common/rng.h"
#include "labmods/lz77.h"

namespace labstor::labmods {
namespace {

std::vector<uint8_t> MakeCorpus(int kind, size_t size) {
  std::vector<uint8_t> data(size);
  Rng rng(99);
  switch (kind) {
    case 0:  // zeros (best case)
      break;
    case 1:  // periodic scientific-ish records
      for (size_t i = 0; i < size; ++i) data[i] = static_cast<uint8_t>(i % 64);
      break;
    case 2:  // text-like: skewed byte distribution
      for (size_t i = 0; i < size; ++i) {
        data[i] = static_cast<uint8_t>('a' + rng.Zipf(26, 0.9));
      }
      break;
    case 3:  // incompressible
      for (auto& b : data) b = static_cast<uint8_t>(rng.Next());
      break;
    default:
      break;
  }
  return data;
}

const char* CorpusName(int kind) {
  switch (kind) {
    case 0: return "zeros";
    case 1: return "periodic";
    case 2: return "text";
    case 3: return "random";
  }
  return "?";
}

void BM_Lz77Compress(benchmark::State& state) {
  const auto corpus = MakeCorpus(static_cast<int>(state.range(0)), 1 << 20);
  size_t compressed_size = 0;
  for (auto _ : state) {
    const auto out = Lz77Compress(corpus);
    compressed_size = out.size();
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(corpus.size()));
  state.counters["ratio"] =
      static_cast<double>(compressed_size) / static_cast<double>(corpus.size());
  state.SetLabel(CorpusName(static_cast<int>(state.range(0))));
}
BENCHMARK(BM_Lz77Compress)->Arg(0)->Arg(1)->Arg(2)->Arg(3);

void BM_Lz77Decompress(benchmark::State& state) {
  const auto corpus = MakeCorpus(static_cast<int>(state.range(0)), 1 << 20);
  const auto compressed = Lz77Compress(corpus);
  for (auto _ : state) {
    auto out = Lz77Decompress(compressed, corpus.size());
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(corpus.size()));
  state.SetLabel(CorpusName(static_cast<int>(state.range(0))));
}
BENCHMARK(BM_Lz77Decompress)->Arg(0)->Arg(1)->Arg(2)->Arg(3);

}  // namespace
}  // namespace labstor::labmods

BENCHMARK_MAIN();
