// E1 — Fig. 4(a): I/O stack anatomy.
//
// A 4KB write and read travel the paper's "traditional-looking"
// LabStack (permissions, LabFS, LRU cache, NoOp scheduler, Kernel
// Driver) on NVMe, with a single Runtime worker. We report the share
// of end-to-end time spent in each component.
//
// Paper targets: I/O dominates (~2/3); page cache ~17%; shared-memory
// IPC ~8.4%; NoOp scheduling ~5%; FS metadata ~3%; permissions ~3%;
// driver ~1%.
#include "bench/common.h"
#include "common/logging.h"

namespace labstor::bench {
namespace {

struct Breakdown {
  sim::Time total = 0;
  sim::Time device = 0;
  sim::Time ipc = 0;
  core::ExecTrace trace;
};

sim::Task<void> OneOp(sim::Environment& env, core::SimRuntime& rt,
                      core::Stack& stack, ipc::Request& req, sim::Time* done) {
  (void)co_await rt.Execute(1, stack, req);
  *done = env.now();
}

Breakdown MeasureOp(ipc::OpCode op) {
  sim::Environment env;
  simdev::DeviceRegistry devices(&env);
  auto device = devices.Create(simdev::DeviceParams::NvmeP3700(256 << 20));
  if (!device.ok()) std::abort();
  core::SimRuntime rt(env, devices, /*workers=*/1);
  auto stack = rt.MountYaml(LabAllFsStack("fs::/anatomy", "anat"));
  if (!stack.ok()) {
    std::fprintf(stderr, "mount failed: %s\n",
                 stack.status().ToString().c_str());
    std::abort();
  }
  rt.RegisterQueue(1, 3 * sim::kUs);

  Breakdown result;
  // Prepare the file (outside measurement).
  {
    ipc::Request create;
    create.op = ipc::OpCode::kCreate;
    create.SetPath("fs::/anatomy/x");
    sim::Time done = 0;
    env.Spawn(OneOp(env, rt, **stack, create, &done));
    env.Run();
  }
  static std::vector<uint8_t> buf(4096, 0x77);
  ipc::Request req;
  req.op = op;
  req.SetPath("fs::/anatomy/x");
  req.length = 4096;
  req.data = buf.data();
  if (op == ipc::OpCode::kRead) {
    // Seed the data and evict nothing — but we want a cache MISS for
    // the anatomy read, so read a cold offset written via a separate
    // path? The paper reads what it wrote; the LRU then serves it.
    // Measure the write-path anatomy and a cold-cache read by writing
    // through a second stack... keep it simple: paper reports similar
    // results for reads; we re-measure the same path.
    req.op = ipc::OpCode::kRead;
  }

  const sim::Time begin = env.now();
  sim::Time done = 0;
  env.Spawn(OneOp(env, rt, **stack, req, &done));

  // Reconstruct the component times by re-running the functional part
  // with a trace (identical mod state path: use a fresh request on the
  // same stack through StackExec directly).
  env.Run();
  result.total = done - begin;

  // Trace the same op functionally for the software split.
  core::StackExec exec(**stack, rt.ctx(), result.trace);
  ipc::Request probe;
  probe.op = op;
  probe.SetPath("fs::/anatomy/x");
  probe.length = 4096;
  probe.data = buf.data();
  (void)exec.Dispatch(probe);

  const sim::SoftwareCosts& c = rt.costs();
  result.ipc = c.shm_submit + c.worker_poll + c.shm_complete;
  // Synchronous device time = total - software - ipc.
  result.device = result.total - result.trace.TotalSoftware() - result.ipc;
  return result;
}

void Report(const char* label, const Breakdown& b) {
  PrintHeader(std::string("Fig 4(a) anatomy — 4KB ") + label + " on NVMe");
  Table table({"component", "time (us)", "share"});
  const double total = static_cast<double>(b.total);
  const auto add = [&](const std::string& name, double ns) {
    table.AddRow({name, Fmt("%.2f", ns / 1000.0),
                  Fmt("%.1f%%", 100.0 * ns / total)});
  };
  add("device I/O", static_cast<double>(b.device));
  add("IPC (shared memory)", static_cast<double>(b.ipc));
  // Software rows come straight from the ledger's Summarize() (stack
  // order), mapped onto the figure's component labels.
  const auto friendly = [](std::string_view component) -> std::string {
    if (component == "cache") return "page cache (LRU)";
    if (component == "sched") return "I/O scheduler (NoOp)";
    if (component == "labfs") return "FS metadata (LabFS)";
    if (component == "kernel_driver") return "driver";
    return std::string(component);
  };
  for (const core::ExecTrace::ComponentTotal& t : b.trace.Summarize()) {
    add(friendly(t.component), static_cast<double>(t.total));
  }
  table.AddRow({"total", Fmt("%.2f", total / 1000.0), "100.0%"});
  table.Print();
}

}  // namespace
}  // namespace labstor::bench

int main() {
  labstor::Logger::Get().set_level(labstor::LogLevel::kWarn);
  using namespace labstor::bench;
  Report("write", MeasureOp(labstor::ipc::OpCode::kWrite));
  Report("read (cache-warm)", MeasureOp(labstor::ipc::OpCode::kRead));
  std::printf(
      "\nPaper shape: I/O ~2/3 of total; cache ~17%%; IPC ~8.4%%; sched ~5%%;\n"
      "FS metadata ~3%%; permissions ~3%%; driver ~1%%. Reads: cache-warm\n"
      "reads are served from the LRU, so their device share collapses — the\n"
      "flexibility argument (skip the cache, skip permissions) in numbers.\n");
  return 0;
}
