// Ablation — IPC primitives (real wall-clock, google-benchmark).
//
// The paper's performance story rests on shared-memory queue pairs
// being much cheaper than kernel crossings. This bench measures the
// real cost of the repo's rings and queue pairs on this host:
// single-threaded round trips, cross-thread round trips, and the
// effect of queue depth.
#include <benchmark/benchmark.h>

#include <thread>

#include "common/ring_buffer.h"
#include "ipc/queue_pair.h"

namespace labstor {
namespace {

void BM_SpscRoundTrip(benchmark::State& state) {
  SpscRing<uint64_t> ring(1024);
  uint64_t value = 0;
  for (auto _ : state) {
    ring.TryPush(value++);
    benchmark::DoNotOptimize(ring.TryPop());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_SpscRoundTrip);

void BM_MpmcRoundTrip(benchmark::State& state) {
  MpmcRing<uint64_t> ring(1024);
  uint64_t value = 0;
  for (auto _ : state) {
    ring.TryPush(value++);
    benchmark::DoNotOptimize(ring.TryPop());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_MpmcRoundTrip);

void BM_QueuePairSubmitComplete(benchmark::State& state) {
  ipc::QueuePair qp(1, ipc::QueueKind::kPrimary, true, 1024,
                    ipc::Credentials{1, 0, 0});
  ipc::Request req;
  for (auto _ : state) {
    qp.Submit(&req);
    auto polled = qp.PollSubmission();
    benchmark::DoNotOptimize(polled);
    qp.Complete(*polled);
    benchmark::DoNotOptimize(qp.PollCompletion());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_QueuePairSubmitComplete);

// Cross-thread ping-pong: one "client" and one polling "worker" — the
// real-mode latency floor of the LabStor async path on this machine.
void BM_QueuePairCrossThread(benchmark::State& state) {
  ipc::QueuePair qp(1, ipc::QueueKind::kPrimary, true, 1024,
                    ipc::Credentials{1, 0, 0});
  std::atomic<bool> stop{false};
  std::thread worker([&] {
    while (!stop.load(std::memory_order_acquire)) {
      auto polled = qp.PollSubmission();
      if (polled.has_value()) (*polled)->Complete(StatusCode::kOk);
    }
  });
  ipc::Request req;
  for (auto _ : state) {
    req.state.store(ipc::RequestState::kPending, std::memory_order_release);
    while (!qp.Submit(&req)) {
    }
    while (!req.IsDone()) {
    }
  }
  stop.store(true, std::memory_order_release);
  worker.join();
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_QueuePairCrossThread)->UseRealTime();

void BM_MpmcContended(benchmark::State& state) {
  // Depth sweep: how queue capacity affects contended throughput.
  const size_t depth = static_cast<size_t>(state.range(0));
  MpmcRing<uint64_t> ring(depth);
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) ring.TryPush(static_cast<uint64_t>(i));
    for (int i = 0; i < 64; ++i) benchmark::DoNotOptimize(ring.TryPop());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_MpmcContended)->Arg(64)->Arg(256)->Arg(1024)->Arg(4096);

}  // namespace
}  // namespace labstor

BENCHMARK_MAIN();
