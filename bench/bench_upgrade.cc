// E2 — Table I: live-upgrade service interruption.
//
// An application messages a dummy LabMod through the real (threaded)
// Runtime while the Module Manager applies batches of live upgrades
// via the centralized and decentralized protocols. We report total
// application running time vs the number of queued upgrades.
//
// Paper shape: each upgrade costs ~5 ms (dominated by loading the 1MB
// module image from NVMe); running time is barely affected until
// thousands of upgrades queue (+~5s at 1024); decentralized is
// slightly slower than centralized (per-client refresh).
#include <chrono>
#include <thread>

#include "bench/common.h"
#include "common/logging.h"
#include "core/client.h"
#include "core/runtime.h"
#include "labmods/dummy.h"

namespace labstor::bench {
namespace {

using namespace std::chrono_literals;

// Messages scaled from the paper's 100k so the full table stays
// wall-clock friendly; the interruption measurement is unaffected.
constexpr uint64_t kMessages = 20'000;

double RunOnce(core::UpgradeKind kind, int upgrades) {
  simdev::DeviceRegistry devices(nullptr);
  auto nvme = devices.Create(simdev::DeviceParams::NvmeP3700(64 << 20));
  if (!nvme.ok()) std::abort();

  core::Runtime::Options options;
  options.max_workers = 1;  // paper: single worker for this test
  options.admin_poll = 1ms;
  core::Runtime runtime(std::move(options), devices);

  // Code-load model: reading `code_size` bytes from NVMe plus the
  // dlopen-style relink; decentralized re-maps into each client (1).
  runtime.module_manager().SetCodeLoadFn(
      [&](const core::UpgradeRequest& request) {
        const auto& p = simdev::DeviceParams::NvmeP3700();
        double ns = static_cast<double>(p.read_latency) +
                    p.read_ns_per_byte * static_cast<double>(request.code_size_bytes);
        ns += 4.0e6;  // relink + StateUpdate bookkeeping: ~4ms
        if (request.kind == core::UpgradeKind::kDecentralized) {
          ns += 0.5e6;  // per-connected-client remap (1 client here)
        }
        std::this_thread::sleep_for(
            std::chrono::nanoseconds(static_cast<int64_t>(ns)));
      });

  auto spec = core::StackSpec::Parse(
      "mount: ctl::/bench\n"
      "dag:\n"
      "  - mod: dummy\n"
      "    uuid: dummy_bench\n"
      "    version: 1\n");
  if (!spec.ok()) std::abort();
  auto stack = runtime.MountStack(*spec, ipc::Credentials{1, 0, 0});
  if (!stack.ok()) std::abort();
  if (!runtime.Start().ok()) std::abort();

  core::Client client(runtime, ipc::Credentials{100, 1000, 1000});
  if (!client.Connect().ok()) std::abort();

  const auto t0 = std::chrono::steady_clock::now();
  uint64_t sent = 0;
  bool submitted_upgrades = false;
  auto req = client.NewRequest();
  if (!req.ok()) std::abort();
  while (sent < kMessages) {
    (*req)->Reuse();
    (*req)->op = ipc::OpCode::kDummy;
    if (!client.Execute(**req, **stack).ok()) continue;
    ++sent;
    if (!submitted_upgrades && sent == kMessages / 4 && upgrades > 0) {
      // ~a quarter into the run (the paper upgrades ~20s in).
      for (int i = 0; i < upgrades; ++i) {
        runtime.SubmitUpgrade(core::UpgradeRequest{
            "dummy", 2, kind, 1 << 20});
      }
      submitted_upgrades = true;
    }
  }
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  (void)runtime.Stop();
  return std::chrono::duration<double>(elapsed).count();
}

}  // namespace
}  // namespace labstor::bench

int main() {
  labstor::Logger::Get().set_level(labstor::LogLevel::kWarn);
  using namespace labstor::bench;
  PrintHeader("Table I — live upgrade: app running time (s) vs #upgrades");
  Table table({"#upgrades", "centralized (s)", "decentralized (s)"});
  for (const int upgrades : {0, 256, 512, 1024}) {
    const double centralized =
        RunOnce(labstor::core::UpgradeKind::kCentralized, upgrades);
    const double decentralized =
        RunOnce(labstor::core::UpgradeKind::kDecentralized, upgrades);
    table.AddRow({std::to_string(upgrades), Fmt("%.2f", centralized),
                  Fmt("%.2f", decentralized)});
  }
  table.Print();
  std::printf(
      "\nPaper shape: ~5 ms per upgrade; negligible impact until upgrade\n"
      "counts reach the thousands; decentralized slightly slower. (Message\n"
      "count scaled from 100k to %llu for wall-clock reasons.)\n",
      static_cast<unsigned long long>(20000));
  return 0;
}
