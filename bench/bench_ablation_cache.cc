// Ablation — LRU vs adaptive (frequency-aware) cache eviction, the
// paper's "ML-driven cache eviction" suggestion made concrete. Hit
// rates under a Zipf-skewed working set with periodic sequential scans
// (the access pattern that defeats plain LRU).
#include <cstdio>

#include "common/rng.h"
#include "core/debug_harness.h"
#include "labmods/adaptive_cache.h"
#include "labmods/lru_cache.h"
#include "simdev/registry.h"

namespace labstor::bench {
namespace {

struct HitRates {
  double zipf_only = 0;
  double zipf_with_scans = 0;
};

HitRates Measure(const std::string& mod_name) {
  const auto run = [&](bool scans) {
    simdev::DeviceRegistry devices;
    core::ModContext ctx;
    ctx.devices = &devices;
    auto params = yaml::Parse("capacity_pages: 256\n");
    if (!params.ok()) std::abort();
    auto harness = core::DebugHarness::Create(mod_name, *params, ctx);
    if (!harness.ok()) std::abort();

    Rng rng(4242);
    std::vector<uint8_t> buf(4096);
    const auto read_page = [&](uint64_t page) {
      ipc::Request req;
      req.op = ipc::OpCode::kBlkRead;
      req.offset = page * 4096;
      req.length = buf.size();
      req.data = buf.data();
      (void)(*harness)->Feed(req);
    };
    constexpr uint64_t kHotSet = 2048;  // 8x the cache
    for (int i = 0; i < 60000; ++i) {
      read_page(rng.Zipf(kHotSet, 0.9));
      if (scans && i % 600 == 599) {
        // A 512-page sequential scan sweeps through (backup/analytics).
        for (uint64_t p = 0; p < 512; ++p) read_page(100000 + p);
      }
    }
    uint64_t hits = 0, misses = 0;
    if (auto* lru = dynamic_cast<labmods::LruCacheMod*>(&(*harness)->mod())) {
      hits = lru->hits();
      misses = lru->misses();
    } else if (auto* ad =
                   dynamic_cast<labmods::AdaptiveCacheMod*>(&(*harness)->mod())) {
      hits = ad->hits();
      misses = ad->misses();
    }
    return static_cast<double>(hits) / static_cast<double>(hits + misses);
  };
  HitRates rates;
  rates.zipf_only = run(false);
  rates.zipf_with_scans = run(true);
  return rates;
}

}  // namespace
}  // namespace labstor::bench

int main() {
  using namespace labstor::bench;
  std::printf("\n==== Ablation — cache eviction policy (hit rate) ====\n");
  std::printf("%-16s  %-12s  %-16s\n", "policy", "zipf", "zipf + scans");
  for (const char* mod : {"lru_cache", "adaptive_cache"}) {
    const HitRates rates = Measure(mod);
    std::printf("%-16s  %-12.3f  %-16.3f\n", mod, rates.zipf_only,
                rates.zipf_with_scans);
  }
  std::printf(
      "\nExpectation: comparable on a pure Zipf stream; the adaptive policy\n"
      "holds its hit rate when sequential scans pollute the cache, while\n"
      "LRU evicts its hot set (the paper's motivation for pluggable,\n"
      "'learned' eviction LabMods).\n");
  return 0;
}
