// Hot-path benchmark (real wall-clock): the end-to-end cost of one
// request through the Runtime's async datapath — the software path
// the paper's §V anatomy measurement says is the whole game on fast
// devices. Three phases:
//
//   * latency_async_labfs_4k_write — single client, single in-flight
//     4KB write through the full LabFS async stack (submit → worker
//     dequeue → DAG execution → completion poll);
//   * throughput_async_dummy — 64 pipelined in-flight requests against
//     a dummy stack, isolating queue-drain throughput from mod work;
//   * inline_sync_labfs_4k_write — the decentralized (sync) path,
//     isolating per-request execution cost from IPC and worker wakeup;
//   * latency_async_event_wakeup — the first phase again with doorbell
//     parking on (Options::event_wakeup): the latency delta is what
//     event-driven wakeup costs on the hot path, and the doorbell
//     counters show workers actually parking instead of spinning.
//
// The binary installs a counting global allocator and reports heap
// allocations per request for each phase — the "zero-allocation
// steady state" acceptance number. Results are appended as one JSON
// object per phase to BENCH_hotpath.json (or argv[1]).
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>
#include <vector>

#include "bench/common.h"
#include "common/logging.h"
#include "core/client.h"
#include "core/runtime.h"
#include "simdev/registry.h"

// ---------------------------------------------------------------
// Counting allocator hook: every C++ heap allocation in the process
// bumps one relaxed atomic. Phases snapshot the counter around their
// measured window, so allocations from runtime worker threads inside
// the window are charged to the phase — exactly what we want.
// ---------------------------------------------------------------

namespace {
std::atomic<uint64_t> g_heap_allocs{0};
uint64_t HeapAllocs() {
  return g_heap_allocs.load(std::memory_order_relaxed);
}
}  // namespace

// Sanitizer builds (LABSTOR_SANITIZE) interpose their own allocator
// and track alloc/dealloc pairing; overriding operator new/delete
// underneath them produces false alloc-dealloc-mismatch reports, so
// counting is compiled out there (allocs_per_request reports 0).
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define LABSTOR_COUNT_ALLOCS 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define LABSTOR_COUNT_ALLOCS 0
#else
#define LABSTOR_COUNT_ALLOCS 1
#endif
#else
#define LABSTOR_COUNT_ALLOCS 1
#endif

#if LABSTOR_COUNT_ALLOCS
void* operator new(std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (posix_memalign(&p, static_cast<std::size_t>(align),
                     size ? size : 1) != 0) {
    throw std::bad_alloc();
  }
  return p;
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
#endif  // LABSTOR_COUNT_ALLOCS

namespace labstor::bench {
namespace {

struct PhaseResult {
  std::string name;
  uint64_t requests = 0;
  double ns_per_request = 0;
  double requests_per_sec = 0;
  double allocs_per_request = 0;
  // Per-op tail distribution (count == 0 for the pipelined throughput
  // phase, where a single request has no isolated latency).
  TailStats tail;
  // Doorbell counters (async client phases; rings are counted in both
  // wakeup modes, wakeups only happen with event_wakeup on).
  uint64_t doorbell_rings = 0;
  uint64_t doorbell_wakeups = 0;
  uint64_t idle_sleeps = 0;
};

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

bool Quick() { return std::getenv("BENCH_HOTPATH_QUICK") != nullptr; }

constexpr char kFsStackYaml[] =
    "mount: fs::/h\n"
    "rules:\n"
    "  exec_mode: %s\n"
    "dag:\n"
    "  - mod: labfs\n"
    "    uuid: labfs_hot_%s\n"
    "    params:\n"
    "      log_records_per_worker: 65536\n"
    "    outputs: [drv_hot_%s]\n"
    "  - mod: kernel_driver\n"
    "    uuid: drv_hot_%s\n";

core::StackSpec FsStack(const char* mode) {
  char buf[512];
  std::snprintf(buf, sizeof(buf), kFsStackYaml, mode, mode, mode, mode);
  auto spec = core::StackSpec::Parse(buf);
  if (!spec.ok()) {
    std::fprintf(stderr, "stack parse failed: %s\n",
                 spec.status().ToString().c_str());
    std::abort();
  }
  return *spec;
}

// Single in-flight 4KB writes through the async worker path. With
// `event_wakeup` the worker parks in the doorbell wait between
// requests instead of spinning out the idle backoff ladder.
PhaseResult LatencyPhase(bool event_wakeup = false) {
  simdev::DeviceRegistry devices(nullptr);
  if (!devices.Create(simdev::DeviceParams::NvmeP3700(256 << 20)).ok()) {
    std::abort();
  }
  core::Runtime::Options options;
  options.max_workers = 1;
  options.event_wakeup = event_wakeup;
  core::Runtime runtime(std::move(options), devices);
  auto stack = runtime.MountStack(FsStack("async"), ipc::Credentials{1, 0, 0});
  if (!stack.ok()) std::abort();
  if (!runtime.Start().ok()) std::abort();
  core::Client client(runtime, ipc::Credentials{100, 1000, 1000});
  if (!client.Connect().ok()) std::abort();

  auto req = client.NewRequest(4096);
  if (!req.ok()) std::abort();
  ipc::Request* r = *req;
  std::memset(r->data, 0x5A, 4096);
  r->op = ipc::OpCode::kCreate;
  r->SetPath("fs::/h/x");
  if (!client.Execute(*r, **stack).ok()) std::abort();

  const auto one_write = [&] {
    r->Reuse();
    r->op = ipc::OpCode::kWrite;
    r->SetPath("fs::/h/x");
    r->offset = 0;
    r->length = 4096;
    if (!client.Execute(*r, **stack).ok()) std::abort();
  };

  const uint64_t warmup = Quick() ? 200 : 2000;
  const uint64_t iters = Quick() ? 2000 : 20000;
  for (uint64_t i = 0; i < warmup; ++i) one_write();

  std::vector<double> samples;
  samples.reserve(iters);
  const uint64_t allocs0 = HeapAllocs();
  const uint64_t t0 = NowNs();
  for (uint64_t i = 0; i < iters; ++i) {
    const uint64_t op0 = NowNs();
    one_write();
    samples.push_back(static_cast<double>(NowNs() - op0));
  }
  const uint64_t elapsed = NowNs() - t0;
  const uint64_t allocs = HeapAllocs() - allocs0;
  const uint64_t rings = runtime.doorbell_rings();
  const uint64_t wakeups = runtime.doorbell_wakeups();
  const uint64_t sleeps = runtime.idle_sleeps();
  (void)runtime.Stop();

  PhaseResult result;
  result.name = event_wakeup ? "latency_async_event_wakeup"
                             : "latency_async_labfs_4k_write";
  result.doorbell_rings = rings;
  result.doorbell_wakeups = wakeups;
  result.idle_sleeps = sleeps;
  result.requests = iters;
  result.ns_per_request = static_cast<double>(elapsed) / iters;
  result.requests_per_sec = 1e9 * iters / static_cast<double>(elapsed);
  result.allocs_per_request = static_cast<double>(allocs) / iters;
  result.tail = Summarize(std::move(samples));
  return result;
}

// Pipelined dummy requests: queue-drain throughput with 64 in flight.
PhaseResult ThroughputPhase() {
  simdev::DeviceRegistry devices(nullptr);
  if (!devices.Create(simdev::DeviceParams::NvmeP3700(64 << 20)).ok()) {
    std::abort();
  }
  core::Runtime::Options options;
  options.max_workers = 2;
  core::Runtime runtime(std::move(options), devices);
  auto spec = core::StackSpec::Parse(
      "mount: ctl::/hot\n"
      "dag:\n"
      "  - mod: dummy\n"
      "    uuid: dummy_hot\n");
  if (!spec.ok()) std::abort();
  auto stack = runtime.MountStack(*spec, ipc::Credentials{1, 0, 0});
  if (!stack.ok()) std::abort();
  if (!runtime.Start().ok()) std::abort();

  auto channel = runtime.ipc().Connect(ipc::Credentials{101, 1000, 1000});
  if (!channel.ok()) std::abort();
  ipc::QueuePair* qp = channel->qp;

  constexpr size_t kInFlight = 64;
  std::vector<ipc::Request*> requests;
  for (size_t i = 0; i < kInFlight; ++i) {
    ipc::Request* r = channel->NewRequest();
    if (r == nullptr) std::abort();
    requests.push_back(r);
  }
  const auto submit = [&](ipc::Request* r) {
    r->Reuse();
    r->op = ipc::OpCode::kDummy;
    r->stack_id = (*stack)->id;
    while (!qp->Submit(r)) std::this_thread::yield();
  };

  const uint64_t warmup = Quick() ? 5000 : 20000;
  const uint64_t target = Quick() ? 20000 : 200000;
  uint64_t completed = 0;
  for (ipc::Request* r : requests) submit(r);
  // One pipelined pump loop serves warmup and the measured window.
  uint64_t allocs0 = 0;
  uint64_t t0 = 0;
  bool measuring = false;
  uint64_t measured_done = 0;
  while (measured_done < target) {
    if (!measuring && completed >= warmup) {
      measuring = true;
      allocs0 = HeapAllocs();
      t0 = NowNs();
    }
    for (ipc::Request* r : requests) {
      if (!r->IsDone()) continue;
      ++completed;
      if (measuring) ++measured_done;
      submit(r);
    }
    // Reap the completion ring so it never fills (the worker-side push
    // is the half of the protocol this phase exercises).
    while (qp->PollCompletion().has_value()) {
    }
  }
  const uint64_t elapsed = NowNs() - t0;
  const uint64_t allocs = HeapAllocs() - allocs0;
  // Drain the tail so teardown never races in-flight requests.
  for (ipc::Request* r : requests) {
    while (!r->IsDone()) std::this_thread::yield();
  }
  (void)runtime.Stop();

  PhaseResult result;
  result.name = "throughput_async_dummy";
  result.requests = measured_done;
  result.ns_per_request = static_cast<double>(elapsed) / measured_done;
  result.requests_per_sec = 1e9 * measured_done / static_cast<double>(elapsed);
  result.allocs_per_request = static_cast<double>(allocs) / measured_done;
  return result;
}

// Decentralized (sync) execution: the DAG runs inline in the client
// thread — per-request software cost with no IPC hop or worker wakeup.
PhaseResult InlineSyncPhase() {
  simdev::DeviceRegistry devices(nullptr);
  if (!devices.Create(simdev::DeviceParams::NvmeP3700(256 << 20)).ok()) {
    std::abort();
  }
  core::Runtime::Options options;
  options.max_workers = 1;
  core::Runtime runtime(std::move(options), devices);
  auto stack = runtime.MountStack(FsStack("sync"), ipc::Credentials{1, 0, 0});
  if (!stack.ok()) std::abort();
  core::Client client(runtime, ipc::Credentials{100, 1000, 1000});
  if (!client.Connect().ok()) std::abort();

  auto req = client.NewRequest(4096);
  if (!req.ok()) std::abort();
  ipc::Request* r = *req;
  std::memset(r->data, 0xA5, 4096);
  r->op = ipc::OpCode::kCreate;
  r->SetPath("fs::/h/y");
  if (!client.Execute(*r, **stack).ok()) std::abort();

  const auto one_write = [&] {
    r->Reuse();
    r->op = ipc::OpCode::kWrite;
    r->SetPath("fs::/h/y");
    r->offset = 0;
    r->length = 4096;
    if (!client.Execute(*r, **stack).ok()) std::abort();
  };

  const uint64_t warmup = Quick() ? 500 : 5000;
  const uint64_t iters = Quick() ? 5000 : 50000;
  for (uint64_t i = 0; i < warmup; ++i) one_write();

  std::vector<double> samples;
  samples.reserve(iters);
  const uint64_t allocs0 = HeapAllocs();
  const uint64_t t0 = NowNs();
  for (uint64_t i = 0; i < iters; ++i) {
    const uint64_t op0 = NowNs();
    one_write();
    samples.push_back(static_cast<double>(NowNs() - op0));
  }
  const uint64_t elapsed = NowNs() - t0;
  const uint64_t allocs = HeapAllocs() - allocs0;

  PhaseResult result;
  result.name = "inline_sync_labfs_4k_write";
  result.requests = iters;
  result.ns_per_request = static_cast<double>(elapsed) / iters;
  result.requests_per_sec = 1e9 * iters / static_cast<double>(elapsed);
  result.allocs_per_request = static_cast<double>(allocs) / iters;
  result.tail = Summarize(std::move(samples));
  return result;
}

void WriteJson(const std::vector<PhaseResult>& phases, const char* path) {
  BenchJson json("hotpath");
  json.Meta("quick", Quick() ? "true" : "false");
  for (const PhaseResult& p : phases) {
    json.Add(p.name, "requests", p.requests);
    json.Add(p.name, "ns_per_request", p.ns_per_request);
    json.Add(p.name, "requests_per_sec", p.requests_per_sec, "%.0f");
    json.Add(p.name, "allocs_per_request", p.allocs_per_request, "%.4f");
    if (p.tail.count > 0) {
      json.Add(p.name, "p50_ns", p.tail.p50);
      json.Add(p.name, "p99_ns", p.tail.p99);
      json.Add(p.name, "p999_ns", p.tail.p999);
    }
    if (p.doorbell_rings > 0) {
      json.Add(p.name, "doorbell_rings", p.doorbell_rings);
      json.Add(p.name, "doorbell_wakeups", p.doorbell_wakeups);
      json.Add(p.name, "idle_sleeps", p.idle_sleeps);
    }
  }
  (void)json.Write(path);
}

}  // namespace
}  // namespace labstor::bench

int main(int argc, char** argv) {
  labstor::Logger::Get().set_level(labstor::LogLevel::kWarn);
  using namespace labstor::bench;
  std::vector<PhaseResult> phases;
  phases.push_back(LatencyPhase());
  phases.push_back(ThroughputPhase());
  phases.push_back(InlineSyncPhase());
  phases.push_back(LatencyPhase(/*event_wakeup=*/true));

  PrintHeader("Hot path — real-mode async/sync datapath");
  Table table({"phase", "ns/request", "p99_ns", "requests/sec",
               "allocs/request"});
  for (const PhaseResult& p : phases) {
    table.AddRow({p.name, Fmt("%.0f", p.ns_per_request),
                  p.tail.count > 0 ? Fmt("%.0f", p.tail.p99) : "-",
                  Fmt("%.0f", p.requests_per_sec),
                  Fmt("%.4f", p.allocs_per_request)});
  }
  table.Print();
  WriteJson(phases, argc > 1 ? argv[1] : "BENCH_hotpath.json");
  return 0;
}
