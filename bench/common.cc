#include "bench/common.h"

#include <algorithm>
#include <cstdio>

namespace labstor::bench {

TailStats Summarize(std::vector<double> samples) {
  TailStats s;
  if (samples.empty()) return s;
  std::sort(samples.begin(), samples.end());
  double sum = 0;
  for (const double v : samples) sum += v;
  s.count = samples.size();
  s.mean = sum / static_cast<double>(samples.size());
  // Nearest-rank percentile: rank = ceil(n * p), 1-based; the old
  // `samples[n * permille / 1000]` indexed one rank too high (p50 of
  // {1,2} returned 2).
  const auto at = [&](size_t permille) {
    const size_t rank = (samples.size() * permille + 999) / 1000;
    return samples[rank == 0 ? 0 : rank - 1];
  };
  s.p50 = at(500);
  s.p99 = at(990);
  s.p999 = at(999);
  return s;
}

std::string JsonQuote(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    switch (c) {
      case '"':  out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        // RFC 8259: all other control characters must be \u-escaped.
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

void BenchJson::Meta(const std::string& key, const std::string& value) {
  meta_.emplace_back(key, JsonQuote(value));
}

void BenchJson::Meta(const std::string& key, double value,
                     const char* format) {
  meta_.emplace_back(key, Fmt(format, value));
}

BenchJson::Series& BenchJson::Find(const std::string& name) {
  for (Series& s : series_) {
    if (s.name == name) return s;
  }
  series_.push_back(Series{name, {}});
  return series_.back();
}

void BenchJson::Add(const std::string& series, const std::string& key,
                    uint64_t value) {
  Find(series).fields.emplace_back(key, std::to_string(value));
}

void BenchJson::Add(const std::string& series, const std::string& key,
                    double value, const char* format) {
  Find(series).fields.emplace_back(key, Fmt(format, value));
}

void BenchJson::AddTail(const std::string& series, const TailStats& stats) {
  Add(series, "count", stats.count);
  Add(series, "mean_ns", stats.mean);
  Add(series, "p50_ns", stats.p50);
  Add(series, "p99_ns", stats.p99);
  Add(series, "p999_ns", stats.p999);
}

bool BenchJson::Write(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return false;
  }
  std::fprintf(f, "{\n  \"bench\": %s,\n", JsonQuote(bench_).c_str());
  std::fprintf(f, "  \"meta\": {");
  for (size_t i = 0; i < meta_.size(); ++i) {
    std::fprintf(f, "%s\n    %s: %s", i == 0 ? "" : ",",
                 JsonQuote(meta_[i].first).c_str(), meta_[i].second.c_str());
  }
  std::fprintf(f, "%s},\n", meta_.empty() ? "" : "\n  ");
  std::fprintf(f, "  \"series\": {");
  for (size_t i = 0; i < series_.size(); ++i) {
    const Series& s = series_[i];
    std::fprintf(f, "%s\n    %s: {", i == 0 ? "" : ",",
                 JsonQuote(s.name).c_str());
    for (size_t j = 0; j < s.fields.size(); ++j) {
      std::fprintf(f, "%s\n      %s: %s", j == 0 ? "" : ",",
                   JsonQuote(s.fields[j].first).c_str(),
                   s.fields[j].second.c_str());
    }
    std::fprintf(f, "%s}", s.fields.empty() ? "" : "\n    ");
  }
  std::fprintf(f, "%s}\n}\n", series_.empty() ? "" : "\n  ");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
  return true;
}

void DumpTelemetry(const telemetry::Telemetry& tel, const std::string& name) {
  const std::string metrics_path = name + "_metrics.json";
  const std::string trace_path = name + "_trace.json";
  std::FILE* f = std::fopen(metrics_path.c_str(), "w");
  if (f != nullptr) {
    const std::string json = tel.MetricsJson();
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
  }
  const Status st = tel.trace().WriteFile(trace_path);
  std::printf("telemetry: %s + %s (%zu events%s)\n", metrics_path.c_str(),
              trace_path.c_str(), tel.trace().recorded(),
              st.ok() ? "" : ", trace write FAILED");
}

std::string LabAllFsStack(const std::string& mount, const std::string& tag,
                          const std::string& device) {
  return "mount: " + mount +
         "\n"
         "rules:\n"
         "  exec_mode: async\n"
         "dag:\n"
         "  - mod: permissions\n"
         "    uuid: perm_" + tag +
         "\n"
         "    outputs: [fs_" + tag +
         "]\n"
         "  - mod: labfs\n"
         "    uuid: fs_" + tag +
         "\n"
         "    params:\n"
         "      device: " + device +
         "\n"
         "      log_records_per_worker: 131072\n"
         "    outputs: [lru_" + tag +
         "]\n"
         "  - mod: lru_cache\n"
         "    uuid: lru_" + tag +
         "\n"
         "    outputs: [sched_" + tag +
         "]\n"
         "  - mod: noop_sched\n"
         "    uuid: sched_" + tag +
         "\n"
         "    outputs: [drv_" + tag +
         "]\n"
         "  - mod: kernel_driver\n"
         "    uuid: drv_" + tag +
         "\n"
         "    params:\n"
         "      device: " + device + "\n";
}

std::string LabMinFsStack(const std::string& mount, const std::string& tag,
                          const std::string& device) {
  // Lab-Min = Lab-All minus the permissions gate (paper: "removes
  // permissions"); caching and scheduling stay.
  return "mount: " + mount +
         "\n"
         "rules:\n"
         "  exec_mode: async\n"
         "dag:\n"
         "  - mod: labfs\n"
         "    uuid: fs_" + tag +
         "\n"
         "    params:\n"
         "      device: " + device +
         "\n"
         "      log_records_per_worker: 131072\n"
         "    outputs: [lru_" + tag +
         "]\n"
         "  - mod: lru_cache\n"
         "    uuid: lru_" + tag +
         "\n"
         "    outputs: [sched_" + tag +
         "]\n"
         "  - mod: noop_sched\n"
         "    uuid: sched_" + tag +
         "\n"
         "    outputs: [drv_" + tag +
         "]\n"
         "  - mod: kernel_driver\n"
         "    uuid: drv_" + tag +
         "\n"
         "    params:\n"
         "      device: " + device + "\n";
}

std::string LabDFsStack(const std::string& mount, const std::string& tag,
                        const std::string& device) {
  // Lab-D = Lab-Min executing synchronously in the client.
  return "mount: " + mount +
         "\n"
         "rules:\n"
         "  exec_mode: sync\n"
         "dag:\n"
         "  - mod: labfs\n"
         "    uuid: fs_" + tag +
         "\n"
         "    params:\n"
         "      device: " + device +
         "\n"
         "      log_records_per_worker: 131072\n"
         "    outputs: [lru_" + tag +
         "]\n"
         "  - mod: lru_cache\n"
         "    uuid: lru_" + tag +
         "\n"
         "    outputs: [sched_" + tag +
         "]\n"
         "  - mod: noop_sched\n"
         "    uuid: sched_" + tag +
         "\n"
         "    outputs: [drv_" + tag +
         "]\n"
         "  - mod: kernel_driver\n"
         "    uuid: drv_" + tag +
         "\n"
         "    params:\n"
         "      device: " + device + "\n";
}

std::string LabKvsStack(const std::string& mount, const std::string& tag,
                        bool with_permissions, bool sync,
                        const std::string& device) {
  std::string yaml = "mount: " + mount +
                     "\n"
                     "rules:\n"
                     "  exec_mode: " +
                     (sync ? "sync" : "async") +
                     "\n"
                     "dag:\n";
  if (with_permissions) {
    yaml +=
        "  - mod: permissions\n"
        "    uuid: perm_" + tag +
        "\n"
        "    outputs: [kvs_" + tag + "]\n";
  }
  yaml += "  - mod: labkvs\n"
          "    uuid: kvs_" + tag +
          "\n"
          "    params:\n"
          "      device: " + device +
          "\n"
          "      log_records_per_worker: 131072\n"
          "    outputs: [sched_" + tag +
          "]\n"
          "  - mod: noop_sched\n"
          "    uuid: sched_" + tag +
          "\n"
          "    outputs: [drv_" + tag +
          "]\n"
          "  - mod: kernel_driver\n"
          "    uuid: drv_" + tag +
          "\n"
          "    params:\n"
          "      device: " + device + "\n";
  return yaml;
}

sim::Task<void> KernelSchedTarget::Io(simdev::IoOp op, uint32_t thread,
                                      uint64_t offset, uint64_t length) {
  const sim::SoftwareCosts& c = sim::DefaultCosts();
  // Kernel data path: syscall + block spine (the scheduler runs inside
  // the block layer).
  co_await env_.Delay(c.syscall + c.vfs_lookup + kernelsim::KernelBlockSpine(c) +
                      2 * c.context_switch);
  const uint32_t channel =
      policy_ == SchedPolicy::kNoOp
          ? kernelsim::NoOpPickQueue(thread, num_queues_)
          : kernelsim::BlkSwitchPickQueue(device_, length, num_queues_);
  if (op == simdev::IoOp::kWrite) {
    co_await device_.WriteTimed(channel, offset, length);
  } else {
    co_await device_.ReadTimed(channel, offset, length);
  }
}

sim::Task<void> StackBlockTarget::Io(simdev::IoOp op, uint32_t thread,
                                     uint64_t offset, uint64_t length) {
  ipc::Request req;
  req.op = op == simdev::IoOp::kWrite ? ipc::OpCode::kBlkWrite
                                      : ipc::OpCode::kBlkRead;
  req.client_pid = thread;
  req.offset = offset;
  req.length = length;
  (void)co_await rt_.Execute(/*qid=*/thread, stack_, req);
}

std::string StackFsTarget::CurrentPath(uint32_t thread) {
  return mount_ + "/t" + std::to_string(thread) + "_f" +
         std::to_string(threads_[thread % threads_.size()].create_seq);
}

sim::Task<void> StackFsTarget::Submit(uint32_t thread, ipc::OpCode op,
                                      uint64_t offset, uint64_t length,
                                      uint16_t flags) {
  ipc::Request req;
  req.op = op;
  req.flags = flags;
  req.client_pid = thread;
  req.offset = offset;
  req.length = length;
  req.SetPath(CurrentPath(thread));
  (void)co_await rt_.Execute(thread, stack_, req);
}

sim::Task<void> StackFsTarget::Create(uint32_t thread) {
  // New rotating file per create (FxMark-style unique names).
  ++threads_[thread % threads_.size()].create_seq;
  return Submit(thread, ipc::OpCode::kCreate, 0, 0,
                ipc::kOpenCreate | ipc::kOpenTrunc);
}

sim::Task<void> StackFsTarget::Open(uint32_t thread) {
  return Submit(thread, ipc::OpCode::kOpen, 0, 0, 0);
}

sim::Task<void> StackFsTarget::Close(uint32_t thread) {
  return Submit(thread, ipc::OpCode::kClose, 0, 0, 0);
}

sim::Task<void> StackFsTarget::Write(uint32_t thread, uint64_t offset,
                                     uint64_t length) {
  return Submit(thread, ipc::OpCode::kWrite, offset, length);
}

sim::Task<void> StackFsTarget::Read(uint32_t thread, uint64_t offset,
                                    uint64_t length) {
  return Submit(thread, ipc::OpCode::kRead, offset, length);
}

sim::Task<void> StackFsTarget::Fsync(uint32_t thread) {
  return Submit(thread, ipc::OpCode::kFsync, 0, 0);
}

sim::Task<void> StackFsTarget::Unlink(uint32_t thread) {
  return Submit(thread, ipc::OpCode::kUnlink, 0, 0);
}

namespace {
sim::Task<void> PrepopulateOne(workload::FsTarget& fs, uint32_t thread,
                               uint64_t bytes) {
  co_await fs.Create(thread);
  co_await fs.Write(thread, 0, bytes);
  co_await fs.Close(thread);
}
}  // namespace

void PrepopulateFs(sim::Environment& env, workload::FsTarget& fs,
                   uint32_t threads, uint64_t bytes) {
  for (uint32_t t = 0; t < threads; ++t) {
    env.Spawn(PrepopulateOne(fs, t, bytes));
  }
  env.Run();
}

sim::Task<void> KernelLabelTarget::LoadLabel(uint32_t thread, uint64_t index,
                                             uint64_t length) {
  co_await fs_.Open();
  co_await fs_.Read(thread % 31, index * length, length);
  co_await fs_.Close();
}

sim::Task<void> StackLabelTarget::StoreLabel(uint32_t thread, uint64_t index,
                                             uint64_t length) {
  ipc::Request req;
  req.op = ipc::OpCode::kPut;
  req.client_pid = thread;
  req.length = length;
  req.SetPath(mount_ + "/label_" + std::to_string(thread) + "_" +
              std::to_string(index));
  (void)co_await rt_.Execute(thread, stack_, req);
}

sim::Task<void> StackLabelTarget::LoadLabel(uint32_t thread, uint64_t index,
                                            uint64_t length) {
  ipc::Request req;
  req.op = ipc::OpCode::kGet;
  req.client_pid = thread;
  req.length = length;
  req.SetPath(mount_ + "/label_" + std::to_string(thread) + "_" +
              std::to_string(index));
  (void)co_await rt_.Execute(thread, stack_, req);
}

}  // namespace labstor::bench
