// bench_calibrated: IO500-calibrated open-loop scenarios through the
// DAOS-style client interfaces (DESIGN.md §14).
//
// Four named scenarios (read-heavy, write-burst, metadata-storm,
// mixed-diurnal) drive two interfaces — the object store (multi-key
// put/get over LabKVS) and the array (chunked fixed-stride I/O over a
// LabFS stack) — each both single-node and through the cluster shard
// map (object ops routed gateway->owner; array extents striped by
// MiniPfs's ShardMap placement). Reports p50/p99/p999 per
// scenario x interface and writes BENCH_calibrated.json (or argv[1]).
//
// Determinism: every series of one scenario replays the SAME issue
// sequence — the harness fingerprints it (issue_digest, folded over
// harness-relative time), and this bench exits nonzero if any series'
// digest disagrees with a no-op dry run of the scenario, or if any op
// fails. --dst_seed=<seed> reseeds every draw.
//
// BENCH_CALIBRATED_QUICK=1 shrinks the run for CI smoke jobs.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/common.h"
#include "cluster/cluster.h"
#include "common/logging.h"
#include "dst/schedule.h"
#include "labmods/daos_array.h"
#include "labmods/daos_obj.h"
#include "pfs/mini_pfs.h"
#include "workload/calibrated.h"

namespace labstor::bench {
namespace {

// Object key universe per stream (gets/stats always hit these).
constexpr uint32_t kObjUniverse = 32;
// Array geometry: 4K cells in 64K chunks over 4 targets; each stream
// owns one 32MB data object, so the largest draw (16MB) always fits.
constexpr uint64_t kCellSize = 4096;
constexpr uint64_t kChunkSize = 64 * 1024;
constexpr uint32_t kArrayTargets = 4;
constexpr uint64_t kArrayCells = 8192;

struct RunCfg {
  uint32_t streams = 4;
  sim::Time duration = 30 * sim::kMs;
  double rate = 10000.0;  // per-stream base ops/s
  uint64_t seed = 1;
};

workload::CalibratedOptions MakeOpts(const RunCfg& cfg,
                                     telemetry::Telemetry* tel = nullptr) {
  workload::CalibratedOptions opts;
  opts.streams = cfg.streams;
  opts.duration = cfg.duration;
  opts.rate_per_stream = cfg.rate;
  opts.seed = cfg.seed;
  opts.telemetry = tel;
  return opts;
}

TailStats Tail(const workload::CalibratedStats& st) {
  TailStats t;
  t.count = st.arrivals.completed;
  t.mean = st.arrivals.latency.Mean();
  t.p50 = static_cast<double>(st.arrivals.latency.Percentile(50));
  t.p99 = static_cast<double>(st.arrivals.latency.Percentile(99));
  t.p999 = static_cast<double>(st.arrivals.latency.Percentile(99.9));
  return t;
}

// ---------------------------------------------------------------
// Object interface: CalibratedRequest -> DaosObjStore ops.
// Data keys ("d"/"a") and stat keys ("m"/"s") are prepopulated so
// fetches never miss; remove follows the mdtest idiom (delete a key
// the same op just created).
// ---------------------------------------------------------------

labmods::ObjectId OidFor(const workload::CalibratedRequest& req) {
  return {req.stream, req.index % kObjUniverse};
}

workload::CalibratedOpFn ObjOp(labmods::DaosObjStore* store) {
  return [store](const workload::CalibratedRequest& req)
             -> sim::Task<Status> {
    const labmods::ObjectId oid = OidFor(req);
    if (req.cls == workload::OpClass::kDataWrite) {
      labmods::AkeyUpdate update;
      update.akey = "a";
      update.size = req.size_bytes;
      co_return co_await store->Update(req.stream, oid, "d",
                                       std::move(update));
    }
    if (req.cls == workload::OpClass::kDataRead) {
      co_return co_await store->Fetch(req.stream, oid, "d", "a");
    }
    switch (req.meta) {
      case workload::MetaOp::kCreate: {
        labmods::AkeyUpdate update;
        update.akey = "c" + std::to_string(req.index);
        co_return co_await store->Update(req.stream, oid, "m",
                                         std::move(update));
      }
      case workload::MetaOp::kStat:
        co_return co_await store->Fetch(req.stream, oid, "m", "s");
      case workload::MetaOp::kRemove: {
        labmods::AkeyUpdate update;
        update.akey = "r" + std::to_string(req.index);
        std::vector<std::string> akeys;
        akeys.push_back(update.akey);
        const Status st =
            co_await store->Update(req.stream, oid, "m", std::move(update));
        if (!st.ok()) co_return st;
        co_return co_await store->Punch(req.stream, oid, "m",
                                        std::move(akeys));
      }
    }
    co_return Status::Ok();
  };
}

sim::Task<void> PrepopObjects(labmods::DaosObjStore* store, uint32_t streams,
                              uint64_t* failures) {
  for (uint32_t s = 0; s < streams; ++s) {
    for (uint32_t o = 0; o < kObjUniverse; ++o) {
      const labmods::ObjectId oid{s, o};
      labmods::AkeyUpdate data;
      data.akey = "a";
      data.size = 4096;
      labmods::AkeyUpdate meta;
      meta.akey = "s";
      if (!(co_await store->Update(s, oid, "d", std::move(data))).ok()) {
        ++*failures;
      }
      if (!(co_await store->Update(s, oid, "m", std::move(meta))).ok()) {
        ++*failures;
      }
    }
  }
}

// ---------------------------------------------------------------
// Array interface: CalibratedRequest -> DaosArray ops. Each stream's
// data object (oid = stream) is created and fully written up front;
// reads/writes land inside it at an index-derived cell offset.
// ---------------------------------------------------------------

workload::CalibratedOpFn ArrOp(labmods::DaosArray* array) {
  return [array](const workload::CalibratedRequest& req)
             -> sim::Task<Status> {
    if (req.cls == workload::OpClass::kDataRead ||
        req.cls == workload::OpClass::kDataWrite) {
      uint64_t cells = req.size_bytes / kCellSize;
      if (cells == 0) cells = 1;
      if (cells > kArrayCells) cells = kArrayCells;
      const uint64_t start =
          (req.index * 2654435761ull) % (kArrayCells - cells + 1);
      if (req.cls == workload::OpClass::kDataRead) {
        co_return co_await array->Read(req.stream, req.stream, start, cells);
      }
      co_return co_await array->Write(req.stream, req.stream, start, cells);
    }
    switch (req.meta) {
      case workload::MetaOp::kCreate:
        // Rotating scratch object; re-create of an existing object is
        // an (allowed) truncate in LabFS.
        co_return co_await array->CreateObject(
            req.stream, 1000 + req.stream * 8 + req.index % 8);
      case workload::MetaOp::kStat:
        co_return co_await array->StatObject(req.stream, req.stream);
      case workload::MetaOp::kRemove: {
        // mdtest idiom: create a fresh object, then remove it.
        const uint64_t oid = 1u << 20;
        const uint64_t unique = oid + req.stream * (1u << 16) + req.index;
        const Status st = co_await array->CreateObject(req.stream, unique);
        if (!st.ok()) co_return st;
        co_return co_await array->RemoveObject(req.stream, unique);
      }
    }
    co_return Status::Ok();
  };
}

sim::Task<void> PrepopArray(labmods::DaosArray* array, uint32_t streams,
                            uint64_t* failures) {
  for (uint32_t s = 0; s < streams; ++s) {
    if (!(co_await array->CreateObject(s, s)).ok()) ++*failures;
    if (!(co_await array->Write(s, s, 0, kArrayCells)).ok()) ++*failures;
  }
}

// ---------------------------------------------------------------
// Cluster endpoints.
// ---------------------------------------------------------------

// Object keys as cluster labels: stream -> gateway (round-robin) and
// tenant; the shard map routes each key to its owner node.
class ClusterKvEndpoint final : public labmods::KvEndpoint {
 public:
  ClusterKvEndpoint(cluster::Cluster& c, uint32_t nodes)
      : cluster_(c), nodes_(nodes) {}

  sim::Task<Status> Put(uint32_t stream, std::string key,
                        uint64_t size) override {
    co_return co_await cluster_.Put(stream % nodes_, stream, key, size);
  }
  sim::Task<Status> Get(uint32_t stream, std::string key) override {
    co_return co_await cluster_.Get(stream % nodes_, stream, key);
  }
  sim::Task<Status> Delete(uint32_t stream, std::string key) override {
    co_return co_await cluster_.Delete(stream % nodes_, stream, key);
  }

 private:
  cluster::Cluster& cluster_;
  uint32_t nodes_;
};

// Array extents over MiniPfs: stripe placement rides the cluster
// ShardMap inside the PFS. Each target file maps to a disjoint offset
// region of the client's PFS file (FNV over the path), so distinct
// targets never alias.
class PfsFileEndpoint final : public labmods::FileEndpoint {
 public:
  explicit PfsFileEndpoint(pfs::MiniPfs& p) : pfs_(p) {}

  sim::Task<Status> Create(uint32_t stream, std::string path) override {
    co_await pfs_.WriteFile(stream, Base(path), kCellSize);
    co_return Status::Ok();
  }
  sim::Task<Status> WriteAt(uint32_t stream, std::string path,
                            uint64_t offset, uint64_t length) override {
    co_await pfs_.WriteFile(stream, Base(path) + offset, length);
    co_return Status::Ok();
  }
  sim::Task<Status> ReadAt(uint32_t stream, std::string path, uint64_t offset,
                           uint64_t length) override {
    co_await pfs_.ReadFile(stream, Base(path) + offset, length);
    co_return Status::Ok();
  }
  sim::Task<Status> Stat(uint32_t stream, std::string path) override {
    co_await pfs_.ReadFile(stream, Base(path), kCellSize);
    co_return Status::Ok();
  }
  sim::Task<Status> Remove(uint32_t stream, std::string path) override {
    co_await pfs_.WriteFile(stream, Base(path), kCellSize);
    co_return Status::Ok();
  }

 private:
  // 64MB region per distinct path (plenty for one target's share).
  static uint64_t Base(const std::string& path) {
    uint64_t h = 0xCBF29CE484222325ULL;
    for (const char c : path) {
      h ^= static_cast<unsigned char>(c);
      h *= 0x100000001B3ULL;
    }
    return (h % 256) * (64ull << 20);
  }

  pfs::MiniPfs& pfs_;
};

// ---------------------------------------------------------------
// The four deployment phases. Each builds a fresh DES world, preloads
// the key/cell universe, then drives one calibrated scenario.
// ---------------------------------------------------------------

workload::CalibratedStats RunObjectSingle(
    const workload::CalibratedProfile& profile, const RunCfg& cfg) {
  sim::Environment env;
  simdev::DeviceRegistry devices(&env);
  auto params = simdev::DeviceParams::NvmeP3700(4ull << 30);
  params.name = "dcal";
  if (!devices.Create(params).ok()) std::abort();
  core::SimRuntime rt(env, devices, /*workers=*/4);
  auto stack = rt.MountYaml(
      LabKvsStack("kvs::/cal", "calo", /*with_permissions=*/false,
                  /*sync=*/false, "dcal"));
  if (!stack.ok()) std::abort();
  for (uint32_t s = 0; s < cfg.streams; ++s) {
    rt.RegisterQueue(1 + s, 5 * sim::kUs);
  }
  labmods::StackKvEndpoint ep(rt, **stack, "kvs::/cal", 1);
  labmods::DaosObjStore store(ep, "obj");
  uint64_t prep_failures = 0;
  env.Spawn(PrepopObjects(&store, cfg.streams, &prep_failures));
  env.Run();
  if (prep_failures != 0) std::abort();
  return workload::RunCalibrated(env, MakeOpts(cfg), profile, ObjOp(&store));
}

workload::CalibratedStats RunObjectCluster(
    const workload::CalibratedProfile& profile, const RunCfg& cfg,
    bool* invariants_ok) {
  sim::Environment env;
  cluster::ClusterConfig config;
  config.initial_nodes = 4;
  // Bulk scenarios keep ~128 live values of up to 16MB each; the 32MB
  // default store would thrash the allocator at its exhaustion edge.
  config.node_device_bytes = 2ull << 30;
  cluster::Cluster cluster(env, config);
  if (!cluster.init_status().ok()) std::abort();
  ClusterKvEndpoint ep(cluster, config.initial_nodes);
  labmods::DaosObjStore store(ep, "obj");
  uint64_t prep_failures = 0;
  env.Spawn(PrepopObjects(&store, cfg.streams, &prep_failures));
  env.Run();
  if (prep_failures != 0) std::abort();
  auto stats =
      workload::RunCalibrated(env, MakeOpts(cfg), profile, ObjOp(&store));
  *invariants_ok = cluster.CheckInvariants(/*strict=*/true).ok();
  return stats;
}

workload::CalibratedStats RunArraySingle(
    const workload::CalibratedProfile& profile, const RunCfg& cfg) {
  sim::Environment env;
  simdev::DeviceRegistry devices(&env);
  auto params = simdev::DeviceParams::NvmeP3700(4ull << 30);
  params.name = "dcal";
  if (!devices.Create(params).ok()) std::abort();
  core::SimRuntime rt(env, devices, /*workers=*/4);
  auto stack = rt.MountYaml(LabMinFsStack("fs::/cal", "cala", "dcal"));
  if (!stack.ok()) std::abort();
  for (uint32_t s = 0; s < cfg.streams; ++s) {
    rt.RegisterQueue(1 + s, 5 * sim::kUs);
  }
  labmods::StackFileEndpoint ep(rt, **stack, "fs::/cal", 1);
  labmods::DaosArray array(ep, "arr",
                           {kCellSize, kChunkSize, kArrayTargets});
  uint64_t prep_failures = 0;
  env.Spawn(PrepopArray(&array, cfg.streams, &prep_failures));
  env.Run();
  if (prep_failures != 0) std::abort();
  return workload::RunCalibrated(env, MakeOpts(cfg), profile, ArrOp(&array));
}

workload::CalibratedStats RunArrayPfs(
    const workload::CalibratedProfile& profile, const RunCfg& cfg) {
  sim::Environment env;
  pfs::PfsConfig config;
  config.num_data_servers = 4;
  config.data_device = simdev::DeviceParams::NvmeP3700(4ull << 30);
  config.local_stack = pfs::LocalStackKind::kLabFsMin;
  pfs::MiniPfs pfs(env, config);
  PfsFileEndpoint ep(pfs);
  labmods::DaosArray array(ep, "arr",
                           {kCellSize, kChunkSize, kArrayTargets});
  // MiniPfs files need no creation; no prepopulation phase (which also
  // exercises the digest's setup-time invariance: this series starts
  // at a different virtual time than the stack-backed ones).
  return workload::RunCalibrated(env, MakeOpts(cfg), profile, ArrOp(&array));
}

// No-op dry run: the reference issue digest for a scenario.
workload::CalibratedStats RunDry(const workload::CalibratedProfile& profile,
                                 const RunCfg& cfg) {
  sim::Environment env;
  const workload::CalibratedOpFn null_op =
      [](const workload::CalibratedRequest&) -> sim::Task<Status> {
    co_return Status::Ok();
  };
  return workload::RunCalibrated(env, MakeOpts(cfg), profile, null_op);
}

}  // namespace
}  // namespace labstor::bench

int main(int argc, char** argv) {
  labstor::Logger::Get().set_level(labstor::LogLevel::kWarn);
  labstor::dst::InitSeeds(&argc, argv);  // --dst_seed replays every draw
  using namespace labstor::bench;
  using labstor::workload::CalibratedStats;

  const bool quick = std::getenv("BENCH_CALIBRATED_QUICK") != nullptr;
  RunCfg cfg;
  cfg.duration = quick ? 8 * labstor::sim::kMs : 30 * labstor::sim::kMs;
  cfg.seed = labstor::dst::SeedList().front();

  PrintHeader("Calibrated open-loop scenarios x DAOS interfaces (us)");
  std::printf("seed=0x%llx streams=%u duration=%llums rate=%.0f/s/stream\n",
              static_cast<unsigned long long>(cfg.seed), cfg.streams,
              static_cast<unsigned long long>(cfg.duration / labstor::sim::kMs),
              cfg.rate);

  BenchJson json("calibrated");
  json.Meta("seed", static_cast<double>(cfg.seed), "%.0f");
  json.Meta("streams", static_cast<double>(cfg.streams), "%.0f");
  json.Meta("duration_ms",
            static_cast<double>(cfg.duration) / labstor::sim::kMs, "%.0f");
  json.Meta("rate_per_stream", cfg.rate, "%.0f");
  json.Meta("quick", quick ? "1" : "0");

  Table table({"scenario", "interface", "ops", "fail", "p50", "p99", "p999"});
  bool ok = true;

  for (const auto scenario : labstor::workload::AllScenarios()) {
    const auto profile = labstor::workload::ProfileFor(scenario);
    const std::string sname = profile.name;

    const CalibratedStats dry = RunDry(profile, cfg);
    bool cluster_invariants_ok = true;
    struct Series {
      const char* iface;
      CalibratedStats stats;
    };
    std::vector<Series> series;
    std::fprintf(stderr, "[%s] object...\n", sname.c_str());
    series.push_back({"object", RunObjectSingle(profile, cfg)});
    std::fprintf(stderr, "[%s] object_cluster...\n", sname.c_str());
    series.push_back(
        {"object_cluster",
         RunObjectCluster(profile, cfg, &cluster_invariants_ok)});
    std::fprintf(stderr, "[%s] array...\n", sname.c_str());
    series.push_back({"array", RunArraySingle(profile, cfg)});
    std::fprintf(stderr, "[%s] array_pfs...\n", sname.c_str());
    series.push_back({"array_pfs", RunArrayPfs(profile, cfg)});
    if (!cluster_invariants_ok) {
      std::fprintf(stderr, "FAIL: %s cluster invariants violated\n",
                   sname.c_str());
      ok = false;
    }

    for (const Series& s : series) {
      const CalibratedStats& st = s.stats;
      const TailStats tail = Tail(st);
      table.AddRow({sname, s.iface, std::to_string(st.arrivals.completed),
                    std::to_string(st.failed_ops), Fmt("%.1f", tail.p50 / 1e3),
                    Fmt("%.1f", tail.p99 / 1e3),
                    Fmt("%.1f", tail.p999 / 1e3)});
      const std::string key = sname + "." + s.iface;
      json.AddTail(key, tail);
      json.Add(key, "issued", st.arrivals.issued);
      json.Add(key, "failed", st.failed_ops);
      json.Add(key, "data_reads", st.data_reads);
      json.Add(key, "data_writes", st.data_writes);
      json.Add(key, "metadata_ops", st.metadata_ops);
      json.Add(key, "bytes_read", st.bytes_read);
      json.Add(key, "bytes_written", st.bytes_written);
      json.Add(key, "bursts_entered", st.bursts_entered);
      json.Add(key, "issue_digest", st.issue_digest);
      // The whole point of the calibrated harness: every deployment of
      // a scenario sees the SAME open-loop issue sequence.
      if (st.issue_digest != dry.issue_digest ||
          st.arrivals.issued != dry.arrivals.issued) {
        std::fprintf(stderr,
                     "FAIL: %s.%s issue sequence diverged from dry run "
                     "(digest %016llx vs %016llx, issued %llu vs %llu)\n",
                     sname.c_str(), s.iface,
                     static_cast<unsigned long long>(st.issue_digest),
                     static_cast<unsigned long long>(dry.issue_digest),
                     static_cast<unsigned long long>(st.arrivals.issued),
                     static_cast<unsigned long long>(dry.arrivals.issued));
        ok = false;
      }
      if (st.failed_ops != 0) {
        std::fprintf(stderr, "FAIL: %s.%s had %llu failed ops\n",
                     sname.c_str(), s.iface,
                     static_cast<unsigned long long>(st.failed_ops));
        ok = false;
      }
    }
  }

  table.Print();
  const std::string out = argc > 1 ? argv[1] : "BENCH_calibrated.json";
  if (!json.Write(out)) ok = false;
  std::printf("\nEvery scenario replays one seed-determined issue sequence "
              "across all four\ndeployments (digest-checked against a no-op "
              "dry run); tails are virtual-ns\nqueueing behind each "
              "interface's real stack.\n");
  if (!ok) {
    std::fprintf(stderr, "bench_calibrated: FAILED\n");
    return 1;
  }
  return 0;
}
