// E5 — Fig. 6: storage API performance.
//
// Single-threaded FIO-style writes at 4KB and 128KB through every
// route the paper compares — POSIX sync, POSIX AIO, libaio, io_uring,
// and LabStor's KernelDriver / SPDK / DAX LabMod paths — across HDD,
// SATA SSD, NVMe, and emulated PMEM. IOPS are normalized per
// (device, size) cell to the best performer, as in the figure.
//
// Paper shape (4KB NVMe): KernelDriver ≥15% over the best kernel API;
// SPDK another ~12% over KernelDriver; POSIX AIO worst (60-70%
// overhead); on HDD everything ties; at 128KB the spread shrinks to a
// few percent.
#include "bench/common.h"
#include "common/logging.h"
#include "workload/fio.h"

namespace labstor::bench {
namespace {

using kernelsim::ApiKind;

double RunIops(const simdev::DeviceParams& params, ApiKind api,
               uint64_t request_size) {
  sim::Environment env;
  simdev::SimDevice device(&env, params);
  ApiBlockTarget target(env, device, api);
  workload::FioJob job;
  job.op = simdev::IoOp::kWrite;
  job.random = true;
  job.request_size = request_size;
  job.threads = 1;
  job.iodepth = 1;
  job.bytes_per_thread = 400 * request_size;
  job.span_per_thread = params.capacity_bytes / 2;
  return workload::RunFio(env, target, job).Iops();
}

bool ApiApplies(ApiKind api, simdev::DeviceKind device) {
  if (api == ApiKind::kLabSpdk) return device == simdev::DeviceKind::kNvme;
  if (api == ApiKind::kLabDax) return device == simdev::DeviceKind::kPmem;
  if (api == ApiKind::kLabKernelDriver) {
    return device != simdev::DeviceKind::kPmem;  // PMEM uses DAX
  }
  return true;
}

}  // namespace
}  // namespace labstor::bench

int main() {
  labstor::Logger::Get().set_level(labstor::LogLevel::kWarn);
  using namespace labstor::bench;
  using labstor::kernelsim::ApiKind;
  using labstor::kernelsim::ApiKindName;

  const std::vector<labstor::simdev::DeviceParams> devices = {
      labstor::simdev::DeviceParams::SasHdd(1ull << 30),
      labstor::simdev::DeviceParams::SataSsd(1ull << 30),
      labstor::simdev::DeviceParams::NvmeP3700(1ull << 30),
      labstor::simdev::DeviceParams::PmemEmulated(1ull << 30),
  };
  const std::vector<ApiKind> apis = {
      ApiKind::kPosix,   ApiKind::kPosixAio,        ApiKind::kLibAio,
      ApiKind::kIoUring, ApiKind::kLabKernelDriver, ApiKind::kLabSpdk,
      ApiKind::kLabDax,
  };

  for (const uint64_t size : {4096ull, 128ull * 1024}) {
    PrintHeader("Fig 6 — storage API performance, " +
                std::string(size == 4096 ? "4KB" : "128KB") +
                " writes (IOPS, normalized per device)");
    Table table({"api", "hdd", "sata_ssd", "nvme", "pmem"});
    // Collect raw IOPS, then normalize per device column.
    std::vector<std::vector<double>> iops(apis.size(),
                                          std::vector<double>(devices.size(), 0));
    std::vector<double> best(devices.size(), 0);
    for (size_t a = 0; a < apis.size(); ++a) {
      for (size_t d = 0; d < devices.size(); ++d) {
        if (!ApiApplies(apis[a], devices[d].kind)) continue;
        iops[a][d] = RunIops(devices[d], apis[a], size);
        best[d] = std::max(best[d], iops[a][d]);
      }
    }
    for (size_t a = 0; a < apis.size(); ++a) {
      std::vector<std::string> row{std::string(ApiKindName(apis[a]))};
      for (size_t d = 0; d < devices.size(); ++d) {
        if (iops[a][d] == 0) {
          row.push_back("-");
        } else {
          row.push_back(Fmt("%.3f", iops[a][d] / best[d]));
        }
      }
      table.AddRow(std::move(row));
    }
    table.Print();
  }
  std::printf(
      "\nPaper shape: on NVMe 4KB, lab_kernel_driver beats the best kernel\n"
      "API by >=15%% and lab_spdk adds ~12%% more; posix_aio trails by\n"
      "60-70%%; HDD columns are flat (seek-bound); the 128KB table's spread\n"
      "collapses to single digits.\n");
  return 0;
}
