#include "common/arena.h"

#include <gtest/gtest.h>

#include <cstring>

namespace labstor {
namespace {

TEST(ArenaTest, AllocationsAreDistinctAndWritable) {
  Arena arena(1024);
  char* a = static_cast<char*>(arena.Allocate(100));
  char* b = static_cast<char*>(arena.Allocate(100));
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_NE(a, b);
  std::memset(a, 0xAA, 100);
  std::memset(b, 0xBB, 100);
  EXPECT_EQ(static_cast<unsigned char>(a[99]), 0xAAu);
  EXPECT_EQ(static_cast<unsigned char>(b[0]), 0xBBu);
}

TEST(ArenaTest, RespectsAlignment) {
  Arena arena;
  arena.Allocate(1);
  void* p = arena.Allocate(8, 64);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % 64, 0u);
  arena.Allocate(3);
  void* q = arena.Allocate(8, 16);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(q) % 16, 0u);
}

TEST(ArenaTest, GrowsBeyondChunkSize) {
  Arena arena(128);
  // Allocation bigger than the chunk gets its own chunk.
  void* big = arena.Allocate(10000);
  ASSERT_NE(big, nullptr);
  std::memset(big, 1, 10000);
  // Subsequent small allocations still work.
  void* small = arena.Allocate(16);
  ASSERT_NE(small, nullptr);
  EXPECT_GE(arena.allocated_bytes(), 10016u);
}

TEST(ArenaTest, PointersStableAcrossGrowth) {
  Arena arena(256);
  char* first = static_cast<char*>(arena.Allocate(64));
  std::memset(first, 0x5C, 64);
  for (int i = 0; i < 100; ++i) arena.Allocate(128);
  // The first allocation must not have moved or been corrupted.
  for (int i = 0; i < 64; ++i) {
    ASSERT_EQ(static_cast<unsigned char>(first[i]), 0x5Cu);
  }
}

TEST(ArenaTest, NewConstructsInPlace) {
  Arena arena;
  struct Point {
    int x, y;
  };
  Point* p = arena.New<Point>(Point{3, 4});
  EXPECT_EQ(p->x, 3);
  EXPECT_EQ(p->y, 4);
}

TEST(ArenaTest, ResetReleases) {
  Arena arena(128);
  arena.Allocate(1000);
  EXPECT_GT(arena.allocated_bytes(), 0u);
  arena.Reset();
  EXPECT_EQ(arena.allocated_bytes(), 0u);
  // Usable after reset.
  EXPECT_NE(arena.Allocate(10), nullptr);
}

}  // namespace
}  // namespace labstor
