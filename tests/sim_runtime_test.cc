// SimRuntime: the DES execution model driving real stacks/mods.
#include "core/sim_runtime.h"

#include <gtest/gtest.h>

#include <array>
#include <memory>

#include "simdev/registry.h"

namespace labstor::core {
namespace {

using sim::Environment;
using sim::Time;

constexpr const char* kAsyncStack =
    "mount: fs::/sa\n"
    "dag:\n"
    "  - mod: labfs\n"
    "    uuid: labfs_simrt\n"
    "    params:\n"
    "      log_records_per_worker: 4096\n"
    "    outputs: [sched_simrt]\n"
    "  - mod: noop_sched\n"
    "    uuid: sched_simrt\n"
    "    outputs: [drv_simrt]\n"
    "  - mod: kernel_driver\n"
    "    uuid: drv_simrt\n";

class SimRuntimeTest : public ::testing::Test {
 protected:
  SimRuntimeTest() : devices_(&env_) {
    EXPECT_TRUE(devices_.Create(simdev::DeviceParams::NvmeP3700(128 << 20)).ok());
  }

  Environment env_;
  simdev::DeviceRegistry devices_;
};

// Records the request's client-visible completion time (virtual now),
// which excludes background work like async log flushes.
sim::Task<void> OneRequest(sim::Environment& env, SimRuntime& rt,
                           uint32_t qid, Stack& stack, ipc::Request& req,
                           Status* out, Time* done) {
  *out = co_await rt.Execute(qid, stack, req);
  *done = env.now();
}

TEST_F(SimRuntimeTest, AsyncRequestChargesIpcWorkerAndDevice) {
  SimRuntime rt(env_, devices_, 2);
  auto stack = rt.MountYaml(kAsyncStack);
  ASSERT_TRUE(stack.ok()) << stack.status().ToString();
  rt.RegisterQueue(1, 3 * sim::kUs);

  ipc::Request create;
  create.op = ipc::OpCode::kCreate;
  create.SetPath("fs::/sa/file");
  Status st = Status::Internal("unset");
  Time done = 0;
  env_.Spawn(OneRequest(env_, rt, 1, **stack, create, &st, &done));
  env_.Run();
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_GT(done, 0u);
  EXPECT_EQ(rt.requests_done(), 1u);

  // Now a 4KB write: completion must include the device service time.
  std::vector<uint8_t> data(4096, 0xAB);
  ipc::Request write;
  write.op = ipc::OpCode::kWrite;
  write.SetPath("fs::/sa/file");
  write.length = 4096;
  write.data = data.data();
  const Time before = env_.now();
  env_.Spawn(OneRequest(env_, rt, 1, **stack, write, &st, &done));
  env_.Run();
  ASSERT_TRUE(st.ok());
  const Time elapsed = done - before;
  const auto p = simdev::DeviceParams::NvmeP3700();
  const Time device_min =
      p.write_latency + static_cast<Time>(p.write_ns_per_byte * 4096);
  EXPECT_GT(elapsed, device_min);
  EXPECT_LT(elapsed, device_min + 40 * sim::kUs);  // bounded software
}

TEST_F(SimRuntimeTest, SyncModeSkipsIpcCosts) {
  const auto run = [&](const std::string& rules) {
    Environment env;
    simdev::DeviceRegistry devices(&env);
    EXPECT_TRUE(devices.Create(simdev::DeviceParams::NvmeP3700(128 << 20)).ok());
    SimRuntime rt(env, devices, 2);
    std::string yaml = "mount: fs::/m\n" + rules +
                       "dag:\n"
                       "  - mod: labfs\n"
                       "    uuid: fs_mode\n"
                       "    params:\n"
                       "      log_records_per_worker: 1024\n"
                       "    outputs: [drv_mode]\n"
                       "  - mod: kernel_driver\n"
                       "    uuid: drv_mode\n";
    auto stack = rt.MountYaml(yaml);
    EXPECT_TRUE(stack.ok());
    rt.RegisterQueue(1, 3 * sim::kUs);
    ipc::Request create;
    create.op = ipc::OpCode::kCreate;
    create.SetPath("fs::/m/f");
    Status st = Status::Internal("unset");
    Time done = 0;
    env.Spawn(OneRequest(env, rt, 1, **stack, create, &st, &done));
    env.Run();
    return done;
  };
  const Time async_time = run("rules:\n  exec_mode: async\n");
  const Time sync_time = run("rules:\n  exec_mode: sync\n");
  const sim::SoftwareCosts& c = sim::DefaultCosts();
  // A create never waits on a device op, so the async path adds just
  // the shared-memory round trip and one worker dispatch.
  EXPECT_EQ(async_time - sync_time,
            c.shm_submit + c.worker_poll + c.shm_complete);
}

TEST_F(SimRuntimeTest, SingleWorkerSerializesSoftwareTime) {
  // Two clients, one worker: software portions serialize; with two
  // workers they overlap.
  const auto run = [&](size_t workers) {
    Environment env;
    simdev::DeviceRegistry devices(&env);
    // Fast PMEM backing so the compression software time dominates.
    simdev::DeviceParams pmem = simdev::DeviceParams::PmemEmulated(128 << 20);
    pmem.name = "nvme0";  // drivers default to this name
    EXPECT_TRUE(devices.Create(pmem).ok());
    SimRuntime rt(env, devices, workers);
    auto stack = rt.MountYaml(
        "mount: ctl::/d\n"
        "dag:\n"
        "  - mod: compress\n"
        "    uuid: zip_w\n"
        "    outputs: [drv_w]\n"
        "  - mod: kernel_driver\n"
        "    uuid: drv_w\n");
    EXPECT_TRUE(stack.ok());
    RoundRobinOrchestrator rr;
    rt.RegisterQueue(1, 20 * sim::kMs);
    rt.RegisterQueue(2, 20 * sim::kMs);
    rt.ApplyAssignment(rr.Rebalance(
        {QueueLoad{1, 0, 0}, QueueLoad{2, 0, 0}}, workers));
    // 1MB compressible block writes (timing-only payload). Requests
    // are not movable (atomic state), so they live in a fixed array.
    auto reqs = std::make_unique<std::array<ipc::Request, 2>>();
    Status st1, st2;
    Time d1 = 0, d2 = 0;
    for (int i = 0; i < 2; ++i) {
      (*reqs)[static_cast<size_t>(i)].op = ipc::OpCode::kBlkWrite;
      (*reqs)[static_cast<size_t>(i)].offset = static_cast<uint64_t>(i) << 20;
      (*reqs)[static_cast<size_t>(i)].length = 1 << 20;
    }
    env.Spawn(OneRequest(env, rt, 1, **stack, (*reqs)[0], &st1, &d1));
    env.Spawn(OneRequest(env, rt, 2, **stack, (*reqs)[1], &st2, &d2));
    env.Run();
    return std::max(d1, d2);
  };
  const Time one_worker = run(1);
  const Time two_workers = run(2);
  EXPECT_GT(one_worker, two_workers);
  // Compression ~0.6ms/MB dominates: serialization roughly doubles it.
  EXPECT_GT(static_cast<double>(one_worker) / static_cast<double>(two_workers),
            1.4);
}

TEST_F(SimRuntimeTest, AvgBusyCoresReflectsLoad) {
  SimRuntime rt(env_, devices_, 4);
  auto stack = rt.MountYaml(
      "mount: ctl::/busy\n"
      "dag:\n"
      "  - mod: compress\n"
      "    uuid: zip_busy\n"
      "    outputs: [drv_busy]\n"
      "  - mod: kernel_driver\n"
      "    uuid: drv_busy\n");
  ASSERT_TRUE(stack.ok());
  rt.RegisterQueue(1, 20 * sim::kMs);
  static ipc::Request req;
  req.op = ipc::OpCode::kBlkWrite;
  req.length = 1 << 20;
  static Status st;
  static Time done;
  env_.Spawn(OneRequest(env_, rt, 1, **stack, req, &st, &done));
  const Time end = env_.Run();
  const double busy = rt.AvgBusyCores(end);
  EXPECT_GT(busy, 0.0);
  EXPECT_LE(busy, 1.01);  // one request: at most ~one core busy
}

}  // namespace
}  // namespace labstor::core
