#include "common/string_util.h"

#include <gtest/gtest.h>

namespace labstor {
namespace {

TEST(StringUtilTest, TrimWhitespace) {
  EXPECT_EQ(TrimWhitespace("  abc  "), "abc");
  EXPECT_EQ(TrimWhitespace("\t\nabc\r\n"), "abc");
  EXPECT_EQ(TrimWhitespace(""), "");
  EXPECT_EQ(TrimWhitespace("   "), "");
  EXPECT_EQ(TrimWhitespace("a b"), "a b");
}

TEST(StringUtilTest, SplitString) {
  const auto parts = SplitString("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
  EXPECT_EQ(SplitString("", ',').size(), 1u);
  EXPECT_EQ(SplitString("abc", ',').size(), 1u);
}

TEST(StringUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("fs::/b", "fs::"));
  EXPECT_FALSE(StartsWith("fs", "fs::"));
  EXPECT_TRUE(EndsWith("stack.yaml", ".yaml"));
  EXPECT_FALSE(EndsWith("yaml", "stack.yaml"));
}

TEST(StringUtilTest, NormalizePath) {
  EXPECT_EQ(NormalizePath("/a/b/c"), "/a/b/c");
  EXPECT_EQ(NormalizePath("a/b/c"), "/a/b/c");
  EXPECT_EQ(NormalizePath("/a//b///c/"), "/a/b/c");
  EXPECT_EQ(NormalizePath("/a/./b"), "/a/b");
  EXPECT_EQ(NormalizePath("/a/b/../c"), "/a/c");
  EXPECT_EQ(NormalizePath("/.."), "/");
  EXPECT_EQ(NormalizePath(""), "/");
  EXPECT_EQ(NormalizePath("/"), "/");
}

TEST(StringUtilTest, ParentPath) {
  EXPECT_EQ(ParentPath("/a/b/c"), "/a/b");
  EXPECT_EQ(ParentPath("/a"), "/");
  EXPECT_EQ(ParentPath("/"), "/");
}

TEST(StringUtilTest, PathBasename) {
  EXPECT_EQ(PathBasename("/a/b/c.txt"), "c.txt");
  EXPECT_EQ(PathBasename("/a"), "a");
  EXPECT_EQ(PathBasename("/"), "/");
}

TEST(StringUtilTest, PathComponents) {
  const auto parts = PathComponents("/a/b/c");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
  EXPECT_TRUE(PathComponents("/").empty());
}

TEST(StringUtilTest, FormatBytes) {
  EXPECT_EQ(FormatBytes(512), "512.0 B");
  EXPECT_EQ(FormatBytes(4096), "4.0 KiB");
  EXPECT_EQ(FormatBytes(1.5 * 1024 * 1024), "1.5 MiB");
  EXPECT_EQ(FormatBytes(2.0 * 1024 * 1024 * 1024), "2.0 GiB");
}

}  // namespace
}  // namespace labstor
