// Failure injection: the error paths a production I/O platform must
// survive — device exhaustion, log exhaustion, malformed requests,
// queue overflow, permission walls, crashed runtimes with dirty state.
#include <gtest/gtest.h>

#include "core/client.h"
#include "core/runtime.h"
#include "faultinject/faultinject.h"
#include "labmods/consistency.h"
#include "labmods/genericfs.h"
#include "labmods/labfs.h"
#include "simdev/registry.h"

namespace labstor {
namespace {

class FailureTest : public ::testing::Test {
 protected:
  FailureTest() : devices_(nullptr), runtime_(MakeOptions(), devices_) {}

  static core::Runtime::Options MakeOptions() {
    core::Runtime::Options options;
    options.max_workers = 2;
    return options;
  }

  core::Stack* Mount(const std::string& yaml) {
    auto spec = core::StackSpec::Parse(yaml);
    EXPECT_TRUE(spec.ok()) << spec.status().ToString();
    auto stack = runtime_.MountStack(*spec, ipc::Credentials{1, 0, 0});
    EXPECT_TRUE(stack.ok()) << stack.status().ToString();
    return *stack;
  }

  simdev::DeviceRegistry devices_;
  core::Runtime runtime_;
};

TEST_F(FailureTest, DeviceFullSurfacesEnospcAndRecoversAfterUnlink) {
  // Tiny device: log region + a handful of data blocks.
  ASSERT_TRUE(devices_.Create(simdev::DeviceParams::NvmeP3700(2 << 20)).ok());
  Mount(
      "mount: fs::/tiny\n"
      "rules:\n"
      "  exec_mode: sync\n"
      "dag:\n"
      "  - mod: labfs\n"
      "    uuid: tiny_fs\n"
      "    params:\n"
      "      log_records_per_worker: 256\n"
      "    outputs: [tiny_drv]\n"
      "  - mod: kernel_driver\n"
      "    uuid: tiny_drv\n");
  core::Client client(runtime_, ipc::Credentials{100, 1000, 1000});
  ASSERT_TRUE(client.Connect().ok());
  labmods::GenericFs fs(client);

  auto fd = fs.Create("fs::/tiny/hog");
  ASSERT_TRUE(fd.ok());
  // Write until the allocator runs dry.
  std::vector<uint8_t> chunk(64 * 1024, 1);
  Status last = Status::Ok();
  uint64_t offset = 0;
  for (int i = 0; i < 64 && last.ok(); ++i) {
    last = fs.Write(*fd, chunk, offset).status();
    offset += chunk.size();
  }
  EXPECT_EQ(last.code(), StatusCode::kResourceExhausted);

  // Free space; writing works again.
  auto fd2 = fs.Create("fs::/tiny/small");
  ASSERT_TRUE(fd2.ok());
  ASSERT_TRUE(fs.Close(*fd).ok());
  ASSERT_TRUE(fs.Unlink("fs::/tiny/hog").ok());
  std::vector<uint8_t> small(4096, 2);
  EXPECT_TRUE(fs.Write(*fd2, small, 0).ok());
}

TEST_F(FailureTest, MetadataLogExhaustionIsAnError) {
  ASSERT_TRUE(devices_.Create(simdev::DeviceParams::NvmeP3700(64 << 20)).ok());
  Mount(
      "mount: fs::/logfull\n"
      "rules:\n"
      "  exec_mode: sync\n"
      "dag:\n"
      "  - mod: labfs\n"
      "    uuid: logfull_fs\n"
      "    params:\n"
      "      log_records_per_worker: 8\n"
      "    outputs: [logfull_drv]\n"
      "  - mod: kernel_driver\n"
      "    uuid: logfull_drv\n");
  core::Client client(runtime_, ipc::Credentials{100, 1000, 1000});
  ASSERT_TRUE(client.Connect().ok());
  labmods::GenericFs fs(client);
  Status last = Status::Ok();
  for (int i = 0; i < 64 && last.ok(); ++i) {
    last = fs.Create("fs::/logfull/f" + std::to_string(i)).status();
  }
  EXPECT_EQ(last.code(), StatusCode::kResourceExhausted);
}

TEST_F(FailureTest, DriverRejectsNonBlockOps) {
  ASSERT_TRUE(devices_.Create(simdev::DeviceParams::NvmeP3700(64 << 20)).ok());
  core::Stack* stack = Mount(
      "mount: blk::/raw\n"
      "rules:\n"
      "  exec_mode: sync\n"
      "dag:\n"
      "  - mod: kernel_driver\n"
      "    uuid: raw_drv\n");
  core::Client client(runtime_, ipc::Credentials{100, 1000, 1000});
  ASSERT_TRUE(client.Connect().ok());
  ipc::Request req;
  req.op = ipc::OpCode::kPut;  // KVS op straight at a driver
  req.SetPath("blk::/raw/key");
  EXPECT_EQ(client.Execute(req, *stack).code(), StatusCode::kInvalidArgument);
}

TEST_F(FailureTest, StackMissingModFailsMountCleanly) {
  ASSERT_TRUE(devices_.Create(simdev::DeviceParams::NvmeP3700(64 << 20)).ok());
  auto spec = core::StackSpec::Parse(
      "mount: fs::/ghost\n"
      "dag:\n"
      "  - mod: does_not_exist\n"
      "    uuid: g1\n");
  ASSERT_TRUE(spec.ok());
  auto stack = runtime_.MountStack(*spec, ipc::Credentials{1, 0, 0});
  EXPECT_EQ(stack.status().code(), StatusCode::kNotFound);
  // The namespace is untouched: remounting something valid works.
  EXPECT_EQ(runtime_.ns().size(), 0u);
}

TEST_F(FailureTest, DriverMissingDeviceFailsInit) {
  // No devices registered at all.
  auto spec = core::StackSpec::Parse(
      "mount: blk::/nodev\n"
      "dag:\n"
      "  - mod: kernel_driver\n"
      "    uuid: nodev_drv\n"
      "    params:\n"
      "      device: missing0\n");
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(runtime_.MountStack(*spec, ipc::Credentials{1, 0, 0})
                .status()
                .code(),
            StatusCode::kNotFound);
}

TEST_F(FailureTest, PermissionDenialNeverTouchesTheDevice) {
  auto dev = devices_.Create(simdev::DeviceParams::NvmeP3700(64 << 20));
  ASSERT_TRUE(dev.ok());
  core::Stack* stack = Mount(
      "mount: blk::/walled\n"
      "rules:\n"
      "  exec_mode: sync\n"
      "dag:\n"
      "  - mod: permissions\n"
      "    uuid: wall\n"
      "    params:\n"
      "      default: deny\n"
      "    outputs: [wall_drv]\n"
      "  - mod: kernel_driver\n"
      "    uuid: wall_drv\n");
  core::Client client(runtime_, ipc::Credentials{100, 1000, 1000});
  ASSERT_TRUE(client.Connect().ok());
  std::vector<uint8_t> data(4096, 7);
  ipc::Request req;
  req.op = ipc::OpCode::kBlkWrite;
  req.client_uid = 1000;
  req.length = data.size();
  req.data = data.data();
  req.SetPath("blk::/walled/x");
  EXPECT_EQ(client.Execute(req, *stack).code(),
            StatusCode::kPermissionDenied);
  EXPECT_EQ((*dev)->stats().writes.load(), 0u);
  EXPECT_EQ((*dev)->stats().bytes_written.load(), 0u);
}

TEST_F(FailureTest, GenericFsRejectsBadAndStaleFds) {
  ASSERT_TRUE(devices_.Create(simdev::DeviceParams::NvmeP3700(64 << 20)).ok());
  Mount(
      "mount: fs::/fds\n"
      "rules:\n"
      "  exec_mode: sync\n"
      "dag:\n"
      "  - mod: labfs\n"
      "    uuid: fds_fs\n"
      "    params:\n"
      "      log_records_per_worker: 256\n"
      "    outputs: [fds_drv]\n"
      "  - mod: kernel_driver\n"
      "    uuid: fds_drv\n");
  core::Client client(runtime_, ipc::Credentials{100, 1000, 1000});
  ASSERT_TRUE(client.Connect().ok());
  labmods::GenericFs fs(client);
  std::vector<uint8_t> buf(16);
  EXPECT_EQ(fs.Write(42, buf, 0).status().code(), StatusCode::kNotFound);
  auto fd = fs.Create("fs::/fds/a");
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(fs.Close(*fd).ok());
  EXPECT_EQ(fs.Close(*fd).code(), StatusCode::kNotFound);       // double close
  EXPECT_EQ(fs.Read(*fd, buf, 0).status().code(), StatusCode::kNotFound);
}

TEST_F(FailureTest, QueueOverflowBlocksSubmissionNotCorrectness) {
  ipc::QueuePair qp(1, ipc::QueueKind::kPrimary, true, 4,
                    ipc::Credentials{1, 0, 0});
  std::array<ipc::Request, 6> reqs;
  int accepted = 0;
  for (auto& req : reqs) accepted += qp.Submit(&req) ? 1 : 0;
  EXPECT_EQ(accepted, 4);
  // Draining one admits one more.
  ASSERT_TRUE(qp.PollSubmission().has_value());
  EXPECT_TRUE(qp.Submit(&reqs[4]));
}

TEST_F(FailureTest, CrashDropsUnflushedWriteBackData) {
  ASSERT_TRUE(devices_.Create(simdev::DeviceParams::NvmeP3700(64 << 20)).ok());
  core::Stack* stack = Mount(
      "mount: blk::/wb\n"
      "rules:\n"
      "  exec_mode: sync\n"
      "dag:\n"
      "  - mod: consistency\n"
      "    uuid: wb_fail\n"
      "    params:\n"
      "      policy: write_back\n"
      "      watermark_extents: 1000\n"
      "    outputs: [wb_drv]\n"
      "  - mod: kernel_driver\n"
      "    uuid: wb_drv\n");
  core::Client client(runtime_, ipc::Credentials{100, 1000, 1000});
  ASSERT_TRUE(client.Connect().ok());
  std::vector<uint8_t> data(4096, 0xAA);
  ipc::Request req;
  req.op = ipc::OpCode::kBlkWrite;
  req.length = data.size();
  req.data = data.data();
  ASSERT_TRUE(client.Execute(req, *stack).ok());
  auto mod = runtime_.registry().Find("wb_fail");
  ASSERT_TRUE(mod.ok());
  auto* wb = dynamic_cast<labmods::ConsistencyMod*>(*mod);
  EXPECT_EQ(wb->dirty_extents(), 1u);
  // Crash + repair: the dirty buffer is gone by contract.
  ASSERT_TRUE(runtime_.registry().RepairAll().ok());
  EXPECT_EQ(wb->dirty_extents(), 0u);
}

TEST_F(FailureTest, UpgradeOfUnknownModReportedWithoutWedgingQueues) {
  ASSERT_TRUE(devices_.Create(simdev::DeviceParams::NvmeP3700(64 << 20)).ok());
  core::Stack* stack = Mount(
      "mount: ctl::/d\n"
      "dag:\n"
      "  - mod: dummy\n"
      "    uuid: dummy_fail\n"
      "    version: 1\n");
  ASSERT_TRUE(runtime_.Start().ok());
  core::Client client(runtime_, ipc::Credentials{100, 1000, 1000});
  ASSERT_TRUE(client.Connect().ok());
  runtime_.SubmitUpgrade(
      core::UpgradeRequest{"no_such_mod", 0, core::UpgradeKind::kCentralized});
  // Traffic still flows after the failed upgrade unblocks the queues.
  auto req = client.NewRequest();
  ASSERT_TRUE(req.ok());
  (*req)->op = ipc::OpCode::kDummy;
  EXPECT_TRUE(client.Execute(**req, *stack).ok());
  EXPECT_TRUE((*req)->ToStatus().ok());
  EXPECT_EQ(runtime_.module_manager().upgrades_applied(), 0u);
  ASSERT_TRUE(runtime_.Stop().ok());
}

TEST_F(FailureTest, KvsGetBufferTooSmall) {
  ASSERT_TRUE(devices_.Create(simdev::DeviceParams::NvmeP3700(64 << 20)).ok());
  core::Stack* stack = Mount(
      "mount: kvs::/small\n"
      "rules:\n"
      "  exec_mode: sync\n"
      "dag:\n"
      "  - mod: labkvs\n"
      "    uuid: small_kvs\n"
      "    params:\n"
      "      log_records_per_worker: 256\n"
      "    outputs: [small_drv]\n"
      "  - mod: kernel_driver\n"
      "    uuid: small_drv\n");
  core::Client client(runtime_, ipc::Credentials{100, 1000, 1000});
  ASSERT_TRUE(client.Connect().ok());
  std::vector<uint8_t> value(8192, 5);
  ipc::Request put;
  put.op = ipc::OpCode::kPut;
  put.length = value.size();
  put.data = value.data();
  put.SetPath("kvs::/small/key");
  ASSERT_TRUE(client.Execute(put, *stack).ok());

  std::vector<uint8_t> tiny(16);
  ipc::Request get;
  get.op = ipc::OpCode::kGet;
  get.length = tiny.size();
  get.data = tiny.data();
  get.SetPath("kvs::/small/key");
  EXPECT_EQ(client.Execute(get, *stack).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(FailureTest, PartialStateRepairConvergesOnSecondEpoch) {
  ASSERT_TRUE(devices_.Create(simdev::DeviceParams::NvmeP3700(64 << 20)).ok());
  Mount(
      "mount: fs::/partial\n"
      "rules:\n"
      "  exec_mode: sync\n"
      "dag:\n"
      "  - mod: labfs\n"
      "    uuid: partial_fs\n"
      "    params:\n"
      "      log_records_per_worker: 256\n"
      "    outputs: [partial_drv]\n"
      "  - mod: kernel_driver\n"
      "    uuid: partial_drv\n");
  core::Client client(runtime_, ipc::Credentials{100, 1000, 1000});
  ASSERT_TRUE(client.Connect().ok());
  labmods::GenericFs fs(client);
  auto fd = fs.Create("fs::/partial/a");
  ASSERT_TRUE(fd.ok());
  std::vector<uint8_t> data(8192, 3);
  ASSERT_TRUE(fs.Write(*fd, data, 0).ok());

  // Fail the SECOND StateRepair call of the sweep: the first instance
  // repairs, the second doesn't — a genuinely mid-repair failure.
  faultinject::FaultInjector injector;
  faultinject::FaultPolicy policy;
  policy.trigger = faultinject::FaultPolicy::Trigger::kEveryN;
  policy.every_n = 2;
  policy.max_fires = 1;
  policy.code = StatusCode::kInternal;
  injector.Arm("core.repair.partial", policy);
  faultinject::ScopedInstall armed(injector);

  EXPECT_FALSE(runtime_.registry().RepairAll().ok());
  EXPECT_EQ(injector.fires("core.repair.partial"), 1u);
  // StateRepair is clear-and-rebuild, so the retry sweep converges.
  ASSERT_TRUE(runtime_.registry().RepairAll().ok());

  auto mod = runtime_.registry().Find("partial_fs");
  ASSERT_TRUE(mod.ok());
  auto* labfs = dynamic_cast<labmods::LabFsMod*>(*mod);
  ASSERT_NE(labfs, nullptr);
  EXPECT_TRUE(labfs->Exists("fs::/partial/a"));
  auto size = labfs->FileSize("fs::/partial/a");
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, data.size());
}

TEST_F(FailureTest, FailedWriteReturnsAllBlocksToAllocator) {
  // Regression: EnsureBlocks used to interleave "assign extent into the
  // inode" with "append its map record". When the metadata log filled
  // between extents, the not-yet-assigned extents (typically the stolen
  // ones) were stranded outside both the inode and the allocator —
  // leaked until remount. Set up exactly that: a 2-worker log with ONE
  // record per worker, so the create consumes worker 0's region and the
  // first map append of the big write fails.
  ASSERT_TRUE(devices_.Create(simdev::DeviceParams::NvmeP3700(2 << 20)).ok());
  Mount(
      "mount: fs::/leak\n"
      "rules:\n"
      "  exec_mode: sync\n"
      "dag:\n"
      "  - mod: labfs\n"
      "    uuid: leak_fs\n"
      "    params:\n"
      "      log_records_per_worker: 1\n"
      "    outputs: [leak_drv]\n"
      "  - mod: kernel_driver\n"
      "    uuid: leak_drv\n");
  core::Client client(runtime_, ipc::Credentials{100, 1000, 1000});
  ASSERT_TRUE(client.Connect().ok());
  labmods::GenericFs fs(client);
  auto mod = runtime_.registry().Find("leak_fs");
  ASSERT_TRUE(mod.ok());
  auto* labfs = dynamic_cast<labmods::LabFsMod*>(*mod);
  ASSERT_NE(labfs, nullptr);

  auto fd = fs.Create("fs::/leak/a");  // consumes worker 0's only record
  ASSERT_TRUE(fd.ok());
  const uint64_t free_before = labfs->allocator_free_blocks();

  // Big enough to need worker 0's whole pool plus stolen extents, so
  // the allocation spans several extents.
  std::vector<uint8_t> big(300 * labmods::LabFsMod::kBlockSize, 1);
  EXPECT_EQ(fs.Write(*fd, big, 0).status().code(),
            StatusCode::kResourceExhausted);
  EXPECT_GT(labfs->allocator_steals(), 0u);

  // Unlink frees every block the write had claimed (its own log append
  // also fails — the region is full — but the frees must still land).
  (void)fs.Unlink("fs::/leak/a");
  EXPECT_EQ(labfs->allocator_free_blocks(), free_before);
}

}  // namespace
}  // namespace labstor
