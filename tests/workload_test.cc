#include <gtest/gtest.h>

#include "kernelsim/access_api.h"
#include "kernelsim/kernel_fs.h"
#include "pfs/mini_pfs.h"
#include "workload/filebench.h"
#include "workload/fio.h"
#include "workload/fxmark.h"
#include "workload/labios.h"
#include "workload/vpic.h"

namespace labstor::workload {
namespace {

using sim::Environment;
using sim::Time;

// A trivial target with fixed per-op latency, for generator-logic
// tests independent of the device model.
class FixedLatencyTarget final : public BlockTarget {
 public:
  FixedLatencyTarget(Environment& env, Time latency)
      : env_(env), latency_(latency) {}
  sim::Task<void> Io(simdev::IoOp, uint32_t, uint64_t offset,
                     uint64_t) override {
    offsets.push_back(offset);
    co_await env_.Delay(latency_);
  }
  std::vector<uint64_t> offsets;

 private:
  Environment& env_;
  Time latency_;
};

TEST(FioTest, ClosedLoopOpsAndMakespan) {
  Environment env;
  FixedLatencyTarget target(env, 10 * sim::kUs);
  FioJob job;
  job.threads = 1;
  job.iodepth = 1;
  job.request_size = 4096;
  job.bytes_per_thread = 40 * 4096;
  const FioStats stats = RunFio(env, target, job);
  EXPECT_EQ(stats.ops, 40u);
  EXPECT_EQ(stats.bytes, 40u * 4096);
  EXPECT_EQ(stats.makespan, 400 * sim::kUs);  // strictly serial
  EXPECT_NEAR(stats.Iops(), 100000.0, 1.0);
  EXPECT_EQ(stats.latency.Max(), 10 * sim::kUs);
}

TEST(FioTest, IodepthOverlapsAgainstParallelTarget) {
  Environment env;
  FixedLatencyTarget target(env, 10 * sim::kUs);
  FioJob job;
  job.threads = 1;
  job.iodepth = 4;
  job.bytes_per_thread = 40 * 4096;
  const FioStats stats = RunFio(env, target, job);
  EXPECT_EQ(stats.ops, 40u);
  // Four lanes of 10 ops each, fully overlapped: 100µs makespan.
  EXPECT_EQ(stats.makespan, 100 * sim::kUs);
}

TEST(FioTest, SequentialOffsetsAdvance) {
  Environment env;
  FixedLatencyTarget target(env, 1);
  FioJob job;
  job.random = false;
  job.request_size = 4096;
  job.bytes_per_thread = 4 * 4096;
  RunFio(env, target, job);
  ASSERT_EQ(target.offsets.size(), 4u);
  EXPECT_EQ(target.offsets[1], target.offsets[0] + 4096);
  EXPECT_EQ(target.offsets[3], target.offsets[0] + 3 * 4096);
}

TEST(FioTest, RandomOffsetsWithinThreadSpan) {
  Environment env;
  FixedLatencyTarget target(env, 1);
  FioJob job;
  job.threads = 2;
  job.span_per_thread = 1 << 20;
  job.bytes_per_thread = 50 * 4096;
  RunFio(env, target, job);
  for (const uint64_t offset : target.offsets) {
    EXPECT_LT(offset, 2u << 20);
    EXPECT_EQ(offset % 4096, 0u);
  }
}

TEST(FioTest, DurationModeStops) {
  Environment env;
  FixedLatencyTarget target(env, 10 * sim::kUs);
  FioJob job;
  job.duration = 1 * sim::kMs;
  const FioStats stats = RunFio(env, target, job);
  EXPECT_EQ(stats.ops, 100u);  // 1ms / 10µs
}

TEST(FioTest, DeterministicAcrossRuns) {
  const auto run = [] {
    Environment env;
    FixedLatencyTarget target(env, 3);
    FioJob job;
    job.threads = 3;
    job.bytes_per_thread = 20 * 4096;
    job.seed = 42;
    RunFio(env, target, job);
    return target.offsets;
  };
  EXPECT_EQ(run(), run());
}

// ---------- FxMark ----------

class CountingFs final : public FsTarget {
 public:
  explicit CountingFs(Environment& env, Time op_latency)
      : env_(env), latency_(op_latency) {}
  sim::Task<void> Create(uint32_t) override { return Op(&creates); }
  sim::Task<void> Open(uint32_t) override { return Op(&opens); }
  sim::Task<void> Close(uint32_t) override { return Op(&closes); }
  sim::Task<void> Write(uint32_t, uint64_t, uint64_t len) override {
    write_bytes += len;
    return Op(&writes);
  }
  sim::Task<void> Read(uint32_t, uint64_t, uint64_t len) override {
    read_bytes += len;
    return Op(&reads);
  }
  sim::Task<void> Fsync(uint32_t) override { return Op(&fsyncs); }
  sim::Task<void> Unlink(uint32_t) override { return Op(&unlinks); }

  uint64_t creates = 0, opens = 0, closes = 0, writes = 0, reads = 0,
           fsyncs = 0, unlinks = 0;
  uint64_t write_bytes = 0, read_bytes = 0;

 private:
  sim::Task<void> Op(uint64_t* counter) {
    ++*counter;
    co_await env_.Delay(latency_);
  }
  Environment& env_;
  Time latency_;
};

TEST(FxmarkTest, CountsAndThroughput) {
  Environment env;
  CountingFs fs(env, 5 * sim::kUs);
  const FxmarkResult result = RunFxmarkCreate(env, fs, 4, 100);
  EXPECT_EQ(result.ops, 400u);
  EXPECT_EQ(fs.creates, 400u);
  // 4 parallel threads x 100 x 5µs = 500µs makespan.
  EXPECT_EQ(result.makespan, 500 * sim::kUs);
  EXPECT_NEAR(result.OpsPerSec(), 800000.0, 1.0);
}

// ---------- Filebench ----------

TEST(FilebenchTest, VarmailMixIsMetadataHeavy) {
  Environment env;
  CountingFs fs(env, 1 * sim::kUs);
  const FilebenchResult result =
      RunFilebench(env, fs, FilebenchKind::kVarmail, 2, 10);
  EXPECT_EQ(result.ops, 20u);
  EXPECT_EQ(fs.creates, 20u);
  EXPECT_EQ(fs.unlinks, 20u);
  EXPECT_EQ(fs.fsyncs, 40u);  // two per iteration
  EXPECT_GT(fs.opens, 0u);
}

TEST(FilebenchTest, WebserverIsReadDominated) {
  Environment env;
  CountingFs fs(env, 1 * sim::kUs);
  RunFilebench(env, fs, FilebenchKind::kWebserver, 1, 10);
  EXPECT_EQ(fs.reads, 100u);  // 10 per iteration
  EXPECT_EQ(fs.creates, 0u);
  EXPECT_EQ(fs.writes, 10u);  // log appends
  EXPECT_GT(fs.reads, fs.writes);
}

TEST(FilebenchTest, FileserverMovesBigBytes) {
  Environment env;
  CountingFs fs(env, 1 * sim::kUs);
  RunFilebench(env, fs, FilebenchKind::kFileserver, 1, 5);
  EXPECT_EQ(fs.write_bytes, 5u << 20);  // 1MB per iteration
  EXPECT_EQ(fs.read_bytes, 5u << 20);
  // Far more data per metadata op than varmail.
  EXPECT_GT(fs.write_bytes / (fs.creates + fs.opens + 1), 100000u);
}

TEST(FilebenchTest, KindNames) {
  EXPECT_EQ(FilebenchKindName(FilebenchKind::kVarmail), "varmail");
  EXPECT_EQ(FilebenchKindName(FilebenchKind::kFileserver), "fileserver");
}

// ---------- LABIOS ----------

class CountingLabels final : public LabelTarget {
 public:
  explicit CountingLabels(Environment& env) : env_(env) {}
  sim::Task<void> StoreLabel(uint32_t, uint64_t, uint64_t len) override {
    bytes += len;
    ++stores;
    co_await env_.Delay(20 * sim::kUs);
  }
  sim::Task<void> LoadLabel(uint32_t, uint64_t, uint64_t) override {
    co_return;
  }
  uint64_t stores = 0, bytes = 0;

 private:
  Environment& env_;
};

TEST(LabiosTest, StoresAllLabels) {
  Environment env;
  CountingLabels target(env);
  const LabiosResult result = RunLabiosWorker(env, target, 2, 50, 8192);
  EXPECT_EQ(result.labels, 100u);
  EXPECT_EQ(result.bytes, 100u * 8192);
  EXPECT_EQ(target.stores, 100u);
  // Two parallel workers: 50 x 20µs = 1ms.
  EXPECT_EQ(result.makespan, 1 * sim::kMs);
  EXPECT_GT(result.BandwidthMBps(), 0.0);
}

// ---------- VPIC over MiniPfs ----------

TEST(VpicTest, WritesAndReadsAllBytesThroughPfs) {
  Environment env;
  pfs::PfsConfig config;
  config.num_data_servers = 2;
  config.data_device = simdev::DeviceParams::NvmeP3700(256 << 20);
  config.local_stack = pfs::LocalStackKind::kLabFsMin;
  pfs::MiniPfs fs(env, config);
  VpicConfig vpic;
  vpic.processes = 4;
  vpic.timesteps = 2;
  vpic.bytes_per_step = 1 << 20;
  const VpicResult result = RunVpicThenBdcats(env, fs, vpic);
  EXPECT_EQ(result.total_bytes, 8u << 20);
  EXPECT_GT(result.write_makespan, 0u);
  EXPECT_GT(result.read_makespan, 0u);
  // 8MB / 64KB stripes, three metadata sub-ops per stripe access
  // (dentry walk + stripe map + attrs), x2 (write+read).
  EXPECT_EQ(fs.metadata_ops(), 3 * 2 * (8u << 20) / (64 * 1024));
}

TEST(MiniPfsTest, FasterMetadataStackImprovesEndToEnd) {
  const auto run = [](pfs::LocalStackKind kind) {
    Environment env;
    pfs::PfsConfig config;
    config.num_data_servers = 2;
    config.data_device = simdev::DeviceParams::NvmeP3700(256 << 20);
    config.local_stack = kind;
    pfs::MiniPfs fs(env, config);
    VpicConfig vpic;
    vpic.processes = 8;
    vpic.timesteps = 1;
    vpic.bytes_per_step = 2 << 20;
    return RunVpicThenBdcats(env, fs, vpic).write_makespan;
  };
  const Time ext4 = run(pfs::LocalStackKind::kExt4);
  const Time lab_all = run(pfs::LocalStackKind::kLabFsAll);
  const Time lab_min = run(pfs::LocalStackKind::kLabFsMin);
  EXPECT_LT(lab_all, ext4);
  EXPECT_LE(lab_min, lab_all);
  // Single-digit-to-modest percentage gain, not a rewrite of physics.
  EXPECT_LT(static_cast<double>(ext4) / static_cast<double>(lab_min), 1.6);
}

TEST(MiniPfsTest, HddDataTierHidesMetadataGains) {
  const auto run = [](pfs::LocalStackKind kind) {
    Environment env;
    pfs::PfsConfig config;
    config.num_data_servers = 2;
    config.data_device = simdev::DeviceParams::SasHdd(256 << 20);
    config.local_stack = kind;
    pfs::MiniPfs fs(env, config);
    VpicConfig vpic;
    vpic.processes = 4;
    vpic.timesteps = 1;
    vpic.bytes_per_step = 1 << 20;
    return RunVpicThenBdcats(env, fs, vpic).write_makespan;
  };
  const Time ext4 = run(pfs::LocalStackKind::kExt4);
  const Time lab = run(pfs::LocalStackKind::kLabFsMin);
  // On HDDs seeks dominate: the gain shrinks under a few percent.
  EXPECT_LT(static_cast<double>(ext4) / static_cast<double>(lab), 1.05);
}

}  // namespace
}  // namespace labstor::workload
