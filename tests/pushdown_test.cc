// Pushdown op chains (src/labmods/pushdown, DESIGN.md §12): the chain
// DSL sandbox, the device-queue-layer interpreter (pointer chase,
// scan+filter, compound RMW), epoch-gated re-registration, the
// Request::Reuse stale-cursor regression, crash atomicity of mutating
// chains at every chain-step boundary, and cluster routing of a whole
// chain to the shard owner.
//
// Own main (like dst_test): dst::InitSeeds strips --dst_seed /
// --dst_random_seeds before gtest parses argv, so CI can replay a
// failing run (`test_pushdown --dst_seed=0x...`) or widen the sweep
// (`test_pushdown --dst_random_seeds=25`). Suites are named Pushdown*
// so the TSan CI job can select them by name.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "dst/crash_enum.h"
#include "dst/invariants.h"
#include "dst/journal.h"
#include "dst/rigs.h"
#include "dst/schedule.h"
#include "dst/workloads.h"
#include "ipc/chain.h"
#include "ipc/request.h"
#include "labmods/pushdown.h"

namespace labstor::dst {
namespace {

using labmods::PushdownMod;

// ---------------------------------------------------------------------------
// Chain DSL: sandbox validation and wire framing.
// ---------------------------------------------------------------------------

TEST(PushdownDslTest, CanonicalBuildersValidate) {
  const ipc::ChainProgram chase = ipc::BuildPointerChaseChain(1, 8, 16);
  EXPECT_TRUE(chase.Validate().ok());
  EXPECT_EQ(chase.num_steps, 15u);  // 8 gets, 7 derefs between them
  EXPECT_FALSE(chase.Mutates());

  const ipc::ChainProgram rmw = ipc::BuildRmwChain(2, 0, 41);
  EXPECT_TRUE(rmw.Validate().ok());
  EXPECT_EQ(rmw.num_steps, 3u);
  EXPECT_TRUE(rmw.Mutates());
}

TEST(PushdownDslTest, SandboxRejectsOutOfBoundsPrograms) {
  // Zero id.
  ipc::ChainProgram p = ipc::BuildRmwChain(0, 0, 1);
  EXPECT_FALSE(p.Validate().ok());

  // Step count outside 1..kMaxChainSteps.
  p = ipc::BuildRmwChain(1, 0, 1);
  p.num_steps = 0;
  EXPECT_FALSE(p.Validate().ok());
  p.num_steps = ipc::kMaxChainSteps + 1;
  EXPECT_FALSE(p.Validate().ok());

  // Byte budget outside 1..kMaxChainScratch.
  p = ipc::BuildRmwChain(1, 0, 1);
  p.byte_budget = 0;
  EXPECT_FALSE(p.Validate().ok());
  p.byte_budget = ipc::kMaxChainScratch + 1;
  EXPECT_FALSE(p.Validate().ok());

  // u64 access past the budget.
  p = ipc::BuildRmwChain(1, /*field_offset=*/4090, 1, /*byte_budget=*/4096);
  EXPECT_FALSE(p.Validate().ok());

  // deref_key window past the budget / past key capacity.
  p = ipc::BuildPointerChaseChain(1, 2, 16, /*byte_budget=*/8);
  EXPECT_FALSE(p.Validate().ok());
  p = ipc::BuildPointerChaseChain(1, 2, ipc::kChainKeyCapacity);
  EXPECT_FALSE(p.Validate().ok());

  // Invalid step kind.
  p = ipc::BuildRmwChain(1, 0, 1);
  p.steps[1].kind = ipc::ChainStepKind::kInvalid;
  EXPECT_FALSE(p.Validate().ok());

  // Bad magic (a non-chain payload can never register).
  p = ipc::BuildRmwChain(1, 0, 1);
  p.magic = 0xDEAD;
  EXPECT_FALSE(p.Validate().ok());
}

TEST(PushdownDslTest, EncodeDecodeRoundTrips) {
  const ipc::ChainProgram p = ipc::BuildPointerChaseChain(7, 4, 32);
  std::vector<uint8_t> wire(ipc::EncodedChainBytes());
  ipc::EncodeChainProgram(p, wire.data());

  auto decoded = ipc::DecodeChainProgram(wire.data(), wire.size());
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(std::memcmp(&p, &*decoded, sizeof(p)), 0);

  // Short payloads are rejected before validation can touch them.
  EXPECT_FALSE(ipc::DecodeChainProgram(wire.data(), wire.size() - 1).ok());
  EXPECT_FALSE(ipc::DecodeChainProgram(nullptr, wire.size()).ok());
}

// ---------------------------------------------------------------------------
// Interpreter on the sync pushdown -> labkvs -> driver rig.
// ---------------------------------------------------------------------------

// 64-byte value whose head is `next` NUL-terminated (a pointer-chase
// link) and whose tail is pattern bytes.
std::vector<uint8_t> LinkValue(const std::string& next, uint64_t tag) {
  std::vector<uint8_t> value = PatternBytes(tag, 64);
  std::memset(value.data(), 0, 32);
  std::memcpy(value.data(), next.data(), next.size());
  return value;
}

std::vector<uint8_t> CounterValue(uint64_t counter, uint64_t tag) {
  std::vector<uint8_t> value = PatternBytes(tag, 64);
  std::memcpy(value.data(), &counter, sizeof(counter));
  return value;
}

TEST(PushdownExecTest, PointerChaseRunsAtTheDeviceQueueLayer) {
  auto rig = PushdownKvsRig::Create();
  ASSERT_TRUE(rig.ok()) << rig.status().ToString();
  labmods::GenericKvs* kvs = (*rig)->kvs();
  PushdownMod* pd = (*rig)->pushdown();
  ASSERT_NE(pd, nullptr);

  // k0 -> k1 -> k2 -> k3(payload).
  const std::vector<uint8_t> payload = PatternBytes(99, 64);
  ASSERT_TRUE(kvs->Put(WorkloadKvsKey(3), payload).ok());
  for (int i = 2; i >= 0; --i) {
    ASSERT_TRUE(kvs->Put(WorkloadKvsKey(i),
                         LinkValue(WorkloadKvsKey(i + 1), 10 + i))
                    .ok());
  }

  const ipc::ChainProgram chase =
      ipc::BuildPointerChaseChain(2, /*depth=*/4, /*key_bytes=*/32);
  ASSERT_TRUE(kvs->RegisterChain("kvs::/dst", chase).ok());

  std::vector<uint8_t> out(64);
  auto copied = kvs->ExecChain(2, WorkloadKvsKey(0), out);
  ASSERT_TRUE(copied.ok()) << copied.status().ToString();
  EXPECT_EQ(*copied, 64u);
  EXPECT_EQ(out, payload);  // the chain ended on k3's value

  // One round trip collapsed 4 dependent gets: 3 hops collapsed, 2
  // crossings saved per hop.
  const auto chains = pd->ListChains();
  ASSERT_EQ(chains.size(), 1u);
  EXPECT_EQ(chains[0].id, 2u);
  EXPECT_EQ(chains[0].executions, 1u);
  EXPECT_EQ(chains[0].steps_executed, 7u);
  EXPECT_EQ(chains[0].crossings_saved, 6u);
  EXPECT_GT(chains[0].saved_ns, 0u);
  EXPECT_EQ(pd->crossings_saved(), 6u);
}

TEST(PushdownExecTest, FilterStopsTheChainEarly) {
  auto rig = PushdownKvsRig::Create();
  ASSERT_TRUE(rig.ok()) << rig.status().ToString();
  labmods::GenericKvs* kvs = (*rig)->kvs();
  PushdownMod* pd = (*rig)->pushdown();

  const std::string key = WorkloadKvsKey(0);
  ASSERT_TRUE(kvs->Put(key, CounterValue(100, 5)).ok());

  // get -> filter(counter >= 500) -> modify(+7) -> put.
  ipc::ChainProgram p;
  p.id = 3;
  p.num_steps = 4;
  p.steps[0].kind = ipc::ChainStepKind::kGet;
  p.steps[1].kind = ipc::ChainStepKind::kFilter;
  p.steps[1].b = 500;
  p.steps[2].kind = ipc::ChainStepKind::kModify;
  p.steps[2].b = 7;
  p.steps[3].kind = ipc::ChainStepKind::kPut;
  ASSERT_TRUE(kvs->RegisterChain("kvs::/dst", p).ok());

  // Below the threshold: the chain stops after the filter step and the
  // value is untouched.
  std::vector<uint8_t> out(64);
  ASSERT_TRUE(kvs->ExecChain(3, key, out).ok());
  EXPECT_EQ(pd->ListChains()[0].steps_executed, 2u);
  std::vector<uint8_t> got(64);
  ASSERT_TRUE(kvs->Get(key, got).ok());
  EXPECT_EQ(got, CounterValue(100, 5));

  // At/above the threshold: all four steps run and the put lands.
  ASSERT_TRUE(kvs->Put(key, CounterValue(1000, 5)).ok());
  ASSERT_TRUE(kvs->ExecChain(3, key, out).ok());
  EXPECT_EQ(pd->ListChains()[0].steps_executed, 6u);
  ASSERT_TRUE(kvs->Get(key, got).ok());
  EXPECT_EQ(got, CounterValue(1007, 5));
}

TEST(PushdownExecTest, RmwChainReadsModifiesAndPersists) {
  auto rig = PushdownKvsRig::Create();
  ASSERT_TRUE(rig.ok()) << rig.status().ToString();
  labmods::GenericKvs* kvs = (*rig)->kvs();

  const std::string key = WorkloadKvsKey(1);
  ASSERT_TRUE(kvs->Put(key, CounterValue(40, 9)).ok());
  ASSERT_TRUE(
      kvs->RegisterChain("kvs::/dst", ipc::BuildRmwChain(4, 0, 2)).ok());

  std::vector<uint8_t> out(64);
  auto copied = kvs->ExecChain(4, key, out);
  ASSERT_TRUE(copied.ok()) << copied.status().ToString();
  EXPECT_EQ(*copied, 64u);
  EXPECT_EQ(out, CounterValue(42, 9));  // returned value is post-modify

  std::vector<uint8_t> got(64);
  ASSERT_TRUE(kvs->Get(key, got).ok());
  EXPECT_EQ(got, CounterValue(42, 9));  // and it is durable
}

TEST(PushdownExecTest, ReRegistrationIsEpochGated) {
  auto rig = PushdownKvsRig::Create();
  ASSERT_TRUE(rig.ok()) << rig.status().ToString();
  PushdownMod* pd = (*rig)->pushdown();

  const ipc::ChainProgram original = ipc::BuildRmwChain(6, 0, 1);
  ASSERT_TRUE(pd->Register(original, /*epoch=*/5).ok());

  // Idempotent re-registration of the identical program: always fine,
  // even with a stale epoch view.
  EXPECT_TRUE(pd->Register(original, /*epoch=*/0).ok());

  // Replacing the program without an epoch bump is refused...
  const ipc::ChainProgram modified = ipc::BuildRmwChain(6, 0, 2);
  const Status stale = pd->Register(modified, /*epoch=*/5);
  EXPECT_FALSE(stale.ok());
  EXPECT_EQ(stale.code(), StatusCode::kFailedPrecondition);

  // ...and allowed once the namespace epoch has advanced.
  EXPECT_TRUE(pd->Register(modified, /*epoch=*/6).ok());
  const auto chains = pd->ListChains();
  ASSERT_EQ(chains.size(), 1u);
  EXPECT_EQ(chains[0].registered_epoch, 6u);
}

TEST(PushdownExecTest, UnknownChainAndNonChainTrafficBehave) {
  auto rig = PushdownKvsRig::Create();
  ASSERT_TRUE(rig.ok()) << rig.status().ToString();
  labmods::GenericKvs* kvs = (*rig)->kvs();

  // Plain traffic passes through the pushdown mod untouched.
  const std::string key = WorkloadKvsKey(2);
  ASSERT_TRUE(kvs->Put(key, CounterValue(1, 1)).ok());
  std::vector<uint8_t> got(64);
  ASSERT_TRUE(kvs->Get(key, got).ok());
  EXPECT_EQ(got, CounterValue(1, 1));

  // Executing a chain id nobody registered fails cleanly.
  std::vector<uint8_t> out(64);
  EXPECT_FALSE(kvs->ExecChain(77, key, out).ok());
}

// ---------------------------------------------------------------------------
// Request::Reuse regression: a recycled slot must not carry the
// previous chain's descriptor/cursor into the next submission.
// ---------------------------------------------------------------------------

TEST(PushdownReuseTest, ReuseClearsChainDescriptorAndCursor) {
  ipc::Request req;
  req.chain_id = 9;
  req.chain_step = 5;
  req.Reuse();
  EXPECT_EQ(req.chain_id, 0u);
  EXPECT_EQ(req.chain_step, 0u);
}

TEST(PushdownReuseTest, ConsecutiveChainExecsOnOneSlotSucceed) {
  auto rig = PushdownKvsRig::Create();
  ASSERT_TRUE(rig.ok()) << rig.status().ToString();
  labmods::GenericKvs* kvs = (*rig)->kvs();

  const std::string key = WorkloadKvsKey(0);
  ASSERT_TRUE(kvs->Put(key, CounterValue(10, 3)).ok());
  ASSERT_TRUE(
      kvs->RegisterChain("kvs::/dst", ipc::BuildRmwChain(1, 0, 5)).ok());

  // GenericKvs recycles one request slot; the completed first chain
  // leaves chain_step = steps-executed on it. Without Reuse clearing
  // the cursor, the second exec would be rejected as a stale resume.
  std::vector<uint8_t> out(64);
  ASSERT_TRUE(kvs->ExecChain(1, key, out).ok());
  auto second = kvs->ExecChain(1, key, out);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(out, CounterValue(20, 3));
}

// ---------------------------------------------------------------------------
// Crash atomicity: a partially executed RMW chain either fully
// replays or leaves no acked effect, at EVERY chain-step boundary.
// ---------------------------------------------------------------------------

template <typename Rig>
Result<std::unique_ptr<CrashRig>> MakeRig() {
  auto rig = Rig::Create();
  if (!rig.ok()) return rig.status();
  return std::unique_ptr<CrashRig>(std::move(*rig));
}

TEST(PushdownCrashTest, RmwChainAtomicAtEveryCrashPoint) {
  const std::string key = WorkloadKvsKey(0);
  const std::vector<uint8_t> before = CounterValue(1000, 7);
  const std::vector<uint8_t> after = CounterValue(1041, 7);
  size_t enforce_from = 0;  // filled once the pre-chain value is durable

  const Workload workload = [&](CrashRig& rig, Schedule& sched,
                                const DeviceJournal& journal,
                                WorkloadLedger& ledger) -> Status {
    (void)sched;
    labmods::GenericKvs* kvs = rig.kvs();
    PushdownMod* pd = rig.pushdown();
    if (kvs == nullptr || pd == nullptr) {
      return Status::FailedPrecondition("rig has no pushdown stack");
    }
    size_t j0 = journal.entries();
    LABSTOR_RETURN_IF_ERROR(kvs->Put(key, before));
    ledger.kv.AckPut(key, before, j0, journal.entries());
    enforce_from = journal.entries();

    LABSTOR_RETURN_IF_ERROR(
        kvs->RegisterChain("kvs::/dst", ipc::BuildRmwChain(1, 0, 41)));
    pd->SetStepHook([&ledger, &journal](uint32_t, uint32_t) {
      ledger.chain_step_boundaries.push_back(journal.entries());
    });
    std::vector<uint8_t> out(64);
    j0 = journal.entries();
    const auto copied = kvs->ExecChain(1, key, out);
    pd->SetStepHook(nullptr);
    LABSTOR_RETURN_IF_ERROR(copied.status());
    ledger.kv.AckPut(key, after, j0, journal.entries());
    if (*copied != after.size() || out != after) {
      return Status::Internal("chain read-back mismatch");
    }
    return Status::Ok();
  };

  const LabKvsAckedPutsVisible visible;
  const PushdownChainAtomicity atomic(key, before, after, &enforce_from);
  Schedule sched(SeedList().front());
  auto report = EnumerateCrashPoints(MakeRig<PushdownKvsRig>, workload,
                                     {&visible, &atomic}, sched);
  ASSERT_TRUE(report.ok()) << report.status().ToString() << "; "
                           << sched.ReplayHint();
  EXPECT_GT(report->boundaries, 0u);
  // 5 torn-prefix states per log boundary + end-of-run + one revisit
  // per chain step (the RMW chain runs get/modify/put = 3 steps).
  // Exact, so a silently skipped chain-step boundary fails.
  EXPECT_EQ(report->points_visited, report->boundaries * 5 + 1 + 3)
      << sched.ReplayHint();
  EXPECT_TRUE(report->failures.empty()) << report->Summary() << "\n"
                                        << sched.ReplayHint();
}

TEST(PushdownCrashTest, SeedSweptWorkloadRecoversEveryAckedChain) {
  constexpr size_t kChains = 8;
  const LabKvsAckedPutsVisible visible;
  for (const uint64_t seed : SeedList()) {
    SCOPED_TRACE("seed 0x" + std::to_string(seed));
    Schedule sched(seed);
    auto report = EnumerateCrashPoints(
        MakeRig<PushdownKvsRig>,
        [](CrashRig& rig, Schedule& s, const DeviceJournal& journal,
           WorkloadLedger& ledger) {
          return RunPushdownWorkload(rig, s, journal, ledger, kChains);
        },
        {&visible}, sched);
    ASSERT_TRUE(report.ok()) << report.status().ToString() << "; "
                             << sched.ReplayHint();
    EXPECT_GT(report->boundaries, 0u) << sched.ReplayHint();
    // Every chain is a 3-step RMW, so the chain-step revisits are
    // exactly 3 per executed chain on top of the standard sweep.
    EXPECT_EQ(report->points_visited,
              report->boundaries * 5 + 1 + kChains * 3)
        << sched.ReplayHint();
    EXPECT_TRUE(report->failures.empty())
        << report->Summary() << "\n"
        << sched.ReplayHint();
  }
}

TEST(PushdownCrashTest, SameSeedReplaysByteIdentically) {
  const auto run = [](uint64_t seed) {
    Schedule sched(seed);
    const LabKvsAckedPutsVisible visible;
    auto report = EnumerateCrashPoints(
        MakeRig<PushdownKvsRig>,
        [](CrashRig& rig, Schedule& s, const DeviceJournal& journal,
           WorkloadLedger& ledger) {
          return RunPushdownWorkload(rig, s, journal, ledger, 5);
        },
        {&visible}, sched);
    EXPECT_TRUE(report.ok());
    return sched.trace();
  };
  const uint64_t seed = SeedList().front();
  const std::string first = run(seed);
  EXPECT_EQ(first, run(seed));
  EXPECT_FALSE(first.empty());
}

// ---------------------------------------------------------------------------
// Cluster: a chain routes to the shard owner and executes there in
// one network hop instead of one round trip per dependent step.
// ---------------------------------------------------------------------------

// Drives one coroutine to completion on the rig's environment.
template <typename MakeTask>
Status Drive(ClusterRig& rig, MakeTask make_task) {
  auto status = std::make_shared<Status>();
  auto wrap = [](sim::Task<Status> task,
                 std::shared_ptr<Status> out) -> sim::Task<void> {
    *out = co_await std::move(task);
  };
  rig.env().Spawn(wrap(make_task(), status));
  rig.env().Run();
  return *status;
}

// A label owned by a node other than `gateway` (so the exec must
// forward), found by deterministic trial.
std::string RemoteLabel(cluster::Cluster& cluster, uint32_t gateway,
                        const std::string& prefix) {
  const auto map = cluster.map();
  for (int i = 0; i < 256; ++i) {
    const std::string label = prefix + std::to_string(i);
    if (map->OwnerOfLabel(label) != gateway) return label;
  }
  return "";
}

TEST(PushdownClusterTest, RmwChainExecutesAtTheRemoteOwner) {
  cluster::ClusterConfig config;
  config.initial_nodes = 4;
  auto rig = ClusterRig::Create(config);
  ASSERT_TRUE(rig.ok()) << rig.status().ToString();
  cluster::Cluster& cluster = (*rig)->cluster();

  const std::string label = RemoteLabel(cluster, 0, "t0/rmw");
  ASSERT_FALSE(label.empty());
  const uint32_t owner = cluster.map()->OwnerOfLabel(label);

  ASSERT_TRUE(Drive(**rig, [&] {
                return cluster.PutBytes(0, 0, label, CounterValue(5, 2));
              }).ok());
  ASSERT_TRUE(cluster.RegisterChain(ipc::BuildRmwChain(7, 0, 10)).ok());

  uint64_t size = 0;
  uint32_t steps = 0;
  ASSERT_TRUE(Drive(**rig, [&] {
                return cluster.ExecChain(0, 0, 7, label, &size, &steps);
              }).ok());
  EXPECT_EQ(steps, 3u);
  EXPECT_EQ(size, 64u);

  // The whole chain ran at the owner; the gateway executed none of it.
  ASSERT_NE(cluster.node(owner), nullptr);
  EXPECT_EQ(cluster.node(owner)->pushdown()->chains_executed(), 1u);
  EXPECT_EQ(cluster.node(0)->pushdown()->chains_executed(), 0u);

  const cluster::Topology topo = cluster.GetTopology();
  EXPECT_EQ(topo.chains_registered, 1u);
  EXPECT_EQ(topo.chain_execs, 1u);
  EXPECT_EQ(topo.chain_steps, 3u);

  // The mutation is acked at its post-chain size and the cluster
  // invariants (including strict placement) still hold.
  EXPECT_TRUE(cluster.CheckInvariants(/*strict=*/true).ok());
}

TEST(PushdownClusterTest, PointerChaseFollowsStoredContentAtTheOwner) {
  cluster::ClusterConfig config;
  config.initial_nodes = 4;
  auto rig = ClusterRig::Create(config);
  ASSERT_TRUE(rig.ok()) << rig.status().ToString();
  cluster::Cluster& cluster = (*rig)->cluster();

  // Two labels with the SAME remote owner: a chain executes entirely
  // at one node, so every hop's key must live there.
  const std::string head = RemoteLabel(cluster, 0, "t1/chase");
  ASSERT_FALSE(head.empty());
  const uint32_t owner = cluster.map()->OwnerOfLabel(head);
  std::string tail;
  for (int i = 0; i < 256 && tail.empty(); ++i) {
    const std::string label = "t1/tail" + std::to_string(i);
    if (cluster.map()->OwnerOfLabel(label) == owner) tail = label;
  }
  ASSERT_FALSE(tail.empty());

  // head's stored bytes name tail's full device key; tail holds a
  // 32-byte payload, so size_out proves the chase reached it.
  ASSERT_TRUE(Drive(**rig, [&] {
                return cluster.PutBytes(
                    0, 0, head,
                    LinkValue(cluster::ClusterNode::KeyFor(tail), 21));
              }).ok());
  ASSERT_TRUE(Drive(**rig, [&] {
                return cluster.PutBytes(0, 0, tail, PatternBytes(22, 32));
              }).ok());
  ASSERT_TRUE(cluster.RegisterChain(
                  ipc::BuildPointerChaseChain(8, /*depth=*/2,
                                              /*key_bytes=*/32))
                  .ok());

  uint64_t size = 0;
  uint32_t steps = 0;
  ASSERT_TRUE(Drive(**rig, [&] {
                return cluster.ExecChain(0, 0, 8, head, &size, &steps);
              }).ok());
  EXPECT_EQ(steps, 3u);  // get, deref_key, get
  EXPECT_EQ(size, 32u);  // the tail payload came back
  EXPECT_EQ(cluster.node(owner)->pushdown()->crossings_saved(), 2u);
  EXPECT_TRUE(cluster.CheckInvariants(/*strict=*/true).ok());
}

TEST(PushdownClusterTest, JoinersAndRejoinersPickUpRegisteredChains) {
  cluster::ClusterConfig config;
  config.initial_nodes = 3;
  auto rig = ClusterRig::Create(config);
  ASSERT_TRUE(rig.ok()) << rig.status().ToString();
  cluster::Cluster& cluster = (*rig)->cluster();

  ASSERT_TRUE(cluster.RegisterChain(ipc::BuildRmwChain(9, 0, 1)).ok());
  for (const uint32_t id : cluster.LiveNodeIds()) {
    EXPECT_EQ(cluster.node(id)->pushdown()->ListChains().size(), 1u)
        << "node " << id;
  }

  // A joiner gets the registry before it can own anything.
  uint32_t joiner = 0;
  ASSERT_TRUE(Drive(**rig, [&] { return cluster.AddNode(&joiner); }).ok());
  ASSERT_NE(cluster.node(joiner), nullptr);
  EXPECT_EQ(cluster.node(joiner)->pushdown()->ListChains().size(), 1u);

  // A rejoiner's restarted runtime lost its in-memory registry; the
  // rejoin path re-broadcasts it.
  ASSERT_TRUE(cluster.CrashNode(1).ok());
  ASSERT_TRUE(Drive(**rig, [&] { return cluster.RejoinNode(1); }).ok());
  EXPECT_EQ(cluster.node(1)->pushdown()->ListChains().size(), 1u);
  EXPECT_TRUE(cluster.CheckInvariants().ok());
}

}  // namespace
}  // namespace labstor::dst

int main(int argc, char** argv) {
  labstor::dst::InitSeeds(&argc, argv);
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
