#include "common/histogram.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.h"

namespace labstor {
namespace {

TEST(HistogramTest, EmptyHistogram) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Mean(), 0.0);
  EXPECT_EQ(h.Min(), 0u);
  EXPECT_EQ(h.Max(), 0u);
  EXPECT_EQ(h.Percentile(50), 0u);
}

TEST(HistogramTest, SingleValue) {
  Histogram h;
  h.Record(1000);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.Min(), 1000u);
  EXPECT_EQ(h.Max(), 1000u);
  EXPECT_EQ(h.Mean(), 1000.0);
  // Percentiles of a single value are that value (clamped to extremes).
  EXPECT_EQ(h.Percentile(50), 1000u);
  EXPECT_EQ(h.Percentile(99.9), 1000u);
}

TEST(HistogramTest, SmallValuesExact) {
  Histogram h;
  for (uint64_t v = 0; v < 32; ++v) h.Record(v);
  EXPECT_EQ(h.count(), 32u);
  EXPECT_EQ(h.Min(), 0u);
  EXPECT_EQ(h.Max(), 31u);
  // Values < 32 land in exact buckets.
  EXPECT_EQ(h.Percentile(100), 31u);
}

TEST(HistogramTest, PercentileAccuracyWithinBucketError) {
  Histogram h;
  Rng rng(5);
  std::vector<uint64_t> values;
  for (int i = 0; i < 100000; ++i) {
    const uint64_t v = 100 + rng.Uniform(1000000);
    values.push_back(v);
    h.Record(v);
  }
  std::sort(values.begin(), values.end());
  for (const double p : {50.0, 90.0, 99.0}) {
    const auto exact =
        values[static_cast<size_t>(p / 100.0 * values.size()) - 1];
    const uint64_t approx = h.Percentile(p);
    EXPECT_NEAR(static_cast<double>(approx), static_cast<double>(exact),
                0.05 * static_cast<double>(exact))
        << "p" << p;
  }
}

TEST(HistogramTest, MeanMatchesArithmetic) {
  Histogram h;
  h.Record(10);
  h.Record(20);
  h.Record(30);
  EXPECT_DOUBLE_EQ(h.Mean(), 20.0);
}

TEST(HistogramTest, RecordNWeightsCount) {
  Histogram h;
  h.RecordN(5, 10);
  EXPECT_EQ(h.count(), 10u);
  EXPECT_DOUBLE_EQ(h.Mean(), 5.0);
  h.RecordN(100, 0);  // no-op
  EXPECT_EQ(h.count(), 10u);
}

TEST(HistogramTest, MergeCombines) {
  Histogram a, b;
  a.Record(100);
  b.Record(300);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.Min(), 100u);
  EXPECT_EQ(a.Max(), 300u);
  EXPECT_DOUBLE_EQ(a.Mean(), 200.0);
}

TEST(HistogramTest, ResetClears) {
  Histogram h;
  h.Record(42);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Max(), 0u);
}

TEST(HistogramTest, HugeValuesDoNotOverflow) {
  Histogram h;
  h.Record(~0ULL);
  h.Record(1);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.Max(), ~0ULL);
  EXPECT_EQ(h.Min(), 1u);
  EXPECT_GE(h.Percentile(99), 1u);
}

TEST(HistogramTest, SummaryMentionsFields) {
  Histogram h;
  h.Record(50);
  const std::string s = h.Summary();
  EXPECT_NE(s.find("n=1"), std::string::npos);
  EXPECT_NE(s.find("p99="), std::string::npos);
}

}  // namespace
}  // namespace labstor
