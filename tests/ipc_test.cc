#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "ipc/credentials.h"
#include "ipc/ipc_manager.h"
#include "ipc/queue_pair.h"
#include "ipc/request.h"
#include "ipc/shmem.h"

namespace labstor::ipc {
namespace {

const Credentials kAlice{100, 1000, 1000};
const Credentials kBob{200, 1001, 1001};
const Credentials kRootProc{300, 0, 0};

// ---------- ShMem ----------

TEST(ShMemTest, OwnerCanMap) {
  ShMemManager mgr;
  auto seg = mgr.CreateSegment(kAlice, 4096);
  ASSERT_TRUE(seg.ok());
  auto mapped = mgr.Map((*seg)->id(), kAlice);
  EXPECT_TRUE(mapped.ok());
}

TEST(ShMemTest, StrangerCannotMapEvenSameUser) {
  ShMemManager mgr;
  auto seg = mgr.CreateSegment(kAlice, 4096);
  ASSERT_TRUE(seg.ok());
  // Same uid, different pid: the paper's security model still denies.
  const Credentials alice2{101, 1000, 1000};
  auto mapped = mgr.Map((*seg)->id(), alice2);
  EXPECT_EQ(mapped.status().code(), StatusCode::kPermissionDenied);
}

TEST(ShMemTest, GrantAllowsMapping) {
  ShMemManager mgr;
  auto seg = mgr.CreateSegment(kAlice, 4096);
  ASSERT_TRUE(seg.ok());
  ASSERT_TRUE(mgr.Grant((*seg)->id(), kAlice, kBob.pid).ok());
  EXPECT_TRUE(mgr.Map((*seg)->id(), kBob).ok());
  ASSERT_TRUE(mgr.Revoke((*seg)->id(), kAlice, kBob.pid).ok());
  EXPECT_FALSE(mgr.Map((*seg)->id(), kBob).ok());
}

TEST(ShMemTest, OnlyOwnerOrRootMayGrant) {
  ShMemManager mgr;
  auto seg = mgr.CreateSegment(kAlice, 4096);
  ASSERT_TRUE(seg.ok());
  EXPECT_EQ(mgr.Grant((*seg)->id(), kBob, kBob.pid).code(),
            StatusCode::kPermissionDenied);
  EXPECT_TRUE(mgr.Grant((*seg)->id(), kRootProc, kBob.pid).ok());
}

TEST(ShMemTest, DestroyChecksOwnership) {
  ShMemManager mgr;
  auto seg = mgr.CreateSegment(kAlice, 4096);
  ASSERT_TRUE(seg.ok());
  EXPECT_EQ(mgr.Destroy((*seg)->id(), kBob).code(),
            StatusCode::kPermissionDenied);
  EXPECT_TRUE(mgr.Destroy((*seg)->id(), kAlice).ok());
  EXPECT_EQ(mgr.segment_count(), 0u);
  EXPECT_EQ(mgr.Map((*seg)->id(), kAlice).status().code(),
            StatusCode::kNotFound);
}

TEST(ShMemTest, SegmentAllocationBounded) {
  ShMemManager mgr;
  auto seg = mgr.CreateSegment(kAlice, 1024);
  ASSERT_TRUE(seg.ok());
  EXPECT_NE((*seg)->Allocate(512), nullptr);
  EXPECT_NE((*seg)->Allocate(400), nullptr);
  EXPECT_EQ((*seg)->Allocate(400), nullptr);  // over budget
}

TEST(ShMemTest, ZeroSizeRejected) {
  ShMemManager mgr;
  EXPECT_FALSE(mgr.CreateSegment(kAlice, 0).ok());
}

// ---------- Request ----------

TEST(RequestTest, PathRoundTrip) {
  Request req;
  req.SetPath("/fs/b/hi.txt");
  EXPECT_EQ(req.GetPath(), "/fs/b/hi.txt");
}

TEST(RequestTest, OverlongPathTruncatedSafely) {
  Request req;
  const std::string longpath(500, 'x');
  req.SetPath(longpath);
  EXPECT_EQ(req.GetPath().size(), Request::kPathCapacity - 1);
}

TEST(RequestTest, CompletionProtocol) {
  Request req;
  req.op = OpCode::kWrite;
  EXPECT_FALSE(req.IsDone());
  req.Complete(StatusCode::kOk, 4096);
  EXPECT_TRUE(req.IsDone());
  EXPECT_TRUE(req.ToStatus().ok());
  EXPECT_EQ(req.result_u64, 4096u);
}

TEST(RequestTest, FailedCompletionCarriesCode) {
  Request req;
  req.op = OpCode::kOpen;
  req.Complete(StatusCode::kNotFound);
  EXPECT_EQ(req.ToStatus().code(), StatusCode::kNotFound);
  EXPECT_NE(req.ToStatus().message().find("open"), std::string::npos);
}

TEST(RequestTest, OpCodeNamesDistinct) {
  EXPECT_NE(OpCodeName(OpCode::kPut), OpCodeName(OpCode::kGet));
  EXPECT_EQ(OpCodeName(OpCode::kBlkWrite), "blk_write");
}

// ---------- QueuePair ----------

TEST(QueuePairTest, SubmitPollComplete) {
  QueuePair qp(1, QueueKind::kPrimary, true, 16, kAlice);
  Request req;
  EXPECT_TRUE(qp.Submit(&req));
  auto polled = qp.PollSubmission();
  ASSERT_TRUE(polled.has_value());
  EXPECT_EQ(*polled, &req);
  EXPECT_FALSE(qp.PollSubmission().has_value());
  EXPECT_TRUE(qp.Complete(&req));
  auto completed = qp.PollCompletion();
  ASSERT_TRUE(completed.has_value());
  EXPECT_EQ(*completed, &req);
}

TEST(QueuePairTest, UpdatePendingBlocksSubmission) {
  QueuePair qp(1, QueueKind::kPrimary, true, 16, kAlice);
  qp.MarkUpdatePending();
  Request req;
  EXPECT_FALSE(qp.Submit(&req));
  EXPECT_TRUE(qp.update_pending());
  EXPECT_FALSE(qp.update_acked());
  qp.AckUpdate();
  EXPECT_TRUE(qp.update_acked());
  qp.ClearUpdate();
  EXPECT_TRUE(qp.Submit(&req));
}

TEST(QueuePairTest, AckWithoutPendingIsNoop) {
  QueuePair qp(1, QueueKind::kPrimary, true, 16, kAlice);
  qp.AckUpdate();
  EXPECT_FALSE(qp.update_pending());
  EXPECT_FALSE(qp.update_acked());
}

TEST(QueuePairTest, DepthBounded) {
  QueuePair qp(1, QueueKind::kPrimary, true, 4, kAlice);
  Request reqs[5];
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(qp.Submit(&reqs[i]));
  EXPECT_FALSE(qp.Submit(&reqs[4]));
  EXPECT_EQ(qp.PendingSubmissions(), 4u);
}

TEST(QueuePairTest, EwmaFoldDoesNotOverflowLargeSamples) {
  // Regression: the old fold computed (prev * 7 + sample) / 8, which
  // wraps uint64 once prev exceeds ~2.6e18 — a poisoned EWMA then
  // misclassifies the queue until enough small samples wash it out.
  QueuePair qp(1, QueueKind::kPrimary, true, 16, kAlice);
  const uint64_t huge = 3'000'000'000'000'000'000ull;  // 3e18 ns
  qp.UpdateEstProcessing(huge);
  qp.UpdateEstProcessing(huge);
  const uint64_t est = qp.est_processing_ns.load();
  // Two identical samples: the estimate must sit at the sample value,
  // not at a wrapped remnant.
  EXPECT_GE(est, huge / 2);
  EXPECT_LE(est, huge);
}

TEST(QueuePairTest, EwmaFoldStaysWithinSampleRange) {
  // Pure-function property of the fold: prev and sample both inside
  // [lo, hi] keeps the result inside [lo, hi] (no overflow excursions,
  // no collapse to zero).
  const uint64_t lo = 1000, hi = 2000;
  for (uint64_t prev = lo; prev <= hi; prev += 100) {
    for (uint64_t sample = lo; sample <= hi; sample += 100) {
      const uint64_t next = QueuePair::FoldEwma(prev, sample);
      EXPECT_GE(next, lo - lo / 8) << prev << " " << sample;
      EXPECT_LE(next, hi) << prev << " " << sample;
    }
  }
  EXPECT_EQ(QueuePair::FoldEwma(0, 555u), 555u);  // first sample seeds
  EXPECT_GE(QueuePair::FoldEwma(1, 1), 1u);       // never decays to 0
}

TEST(QueuePairTest, EwmaMultiDrainerStressConverges) {
  // Regression for the unbounded CAS fold: many drainers folding
  // completion samples into one queue's estimate must all make
  // progress (bounded retries + relaxed fallback) and leave the
  // estimate inside the sample envelope.
  QueuePair qp(1, QueueKind::kPrimary, true, 16, kAlice);
  qp.UpdateEstProcessing(1500);
  constexpr int kThreads = 8;
  constexpr int kSamplesPerThread = 20000;
  std::vector<std::thread> drainers;
  drainers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    drainers.emplace_back([&qp, t] {
      for (int i = 0; i < kSamplesPerThread; ++i) {
        qp.UpdateEstProcessing(1000 + static_cast<uint64_t>((t * 131 + i) % 1001));
      }
    });
  }
  for (std::thread& th : drainers) th.join();
  const uint64_t est = qp.est_processing_ns.load();
  EXPECT_GE(est, 875u);   // 1000 - 1000/8
  EXPECT_LE(est, 2000u);
}

// ---------- IpcManager ----------

TEST(IpcManagerTest, ConnectCreatesChannel) {
  IpcManager ipc;
  auto channel = ipc.Connect(kAlice);
  ASSERT_TRUE(channel.ok());
  EXPECT_NE(channel->segment, nullptr);
  EXPECT_NE(channel->qp, nullptr);
  EXPECT_EQ(ipc.PrimaryQueues().size(), 1u);
  // The client can map its segment (grant was applied).
  EXPECT_TRUE(ipc.shmem().Map(channel->segment->id(), kAlice).ok());
  // Another process cannot.
  EXPECT_FALSE(ipc.shmem().Map(channel->segment->id(), kBob).ok());
}

TEST(IpcManagerTest, ReconnectReturnsSameChannel) {
  IpcManager ipc;
  auto a = ipc.Connect(kAlice);
  auto b = ipc.Connect(kAlice);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->qp, b->qp);
  EXPECT_EQ(ipc.PrimaryQueues().size(), 1u);
}

TEST(IpcManagerTest, DisconnectRemovesPrimaryQueue) {
  IpcManager ipc;
  auto channel = ipc.Connect(kAlice);
  ASSERT_TRUE(channel.ok());
  ASSERT_TRUE(ipc.Disconnect(kAlice).ok());
  EXPECT_TRUE(ipc.PrimaryQueues().empty());
  EXPECT_FALSE(ipc.Disconnect(kAlice).ok());
  // Reconnect establishes a fresh queue (fork/execve path).
  auto again = ipc.Connect(kAlice);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(ipc.PrimaryQueues().size(), 1u);
}

TEST(IpcManagerTest, NewRequestAllocatesInSegment) {
  IpcManager ipc;
  auto channel = ipc.Connect(kAlice);
  ASSERT_TRUE(channel.ok());
  Request* req = channel->NewRequest(4096);
  ASSERT_NE(req, nullptr);
  ASSERT_NE(req->data, nullptr);
  EXPECT_EQ(req->client_pid, kAlice.pid);
  req->length = 4096;
  req->Payload()[0] = 0x42;
  EXPECT_EQ(req->Payload()[0], 0x42);
}

TEST(IpcManagerTest, IntermediateQueuesTracked) {
  IpcManager ipc;
  QueuePair* qp = ipc.CreateIntermediateQueue(false);
  ASSERT_NE(qp, nullptr);
  EXPECT_EQ(qp->kind(), QueueKind::kIntermediate);
  EXPECT_FALSE(qp->ordered());
  EXPECT_EQ(ipc.IntermediateQueues().size(), 1u);
  EXPECT_EQ(ipc.FindQueue(qp->id()), qp);
  EXPECT_EQ(ipc.FindQueue(9999), nullptr);
}

TEST(IpcManagerTest, ConnectFailsWhenOffline) {
  IpcManager ipc;
  ipc.MarkOffline();
  EXPECT_EQ(ipc.Connect(kAlice).status().code(), StatusCode::kUnavailable);
  ipc.MarkOnline();
  EXPECT_TRUE(ipc.Connect(kAlice).ok());
}

TEST(IpcManagerTest, EpochAdvancesOnRestart) {
  IpcManager ipc;
  const uint64_t e0 = ipc.epoch();
  ipc.MarkOffline();
  ipc.MarkOnline();
  EXPECT_EQ(ipc.epoch(), e0 + 1);
}

TEST(IpcManagerTest, WaitReturnsWhenWorkerCompletes) {
  IpcManager ipc;
  auto channel = ipc.Connect(kAlice);
  ASSERT_TRUE(channel.ok());
  Request* req = channel->NewRequest();
  req->op = OpCode::kDummy;
  ASSERT_TRUE(channel->qp->Submit(req));

  std::thread worker([&] {
    // Simulated worker: poll and complete.
    while (true) {
      auto polled = channel->qp->PollSubmission();
      if (polled.has_value()) {
        (*polled)->Complete(StatusCode::kOk, 7);
        return;
      }
      std::this_thread::yield();
    }
  });
  const Status st = ipc.Wait(req);
  worker.join();
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(req->result_u64, 7u);
}

TEST(IpcManagerTest, WaitDetectsOfflineRuntime) {
  IpcManager ipc;
  auto channel = ipc.Connect(kAlice);
  ASSERT_TRUE(channel.ok());
  Request* req = channel->NewRequest();
  ipc.MarkOffline();
  const Status st = ipc.Wait(req, std::chrono::milliseconds(50));
  EXPECT_EQ(st.code(), StatusCode::kUnavailable);
}

TEST(IpcManagerTest, WaitSurvivesRestartDuringGrace) {
  IpcManager ipc;
  auto channel = ipc.Connect(kAlice);
  ASSERT_TRUE(channel.ok());
  Request* req = channel->NewRequest();
  ipc.MarkOffline();
  const uint64_t waits_before = ipc.wait_entries();
  std::thread admin([&] {
    // Deterministic handshake instead of a wall-clock sleep: restart
    // only once the client is observably inside Wait, so the test
    // exercises the mid-wait recovery path on every run regardless of
    // scheduler timing.
    while (ipc.wait_entries() == waits_before) std::this_thread::yield();
    ipc.MarkOnline();
    req->Complete(StatusCode::kOk);
  });
  const Status st = ipc.Wait(req, std::chrono::milliseconds(2000));
  admin.join();
  EXPECT_TRUE(st.ok());
}

}  // namespace
}  // namespace labstor::ipc
