// Virtual-core scaling suite (DESIGN.md §11): the DES-driven
// properties behind bench_scaling's sweep —
//   * fused vs unfused stacks replay the same seed byte-identically
//     (timing, ordering, and read-back state);
//   * a lifecycle-style upgrade mid-traffic leaves fused chains
//     coherent at high worker counts;
//   * mean request cost stays flat as the simulated pool grows 4 ->
//     128 workers (no contention cliff);
//   * a Rebalance pass over 1024 queues x 256 workers is cheap enough
//     to run every epoch (the galloping-search + heap-pack fix).
//
// Own main (like dst_test): dst::InitSeeds strips --dst_seed /
// --dst_random_seeds before gtest parses argv, so CI can replay any
// failing sweep seed.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "core/orchestrator.h"
#include "core/sim_runtime.h"
#include "dst/schedule.h"
#include "simdev/registry.h"

namespace labstor::dst {
namespace {

using sim::Time;

std::string FsStackYaml(const char* mode) {
  std::string yaml = "mount: fs::/sc\nrules:\n  exec_mode: ";
  yaml += mode;
  yaml +=
      "\ndag:\n"
      "  - mod: labfs\n"
      "    uuid: labfs_sc\n"
      "    params:\n"
      "      log_records_per_worker: 4096\n"
      "    outputs: [lru_sc]\n"
      "  - mod: lru_cache\n"
      "    uuid: lru_sc\n"
      "    outputs: [sched_sc]\n"
      "  - mod: noop_sched\n"
      "    uuid: sched_sc\n"
      "    outputs: [drv_sc]\n"
      "  - mod: kernel_driver\n"
      "    uuid: drv_sc\n";
  return yaml;
}

sim::Task<void> NotedRequest(sim::Environment& env, core::SimRuntime& rt,
                             uint32_t qid, core::Stack& stack,
                             ipc::Request& req, Schedule& sched,
                             std::string tag) {
  const Status st = co_await rt.Execute(qid, stack, req);
  sched.Note(tag + " code=" + std::to_string(static_cast<int>(st.code())) +
             " r=" + std::to_string(req.result_u64) +
             " t=" + std::to_string(env.now()));
}

// One seeded sync-stack scenario: creates, writes, and reads through
// the 4-layer FS chain with per-site jitter. Returns the full event
// trace plus the read-back bytes, so callers can compare runs for
// byte-identity.
std::string RunSyncScenario(uint64_t seed, bool fuse) {
  Schedule sched(seed);
  sim::Environment env;
  simdev::DeviceRegistry devices(&env);
  EXPECT_TRUE(devices.Create(simdev::DeviceParams::NvmeP3700(128 << 20)).ok());
  core::SimRuntime rt(env, devices, 4);
  rt.ns().set_enable_fusion(fuse);
  rt.SetScheduleHook(sched.MakeSimHook(20 * sim::kUs));
  auto stack = rt.MountYaml(FsStackYaml("sync"));
  EXPECT_TRUE(stack.ok()) << stack.status().ToString();
  EXPECT_EQ((*stack)->is_fused(), fuse);
  for (uint32_t q = 1; q <= 4; ++q) rt.RegisterQueue(q, 3 * sim::kUs);

  constexpr size_t kFiles = 4;
  auto writes = std::make_unique<std::array<ipc::Request, kFiles>>();
  auto creates = std::make_unique<std::array<ipc::Request, kFiles>>();
  std::vector<std::vector<uint8_t>> payloads(kFiles);
  for (size_t i = 0; i < kFiles; ++i) {
    payloads[i].assign(4096, static_cast<uint8_t>(0x11 * (i + 1)));
    ipc::Request& c = (*creates)[i];
    c.op = ipc::OpCode::kCreate;
    c.SetPath("fs::/sc/f" + std::to_string(i));
    env.Spawn(NotedRequest(env, rt, static_cast<uint32_t>(1 + i % 4), **stack,
                           c, sched, "create" + std::to_string(i)));
  }
  env.Run();
  for (size_t i = 0; i < kFiles; ++i) {
    ipc::Request& w = (*writes)[i];
    w.op = ipc::OpCode::kWrite;
    w.SetPath("fs::/sc/f" + std::to_string(i));
    w.data = payloads[i].data();
    w.length = payloads[i].size();
    env.Spawn(NotedRequest(env, rt, static_cast<uint32_t>(1 + i % 4), **stack,
                           w, sched, "write" + std::to_string(i)));
  }
  env.Run();
  // Read-back state: the functional effects must be identical too.
  auto reads = std::make_unique<std::array<ipc::Request, kFiles>>();
  std::vector<std::vector<uint8_t>> out(kFiles);
  for (size_t i = 0; i < kFiles; ++i) {
    out[i].assign(4096, 0);
    ipc::Request& r = (*reads)[i];
    r.op = ipc::OpCode::kRead;
    r.SetPath("fs::/sc/f" + std::to_string(i));
    r.data = out[i].data();
    r.length = out[i].size();
    env.Spawn(NotedRequest(env, rt, static_cast<uint32_t>(1 + i % 4), **stack,
                           r, sched, "read" + std::to_string(i)));
  }
  const Time end = env.Run();
  sched.Note("end t=" + std::to_string(end) +
             " done=" + std::to_string(rt.requests_done()));
  std::string result = sched.trace();
  for (size_t i = 0; i < kFiles; ++i) {
    EXPECT_EQ(out[i], payloads[i]) << "file " << i << " read-back";
    result += "file" + std::to_string(i) + "=";
    for (size_t b = 0; b < 8; ++b) result += std::to_string(out[i][b]) + ",";
    result += ";";
  }
  return result;
}

TEST(ScalingFusionTest, FusedAndUnfusedReplayByteIdentically) {
  // The fusion property the DST enforces: fusing is a pure execution-
  // strategy change. Same seed, fused vs unfused, must produce the
  // identical virtual-time trace and identical read-back state.
  for (const uint64_t seed : SeedList()) {
    SCOPED_TRACE("seed 0x" + std::to_string(seed));
    const std::string fused = RunSyncScenario(seed, true);
    const std::string unfused = RunSyncScenario(seed, false);
    EXPECT_EQ(fused, unfused);
    EXPECT_FALSE(fused.empty());
  }
}

// Issues `per_queue` 4KB async writes per queue at worker count W and
// returns the mean virtual ns per request.
double MeanLatencyAt(size_t workers, size_t per_queue) {
  sim::Environment env;
  simdev::DeviceRegistry devices(&env);
  simdev::DeviceParams params = simdev::DeviceParams::NvmeP3700(512 << 20);
  // Per-core hardware queues: the stock preset's 31 channels serialize
  // the device beyond 31 cores, which would measure the device, not
  // the runtime.
  params.num_hw_queues =
      static_cast<uint32_t>(std::max<size_t>(workers, 31));
  params.device_parallelism = params.num_hw_queues;
  EXPECT_TRUE(devices.Create(params).ok());
  core::SimRuntime rt(env, devices, workers);
  auto stack = rt.MountYaml(FsStackYaml("async"));
  EXPECT_TRUE(stack.ok()) << stack.status().ToString();
  for (size_t q = 0; q < workers; ++q) {
    rt.RegisterQueue(static_cast<uint32_t>(q + 1), 3 * sim::kUs);
  }
  core::RoundRobinOrchestrator rr;
  std::vector<core::QueueLoad> loads;
  for (size_t q = 0; q < workers; ++q) {
    loads.push_back(core::QueueLoad{static_cast<uint32_t>(q + 1), 0, 0});
  }
  rt.ApplyAssignment(rr.Rebalance(loads, workers));

  const size_t total = workers * per_queue;
  std::vector<std::unique_ptr<ipc::Request>> reqs;
  reqs.reserve(total);
  std::vector<uint8_t> data(4096, 0x5C);
  struct Done {
    Time sum = 0;
    size_t count = 0;
  };
  auto done = std::make_unique<Done>();
  struct Submit {
    static sim::Task<void> One(sim::Environment& env, core::SimRuntime& rt,
                               uint32_t qid, core::Stack& stack,
                               ipc::Request& req, Done* done) {
      const Time t0 = env.now();
      const Status st = co_await rt.Execute(qid, stack, req);
      EXPECT_TRUE(st.ok()) << st.ToString();
      done->sum += env.now() - t0;
      ++done->count;
    }
  };
  for (size_t q = 0; q < workers; ++q) {
    for (size_t i = 0; i < per_queue; ++i) {
      auto req = std::make_unique<ipc::Request>();
      req->op = ipc::OpCode::kCreate;
      req->SetPath("fs::/sc/w" + std::to_string(q) + "_" + std::to_string(i));
      env.Spawn(Submit::One(env, rt, static_cast<uint32_t>(q + 1), **stack,
                            *req, done.get()));
      reqs.push_back(std::move(req));
    }
  }
  env.Run();
  EXPECT_EQ(done->count, total);
  return static_cast<double>(done->sum) / static_cast<double>(done->count);
}

TEST(ScalingSweepTest, NoContentionCliffUpTo128Workers) {
  // Per-worker load is constant across the sweep, so a scalable
  // runtime holds mean latency roughly flat. The pre-fix per-hw-queue
  // serialization showed up here as a super-linear climb past 31
  // workers (every channel shared) — the cliff the acceptance
  // criterion names.
  const double at4 = MeanLatencyAt(4, 8);
  const double at64 = MeanLatencyAt(64, 8);
  const double at128 = MeanLatencyAt(128, 8);
  EXPECT_GT(at4, 0.0);
  EXPECT_LT(at64, at4 * 3.0) << "at4=" << at4 << " at64=" << at64;
  EXPECT_LT(at128, at4 * 3.0) << "at4=" << at4 << " at128=" << at128;
}

TEST(ScalingSweepTest, ShardedRebalanceDrivesTrafficAt128Workers) {
  sim::Environment env;
  simdev::DeviceRegistry devices(&env);
  simdev::DeviceParams params = simdev::DeviceParams::NvmeP3700(512 << 20);
  params.num_hw_queues = 128;
  params.device_parallelism = 128;
  ASSERT_TRUE(devices.Create(params).ok());
  core::SimRuntime rt(env, devices, 128);
  auto stack = rt.MountYaml(FsStackYaml("async"));
  ASSERT_TRUE(stack.ok()) << stack.status().ToString();
  constexpr size_t kQueues = 256;
  for (size_t q = 0; q < kQueues; ++q) {
    rt.RegisterQueue(static_cast<uint32_t>(q + 1), 3 * sim::kUs);
  }
  core::ShardedOrchestrator sharded(16);
  rt.StartRebalancer(&sharded, 1 * sim::kMs);

  constexpr size_t kPerQueue = 4;
  std::vector<std::unique_ptr<ipc::Request>> reqs;
  struct Submit {
    static sim::Task<void> One(core::SimRuntime& rt, uint32_t qid,
                               core::Stack& stack, ipc::Request& req) {
      const Status st = co_await rt.Execute(qid, stack, req);
      EXPECT_TRUE(st.ok()) << st.ToString();
    }
  };
  for (size_t q = 0; q < kQueues; ++q) {
    for (size_t i = 0; i < kPerQueue; ++i) {
      auto req = std::make_unique<ipc::Request>();
      req->op = ipc::OpCode::kCreate;
      req->SetPath("fs::/sc/s" + std::to_string(q) + "_" + std::to_string(i));
      env.Spawn(Submit::One(rt, static_cast<uint32_t>(q + 1), **stack, *req));
      reqs.push_back(std::move(req));
    }
  }
  env.Run();
  EXPECT_EQ(rt.requests_done(), kQueues * kPerQueue);
  EXPECT_GE(rt.ActiveWorkers(), 1u);
}

TEST(ScalingRebalanceTest, EpochPassIsCheapAt256Workers) {
  // 1024 queues x 256 workers, mixed light/heavy. The old linear
  // consolidation scan ran O(budget) LPT packs, each O(queues x
  // workers) — seconds per epoch at this scale. The galloping search
  // + heap pack must get a full pass well under the epoch budget.
  std::vector<core::QueueLoad> queues;
  for (uint32_t i = 1; i <= 1024; ++i) {
    const bool heavy = (i % 8) == 0;
    queues.push_back(core::QueueLoad{
        i, heavy ? 20 * sim::kMs : 3 * sim::kUs, heavy ? 50u : 1u});
  }
  core::DynamicOrchestrator dynamic;
  const auto t0 = std::chrono::steady_clock::now();
  constexpr int kPasses = 20;
  size_t covered = 0;
  for (int p = 0; p < kPasses; ++p) {
    const core::Assignment a = dynamic.Rebalance(queues, 256);
    covered = 0;
    for (const auto& bin : a.worker_queues) covered += bin.size();
    ASSERT_EQ(covered, queues.size());
    ASSERT_LE(a.num_workers(), 256u);
  }
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  const auto ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(elapsed).count();
  // Generous wall bound (sanitizer-friendly): 20 passes in under 5s
  // means < 250ms per epoch pass. The pre-fix scan blew through this
  // by an order of magnitude.
  EXPECT_LT(ms, 5000) << ms << "ms for " << kPasses << " passes";

  // The sharded wrapper must cover the same queues within budget.
  core::ShardedOrchestrator sharded(16);
  const core::Assignment sa = sharded.Rebalance(queues, 256);
  size_t sharded_covered = 0;
  for (const auto& bin : sa.worker_queues) sharded_covered += bin.size();
  EXPECT_EQ(sharded_covered, queues.size());
  EXPECT_LE(sa.num_workers(), 256u);
}

}  // namespace
}  // namespace labstor::dst

int main(int argc, char** argv) {
  labstor::dst::InitSeeds(&argc, argv);
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
