// Deterministic lifecycle scheduler (src/dst/lifecycle, DESIGN.md §9).
//
// Own main (like dst_test): dst::InitSeeds strips --dst_seed /
// --dst_random_seeds before gtest parses argv, so CI can replay a
// failing lifecycle run (`test_lifecycle --dst_seed=0x...`) or widen
// the sweep (`test_lifecycle --dst_random_seeds=25`).
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/client.h"
#include "core/module_manager.h"
#include "dst/lifecycle.h"
#include "dst/schedule.h"
#include "dst/workloads.h"
#include "faultinject/faultinject.h"
#include "ipc/request.h"

namespace labstor::dst {
namespace {

Result<core::LabMod*> FindProbe(LifecycleRig& rig, const std::string& uuid) {
  return rig.runtime().registry().Find(uuid);
}

core::UpgradeRequest ProbeUpgrade(uint32_t version, core::UpgradeKind kind) {
  core::UpgradeRequest request;
  request.mod_name = "dst_probe";
  request.new_version = version;
  request.kind = kind;
  return request;
}

// One dummy request through the probe stack; returns the units sum.
Result<uint64_t> ProbeSum(LifecycleRig& rig) {
  LABSTOR_ASSIGN_OR_RETURN(stack, rig.probe_stack());
  ipc::Request req;
  req.op = ipc::OpCode::kDummy;
  LABSTOR_RETURN_IF_ERROR(rig.client().Execute(req, *stack));
  LABSTOR_RETURN_IF_ERROR(req.ToStatus());
  return req.result_u64;
}

// ---------------------------------------------------------------------------
// The tentpole: seed-swept lifecycle runs under the four invariants.
// ---------------------------------------------------------------------------

TEST(LifecycleTest, SeedSweepHoldsInvariants) {
  for (const uint64_t seed : SeedList()) {
    SCOPED_TRACE("seed 0x" + std::to_string(seed));
    auto rig = LifecycleRig::Create();
    ASSERT_TRUE(rig.ok()) << rig.status().ToString();
    Schedule sched(seed);
    auto stats = RunLifecycle(**rig, sched, DefaultLifecycleInvariants());
    ASSERT_TRUE(stats.ok()) << stats.status().ToString() << "\n"
                            << sched.trace();
    // Acceptance coverage: every run interleaves both upgrade
    // protocols, a rebalance, and both restart flavors with live
    // LabFS and LabKVS traffic (floors force stragglers).
    EXPECT_GE(stats->upgrades_centralized, 1u);
    EXPECT_GE(stats->upgrades_decentralized, 1u);
    EXPECT_GE(stats->rebalances, 1u);
    EXPECT_GE(stats->client_restarts, 1u);
    EXPECT_GE(stats->runtime_restarts, 1u);
    EXPECT_GT(stats->fs_ops, 0u);
    EXPECT_GT(stats->kvs_ops, 0u);
    EXPECT_GT(stats->probe_ops, 0u);
    EXPECT_GT(stats->invariant_checks, 0u);
  }
}

TEST(LifecycleTest, ProbeStackFusesAndSurvivesUpgradeMidTraffic) {
  // The probe stack is a sync linear chain, so the rig runs FUSED —
  // every seed-swept lifecycle run above already exercises upgrades of
  // a fused stack. This test pins that down explicitly: the chain is
  // fused at mount, traffic flows, and after a centralized upgrade the
  // re-fused chain points at the v2 instances the registry installed.
  auto rig = LifecycleRig::Create();
  ASSERT_TRUE(rig.ok()) << rig.status().ToString();
  auto stack = (*rig)->probe_stack();
  ASSERT_TRUE(stack.ok()) << stack.status().ToString();
  ASSERT_TRUE((*stack)->is_fused())
      << "sync probe chain must fuse (else the sweep never covers fusion)";
  ASSERT_EQ((*stack)->fused.size(), (*stack)->vertices.size());

  auto sum_before = ProbeSum(**rig);
  ASSERT_TRUE(sum_before.ok());
  EXPECT_EQ(*sum_before, 10u);

  core::Runtime& rt = (*rig)->runtime();
  rt.SubmitUpgrade(ProbeUpgrade(2, core::UpgradeKind::kCentralized));
  ASSERT_TRUE(rt.StepAdmin().ok());

  // Re-fetch: a restart-tolerant handle, then verify chain coherence.
  stack = (*rig)->probe_stack();
  ASSERT_TRUE(stack.ok());
  ASSERT_TRUE((*stack)->is_fused());
  for (const core::Stack::FusedEntry& entry : (*stack)->fused) {
    const core::Stack::Vertex& vertex = (*stack)->vertices[entry.vertex];
    EXPECT_EQ(entry.mod, vertex.mod);
    auto live = rt.registry().Find(vertex.uuid);
    ASSERT_TRUE(live.ok());
    EXPECT_EQ(entry.mod, *live);
    EXPECT_EQ(entry.mod->version(), 2u);
  }
  auto sum_after = ProbeSum(**rig);
  ASSERT_TRUE(sum_after.ok());
  EXPECT_EQ(*sum_after, 10u) << "units lost across the fused upgrade";
}

TEST(LifecycleTest, ReplaysByteIdentically) {
  const uint64_t seed = SeedList().front();
  std::string traces[2];
  size_t steps[2] = {0, 0};
  size_t events[2] = {0, 0};
  for (int run = 0; run < 2; ++run) {
    auto rig = LifecycleRig::Create();
    ASSERT_TRUE(rig.ok()) << rig.status().ToString();
    Schedule sched(seed);
    auto stats = RunLifecycle(**rig, sched, DefaultLifecycleInvariants());
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    traces[run] = sched.trace();
    steps[run] = stats->steps;
    events[run] = sched.events();
  }
  // The trace ends with a "life done" line carrying every stat, so
  // byte-identical traces mean identical event sequences AND counters.
  EXPECT_EQ(steps[0], steps[1]);
  EXPECT_EQ(events[0], events[1]);
  EXPECT_EQ(traces[0], traces[1])
      << "lifecycle schedule diverged for a fixed seed";
  EXPECT_FALSE(traces[0].empty());
}

// ---------------------------------------------------------------------------
// Centralized quiesce: queues born mid-upgrade (the old mark/clear race).
// ---------------------------------------------------------------------------

TEST(LifecycleQuiesceTest, LateConnectorIsBornPausedAndReleased) {
  auto rig = LifecycleRig::Create();
  ASSERT_TRUE(rig.ok()) << rig.status().ToString();
  core::Runtime& rt = (*rig)->runtime();
  core::Client late(rt, ipc::Credentials{300, 1000, 1000});

  struct Observations {
    bool barrier_up = false;
    bool connect_ok = false;
    bool born_paused = false;
    bool submit_refused = false;
    uint64_t refused_count = 0;
  } obs;
  ipc::QueuePair* late_qp = nullptr;
  ipc::Request probe_req;

  rt.module_manager().SetPhaseHook([&](std::string_view phase) {
    if (phase != "centralized.quiesced") return;
    // A client connecting while every primary is quiesced: pre-fix,
    // its queue appeared after the mark sweep's snapshot, admitted
    // traffic through the barrier, and was never paused at all.
    obs.barrier_up = rt.ipc().quiescing();
    obs.connect_ok = late.Connect().ok();
    const std::vector<ipc::QueuePair*> queues = rt.ipc().PrimaryQueues();
    late_qp = queues.back();
    obs.born_paused = late_qp->update_pending();
    obs.submit_refused = !late_qp->Submit(&probe_req);
    obs.refused_count = late_qp->refused_while_paused();
  });

  rt.SubmitUpgrade(ProbeUpgrade(2, core::UpgradeKind::kCentralized));
  ASSERT_TRUE(rt.StepAdmin().ok());

  EXPECT_TRUE(obs.barrier_up);
  EXPECT_TRUE(obs.connect_ok);
  ASSERT_NE(late_qp, nullptr);
  EXPECT_TRUE(obs.born_paused) << "queue born mid-quiesce was not paused";
  EXPECT_TRUE(obs.submit_refused)
      << "submission admitted through the quiesce barrier";
  EXPECT_GE(obs.refused_count, 1u);

  // EndQuiesce must reopen the late queue too (pre-fix: permanently
  // paused if it only made the clear sweep's snapshot by luck).
  EXPECT_FALSE(late_qp->update_pending());
  EXPECT_EQ(late_qp->pauses(), 1u);
  EXPECT_EQ(late_qp->clears(), 1u);
  for (ipc::QueuePair* qp : rt.ipc().PrimaryQueues()) {
    EXPECT_FALSE(qp->update_pending());
    EXPECT_EQ(qp->pauses(), qp->clears());
  }
  // And the late client is fully serviceable afterwards.
  EXPECT_TRUE(late_qp->Submit(&probe_req));
  (void)late_qp->PollSubmission();
}

// ---------------------------------------------------------------------------
// Decentralized protocol: full barrier for the swap, then a roll that
// pauses at most one client queue at a time.
// ---------------------------------------------------------------------------

TEST(LifecycleProtocolTest, DecentralizedRollPausesOneQueueAtATime) {
  auto rig = LifecycleRig::Create();
  ASSERT_TRUE(rig.ok()) << rig.status().ToString();
  core::Runtime& rt = (*rig)->runtime();
  const size_t num_primaries = rt.ipc().PrimaryQueues().size();
  ASSERT_GE(num_primaries, 2u);  // both rig clients are connected

  size_t swap_paused = 0;
  size_t roll_events = 0;
  bool always_exactly_one = true;
  rt.module_manager().SetPhaseHook([&](std::string_view phase) {
    if (phase == "decentralized.swap.quiesced") {
      swap_paused = rt.ipc().PausedPrimaryCount();
    } else if (phase == "decentralized.roll.paused") {
      ++roll_events;
      always_exactly_one &= rt.ipc().PausedPrimaryCount() == 1;
    }
  });

  rt.SubmitUpgrade(ProbeUpgrade(2, core::UpgradeKind::kDecentralized));
  ASSERT_TRUE(rt.StepAdmin().ok());

  // The swap itself is a full barrier...
  EXPECT_EQ(swap_paused, num_primaries);
  // ...then exactly one rolling pause per connected client, never two
  // at once (the per-client availability Table I trades for).
  EXPECT_EQ(roll_events, num_primaries);
  EXPECT_TRUE(always_exactly_one);
  EXPECT_EQ(rt.ipc().PausedPrimaryCount(), 0u);
}

TEST(LifecycleProtocolTest, BothProtocolsConvergeToSameState) {
  // Same scripted history on two rigs, one per protocol: the final
  // namespace must be indistinguishable (Table I's claim that the
  // protocols differ in availability/latency, not in outcome).
  constexpr uint64_t kSeed = 0x4C414253;
  struct Final {
    uint32_t version_a = 0;
    uint32_t version_b = 0;
    uint64_t probe_sum = 0;
    uint64_t applied = 0;
    std::vector<std::string> mounts;
    std::vector<uint64_t> file_sizes;
  };
  Final finals[2];
  const core::UpgradeKind kinds[2] = {core::UpgradeKind::kCentralized,
                                      core::UpgradeKind::kDecentralized};
  for (int i = 0; i < 2; ++i) {
    auto rig = LifecycleRig::Create();
    ASSERT_TRUE(rig.ok()) << rig.status().ToString();
    core::Runtime& rt = (*rig)->runtime();
    Schedule sched(kSeed);
    FsModel model;
    FsWorkloadState state;
    for (int op = 0; op < 8; ++op) {
      auto stack = (*rig)->fs_stack();
      ASSERT_TRUE(stack.ok());
      ASSERT_TRUE(StepFsOp((*rig)->fs(), (*rig)->client(), **stack, sched,
                           nullptr, model, state)
                      .ok());
    }
    rt.SubmitUpgrade(ProbeUpgrade(2, kinds[i]));
    ASSERT_TRUE(rt.StepAdmin().ok());
    for (int op = 0; op < 8; ++op) {
      auto stack = (*rig)->fs_stack();
      ASSERT_TRUE(stack.ok());
      ASSERT_TRUE(StepFsOp((*rig)->fs(), (*rig)->client(), **stack, sched,
                           nullptr, model, state)
                      .ok());
    }

    Final& f = finals[i];
    auto a = FindProbe(**rig, "probe_a");
    auto b = FindProbe(**rig, "probe_b");
    ASSERT_TRUE(a.ok() && b.ok());
    f.version_a = (*a)->version();
    f.version_b = (*b)->version();
    auto sum = ProbeSum(**rig);
    ASSERT_TRUE(sum.ok()) << sum.status().ToString();
    f.probe_sum = *sum;
    f.applied = rt.module_manager().upgrades_applied();
    f.mounts = rt.ns().Mounts();
    std::sort(f.mounts.begin(), f.mounts.end());
    for (size_t p = 0; p < kWorkloadPoolSize; ++p) {
      auto size = (*rig)->fs().StatSize(WorkloadFsPath(p));
      f.file_sizes.push_back(size.ok() ? *size + 1 : 0);  // 0 = absent
    }
  }
  EXPECT_EQ(finals[0].version_a, 2u);
  EXPECT_EQ(finals[0].version_a, finals[1].version_a);
  EXPECT_EQ(finals[0].version_b, finals[1].version_b);
  EXPECT_EQ(finals[0].probe_sum, finals[1].probe_sum);
  EXPECT_EQ(finals[0].probe_sum, 10u);  // 7 + 3: configs survived
  EXPECT_EQ(finals[0].applied, finals[1].applied);
  EXPECT_EQ(finals[0].mounts, finals[1].mounts);
  EXPECT_EQ(finals[0].file_sizes, finals[1].file_sizes);
}

// ---------------------------------------------------------------------------
// All-or-nothing staging under injected faults.
// ---------------------------------------------------------------------------

TEST(LifecycleFaultTest, StageFaultLeavesAllInstancesOnOldVersion) {
  auto rig = LifecycleRig::Create();
  ASSERT_TRUE(rig.ok()) << rig.status().ToString();
  core::Runtime& rt = (*rig)->runtime();

  // Fail staging of the SECOND of the two probe instances (instances
  // stage in sorted order: probe_a, then probe_b). Pre-fix, probe_a
  // had already swapped to v2 when probe_b's StateUpdate failed —
  // a mixed-version registry.
  faultinject::FaultInjector fi;
  faultinject::FaultPolicy policy;
  policy.trigger = faultinject::FaultPolicy::Trigger::kEveryN;
  policy.every_n = 2;
  policy.max_fires = 1;
  policy.message = "injected staging failure";
  fi.Arm("core.upgrade.stage", policy);
  {
    faultinject::ScopedInstall install(fi);
    rt.SubmitUpgrade(ProbeUpgrade(2, core::UpgradeKind::kCentralized));
    const Status st = rt.StepAdmin();
    EXPECT_FALSE(st.ok());
  }
  EXPECT_EQ(fi.fires("core.upgrade.stage"), 1u);

  for (const char* uuid : {"probe_a", "probe_b"}) {
    auto mod = FindProbe(**rig, uuid);
    ASSERT_TRUE(mod.ok());
    EXPECT_EQ((*mod)->version(), 1u) << uuid << " swapped despite the failure";
    EXPECT_TRUE(ProbeMod::IsLive(*mod));
  }
  // The full invariant set holds on the failed-upgrade state.
  LifecycleStats stats;
  LifecycleExpectation expect;
  expect.probe_version = 1;
  expect.probe_units = {{"probe_a", 7}, {"probe_b", 3}};
  const LifecycleContext ctx{**rig, stats, expect, 0, "failed-upgrade"};
  for (const LifecycleInvariant* inv : DefaultLifecycleInvariants()) {
    EXPECT_TRUE(inv->Check(ctx).ok()) << inv->name();
  }
  auto sum = ProbeSum(**rig);
  ASSERT_TRUE(sum.ok());
  EXPECT_EQ(*sum, 10u);

  // A clean retry completes the upgrade.
  rt.SubmitUpgrade(ProbeUpgrade(2, core::UpgradeKind::kCentralized));
  ASSERT_TRUE(rt.StepAdmin().ok());
  for (const char* uuid : {"probe_a", "probe_b"}) {
    auto mod = FindProbe(**rig, uuid);
    ASSERT_TRUE(mod.ok());
    EXPECT_EQ((*mod)->version(), 2u);
  }
  auto sum2 = ProbeSum(**rig);
  ASSERT_TRUE(sum2.ok());
  EXPECT_EQ(*sum2, 10u);
}

// ---------------------------------------------------------------------------
// Same-version upgrades are no-op successes, counted separately.
// ---------------------------------------------------------------------------

TEST(LifecycleTest, SameVersionUpgradeCountsAsNoop) {
  auto rig = LifecycleRig::Create();
  ASSERT_TRUE(rig.ok()) << rig.status().ToString();
  core::Runtime& rt = (*rig)->runtime();
  core::ModuleManager& mm = rt.module_manager();

  rt.SubmitUpgrade(ProbeUpgrade(1, core::UpgradeKind::kCentralized));
  ASSERT_TRUE(rt.StepAdmin().ok());
  EXPECT_EQ(mm.upgrades_applied(), 0u);
  EXPECT_EQ(mm.noop_upgrades(), 1u);

  // The instances were not churned: same objects, probe still serves.
  auto sum = ProbeSum(**rig);
  ASSERT_TRUE(sum.ok());
  EXPECT_EQ(*sum, 10u);

  rt.SubmitUpgrade(ProbeUpgrade(2, core::UpgradeKind::kCentralized));
  ASSERT_TRUE(rt.StepAdmin().ok());
  EXPECT_EQ(mm.upgrades_applied(), 1u);
  EXPECT_EQ(mm.noop_upgrades(), 1u);

  // Decentralized no-ops count too (and still run their protocol with
  // balanced pause/clear transitions).
  rt.SubmitUpgrade(ProbeUpgrade(2, core::UpgradeKind::kDecentralized));
  ASSERT_TRUE(rt.StepAdmin().ok());
  EXPECT_EQ(mm.upgrades_applied(), 1u);
  EXPECT_EQ(mm.noop_upgrades(), 2u);
  for (ipc::QueuePair* qp : rt.ipc().PrimaryQueues()) {
    EXPECT_FALSE(qp->update_pending());
    EXPECT_EQ(qp->pauses(), qp->clears());
  }
}

}  // namespace
}  // namespace labstor::dst

int main(int argc, char** argv) {
  labstor::dst::InitSeeds(&argc, argv);
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
