#include "common/bitmap.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace labstor {
namespace {

TEST(BitmapTest, StartsAllZero) {
  Bitmap bm(130);
  EXPECT_EQ(bm.size(), 130u);
  EXPECT_EQ(bm.CountSet(), 0u);
  EXPECT_EQ(bm.CountZero(), 130u);
  for (size_t i = 0; i < 130; ++i) EXPECT_FALSE(bm.Test(i));
}

TEST(BitmapTest, SetClearTest) {
  Bitmap bm(100);
  bm.Set(0);
  bm.Set(63);
  bm.Set(64);
  bm.Set(99);
  EXPECT_TRUE(bm.Test(0));
  EXPECT_TRUE(bm.Test(63));
  EXPECT_TRUE(bm.Test(64));
  EXPECT_TRUE(bm.Test(99));
  EXPECT_EQ(bm.CountSet(), 4u);
  bm.Clear(63);
  EXPECT_FALSE(bm.Test(63));
  EXPECT_EQ(bm.CountSet(), 3u);
}

TEST(BitmapTest, FindFirstZeroSkipsSetPrefix) {
  Bitmap bm(256);
  bm.SetRange(0, 200);
  EXPECT_EQ(bm.FindFirstZero(), 200u);
  EXPECT_EQ(bm.FindFirstZero(100), 200u);
  EXPECT_EQ(bm.FindFirstZero(201), 201u);
}

TEST(BitmapTest, FindFirstZeroFullBitmap) {
  Bitmap bm(64);
  bm.SetRange(0, 64);
  EXPECT_EQ(bm.FindFirstZero(), Bitmap::npos);
}

TEST(BitmapTest, FindFirstZeroFromBeyondEnd) {
  Bitmap bm(10);
  EXPECT_EQ(bm.FindFirstZero(10), Bitmap::npos);
  EXPECT_EQ(bm.FindFirstZero(100), Bitmap::npos);
}

TEST(BitmapTest, FindZeroRun) {
  Bitmap bm(128);
  bm.SetRange(0, 10);
  bm.SetRange(12, 4);   // zeros at 10..11, then 16...
  EXPECT_EQ(bm.FindZeroRun(2), 10u);
  EXPECT_EQ(bm.FindZeroRun(3), 16u);
  EXPECT_EQ(bm.FindZeroRun(200), Bitmap::npos);
}

TEST(BitmapTest, FindZeroRunAcrossWordBoundary) {
  Bitmap bm(128);
  bm.SetRange(0, 60);
  bm.SetRange(70, 58);
  // Zeros are 60..69: a 10-run crossing the bit-63/64 boundary.
  EXPECT_EQ(bm.FindZeroRun(10), 60u);
  EXPECT_EQ(bm.FindZeroRun(11), Bitmap::npos);
}

TEST(BitmapTest, RandomizedAgainstReference) {
  Rng rng(99);
  Bitmap bm(500);
  std::vector<bool> ref(500, false);
  for (int step = 0; step < 5000; ++step) {
    const size_t i = rng.Uniform(500);
    if (rng.Bernoulli(0.5)) {
      bm.Set(i);
      ref[i] = true;
    } else {
      bm.Clear(i);
      ref[i] = false;
    }
  }
  size_t ref_set = 0;
  for (size_t i = 0; i < 500; ++i) {
    EXPECT_EQ(bm.Test(i), ref[i]) << i;
    ref_set += ref[i] ? 1 : 0;
  }
  EXPECT_EQ(bm.CountSet(), ref_set);
  // FindFirstZero agrees with the reference.
  size_t expected = Bitmap::npos;
  for (size_t i = 0; i < 500; ++i) {
    if (!ref[i]) {
      expected = i;
      break;
    }
  }
  EXPECT_EQ(bm.FindFirstZero(), expected);
}

}  // namespace
}  // namespace labstor
