// Cross-module integration: interface convergence over one device,
// directory subtree renames (with crash replay), rich stat, and a
// randomized YAML round-trip property.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/yaml.h"
#include "core/client.h"
#include "core/runtime.h"
#include "labmods/genericfs.h"
#include "labmods/generickvs.h"
#include "labmods/labfs.h"
#include "simdev/registry.h"

namespace labstor {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  IntegrationTest() : devices_(nullptr), runtime_(MakeOptions(), devices_) {
    EXPECT_TRUE(
        devices_.Create(simdev::DeviceParams::NvmeP3700(128 << 20)).ok());
  }

  static core::Runtime::Options MakeOptions() {
    core::Runtime::Options options;
    options.max_workers = 2;
    return options;
  }

  core::Stack* Mount(const std::string& yaml) {
    auto spec = core::StackSpec::Parse(yaml);
    EXPECT_TRUE(spec.ok()) << spec.status().ToString();
    auto stack = runtime_.MountStack(*spec, ipc::Credentials{1, 0, 0});
    EXPECT_TRUE(stack.ok()) << stack.status().ToString();
    return *stack;
  }

  simdev::DeviceRegistry devices_;
  core::Runtime runtime_;
};

TEST_F(IntegrationTest, FsAndKvsConvergeOverOneDevice) {
  // Interface convergence (paper §III-B): a POSIX view and a KVS view
  // coexist on one NVMe with no translation middleware; each manages
  // its own on-device region yet both really land on the same media.
  Mount(
      "mount: fs::/conv\n"
      "rules:\n"
      "  exec_mode: sync\n"
      "dag:\n"
      "  - mod: labfs\n"
      "    uuid: conv_fs\n"
      "    params:\n"
      "      log_records_per_worker: 512\n"
      "      region_size_mb: 64\n"
      "    outputs: [conv_drv]\n"
      "  - mod: kernel_driver\n"
      "    uuid: conv_drv\n");
  Mount(
      "mount: kvs::/conv\n"
      "rules:\n"
      "  exec_mode: sync\n"
      "dag:\n"
      "  - mod: labkvs\n"
      "    uuid: conv_kvs\n"
      "    params:\n"
      "      log_records_per_worker: 512\n"
      "      region_offset_mb: 64\n"
      "    outputs: [conv_drv]\n"
      "  - mod: kernel_driver\n"
      "    uuid: conv_drv\n");

  core::Client client(runtime_, ipc::Credentials{100, 1000, 1000});
  ASSERT_TRUE(client.Connect().ok());
  labmods::GenericFs fs(client);
  labmods::GenericKvs kvs(client);

  std::vector<uint8_t> file_data(8192, 0xF5);
  std::vector<uint8_t> kv_data(4096, 0x5F);
  auto fd = fs.Create("fs::/conv/doc");
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(fs.Write(*fd, file_data, 0).ok());
  ASSERT_TRUE(kvs.Put("kvs::/conv/session", kv_data).ok());

  // Both read back intact — the two stacks did not trample each other
  // despite sharing the driver instance and device.
  std::vector<uint8_t> file_out(8192), kv_out(4096);
  ASSERT_TRUE(fs.Read(*fd, file_out, 0).ok());
  auto got = kvs.Get("kvs::/conv/session", kv_out);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(file_out, file_data);
  EXPECT_EQ(kv_out, kv_data);
}

TEST_F(IntegrationTest, DirectoryRenameCarriesSubtree) {
  Mount(
      "mount: fs::/tree\n"
      "rules:\n"
      "  exec_mode: sync\n"
      "dag:\n"
      "  - mod: labfs\n"
      "    uuid: tree_fs\n"
      "    params:\n"
      "      log_records_per_worker: 1024\n"
      "    outputs: [tree_drv]\n"
      "  - mod: kernel_driver\n"
      "    uuid: tree_drv\n");
  core::Client client(runtime_, ipc::Credentials{100, 1000, 1000});
  ASSERT_TRUE(client.Connect().ok());
  labmods::GenericFs fs(client);

  ASSERT_TRUE(fs.Mkdir("fs::/tree/old").ok());
  ASSERT_TRUE(fs.Mkdir("fs::/tree/old/sub").ok());
  std::vector<uint8_t> data(1000, 0xD1);
  for (const char* name : {"fs::/tree/old/a", "fs::/tree/old/sub/b"}) {
    auto fd = fs.Create(name);
    ASSERT_TRUE(fd.ok());
    ASSERT_TRUE(fs.Write(*fd, data, 0).ok());
    ASSERT_TRUE(fs.Close(*fd).ok());
  }

  ASSERT_TRUE(fs.Rename("fs::/tree/old", "fs::/tree/new").ok());

  auto mod = runtime_.registry().Find("tree_fs");
  ASSERT_TRUE(mod.ok());
  auto* labfs = dynamic_cast<labmods::LabFsMod*>(*mod);
  EXPECT_FALSE(labfs->Exists("fs::/tree/old/a"));
  EXPECT_TRUE(labfs->Exists("fs::/tree/new/a"));
  EXPECT_TRUE(labfs->Exists("fs::/tree/new/sub/b"));

  // Content follows the new names.
  auto fd = fs.Open("fs::/tree/new/sub/b", 0);
  ASSERT_TRUE(fd.ok());
  std::vector<uint8_t> out(1000);
  ASSERT_TRUE(fs.Read(*fd, out, 0).ok());
  EXPECT_EQ(out, data);

  // And the log replay reproduces the whole subtree move.
  ASSERT_TRUE(labfs->StateRepair().ok());
  EXPECT_TRUE(labfs->Exists("fs::/tree/new/sub/b"));
  EXPECT_FALSE(labfs->Exists("fs::/tree/old/sub/b"));
}

TEST_F(IntegrationTest, StatReportsSizeAndKind) {
  Mount(
      "mount: fs::/st\n"
      "rules:\n"
      "  exec_mode: sync\n"
      "dag:\n"
      "  - mod: labfs\n"
      "    uuid: st_fs\n"
      "    params:\n"
      "      log_records_per_worker: 256\n"
      "    outputs: [st_drv]\n"
      "  - mod: kernel_driver\n"
      "    uuid: st_drv\n");
  core::Client client(runtime_, ipc::Credentials{100, 1000, 1000});
  ASSERT_TRUE(client.Connect().ok());
  labmods::GenericFs fs(client);
  ASSERT_TRUE(fs.Mkdir("fs::/st/dir").ok());
  auto fd = fs.Create("fs::/st/file");
  ASSERT_TRUE(fd.ok());
  std::vector<uint8_t> data(12345, 1);
  ASSERT_TRUE(fs.Write(*fd, data, 0).ok());

  auto file_stat = fs.Stat("fs::/st/file");
  ASSERT_TRUE(file_stat.ok());
  EXPECT_EQ(file_stat->size, 12345u);
  EXPECT_FALSE(file_stat->is_dir);
  auto dir_stat = fs.Stat("fs::/st/dir");
  ASSERT_TRUE(dir_stat.ok());
  EXPECT_TRUE(dir_stat->is_dir);
  EXPECT_FALSE(fs.Stat("fs::/st/ghost").ok());
}

// ---------------------------------------------------------------
// YAML property: randomized trees survive Dump -> Parse.
// ---------------------------------------------------------------

yaml::NodePtr RandomTree(Rng& rng, int depth) {
  const double roll = rng.NextDouble();
  if (depth >= 3 || roll < 0.4) {
    // Scalar: alnum strings keep clear of quoting corner cases that
    // Dump intentionally does not re-escape.
    std::string s;
    const uint64_t len = rng.Range(1, 10);
    for (uint64_t i = 0; i < len; ++i) {
      s += static_cast<char>('a' + rng.Uniform(26));
    }
    return yaml::Node::MakeScalar(s);
  }
  if (roll < 0.7) {
    auto map = yaml::Node::MakeMapping();
    const uint64_t entries = rng.Range(1, 4);
    for (uint64_t i = 0; i < entries; ++i) {
      map->Put("k" + std::to_string(i), RandomTree(rng, depth + 1));
    }
    return map;
  }
  auto seq = yaml::Node::MakeSequence();
  const uint64_t items = rng.Range(1, 4);
  for (uint64_t i = 0; i < items; ++i) {
    seq->Append(RandomTree(rng, depth + 1));
  }
  return seq;
}

void ExpectEqualTrees(const yaml::NodePtr& a, const yaml::NodePtr& b) {
  ASSERT_EQ(a->type(), b->type());
  switch (a->type()) {
    case yaml::NodeType::kScalar:
      EXPECT_EQ(a->scalar(), b->scalar());
      break;
    case yaml::NodeType::kSequence: {
      ASSERT_EQ(a->items().size(), b->items().size());
      for (size_t i = 0; i < a->items().size(); ++i) {
        ExpectEqualTrees(a->items()[i], b->items()[i]);
      }
      break;
    }
    case yaml::NodeType::kMapping: {
      ASSERT_EQ(a->entries().size(), b->entries().size());
      for (size_t i = 0; i < a->entries().size(); ++i) {
        EXPECT_EQ(a->entries()[i].first, b->entries()[i].first);
        ExpectEqualTrees(a->entries()[i].second, b->entries()[i].second);
      }
      break;
    }
    case yaml::NodeType::kNull:
      break;
  }
}

TEST(YamlPropertyTest, RandomTreesRoundTripThroughDump) {
  Rng rng(777);
  for (int trial = 0; trial < 200; ++trial) {
    // Roots must be mappings or sequences (documents).
    auto root = yaml::Node::MakeMapping();
    const uint64_t entries = rng.Range(1, 5);
    for (uint64_t i = 0; i < entries; ++i) {
      root->Put("key" + std::to_string(i), RandomTree(rng, 0));
    }
    auto reparsed = yaml::Parse(root->Dump());
    ASSERT_TRUE(reparsed.ok())
        << "trial " << trial << ": " << reparsed.status().ToString()
        << "\n--- document ---\n"
        << root->Dump();
    ExpectEqualTrees(root, *reparsed);
  }
}

}  // namespace
}  // namespace labstor
