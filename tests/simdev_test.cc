#include <gtest/gtest.h>

#include <cstring>
#include <numeric>

#include "common/rng.h"
#include "simdev/registry.h"
#include "simdev/sim_device.h"
#include "simdev/sparse_store.h"
#include "simdev/timing_model.h"

namespace labstor::simdev {
namespace {

using sim::Time;

// ---------- SparseStore ----------

TEST(SparseStoreTest, UnwrittenReadsAsZero) {
  SparseStore store(1 << 20);
  std::vector<uint8_t> buf(100, 0xFF);
  ASSERT_TRUE(store.Read(5000, buf).ok());
  for (const uint8_t b : buf) EXPECT_EQ(b, 0);
  EXPECT_EQ(store.resident_pages(), 0u);
}

TEST(SparseStoreTest, WriteReadRoundTrip) {
  SparseStore store(1 << 20);
  std::vector<uint8_t> data(5000);
  std::iota(data.begin(), data.end(), 0);
  ASSERT_TRUE(store.Write(1234, data).ok());
  std::vector<uint8_t> out(5000);
  ASSERT_TRUE(store.Read(1234, out).ok());
  EXPECT_EQ(data, out);
}

TEST(SparseStoreTest, CrossPageBoundary) {
  SparseStore store(1 << 20);
  std::vector<uint8_t> data(8192, 0xAB);
  ASSERT_TRUE(store.Write(4000, data).ok());  // spans 3 pages
  EXPECT_EQ(store.resident_pages(), 3u);
  std::vector<uint8_t> out(1);
  ASSERT_TRUE(store.Read(4000 + 8191, out).ok());
  EXPECT_EQ(out[0], 0xABu);
  ASSERT_TRUE(store.Read(4000 + 8192, out).ok());
  EXPECT_EQ(out[0], 0u);  // just past the write
}

TEST(SparseStoreTest, CapacityEnforced) {
  SparseStore store(4096);
  std::vector<uint8_t> data(100);
  EXPECT_TRUE(store.Write(3996, data).ok());
  EXPECT_FALSE(store.Write(3997, data).ok());
  std::vector<uint8_t> out(100);
  EXPECT_FALSE(store.Read(4000, out).ok());
}

TEST(SparseStoreTest, OverwritePartialPage) {
  SparseStore store(1 << 20);
  std::vector<uint8_t> first(4096, 0x11);
  ASSERT_TRUE(store.Write(0, first).ok());
  std::vector<uint8_t> second(100, 0x22);
  ASSERT_TRUE(store.Write(50, second).ok());
  std::vector<uint8_t> out(4096);
  ASSERT_TRUE(store.Read(0, out).ok());
  EXPECT_EQ(out[49], 0x11u);
  EXPECT_EQ(out[50], 0x22u);
  EXPECT_EQ(out[149], 0x22u);
  EXPECT_EQ(out[150], 0x11u);
}

// ---------- TimingModel ----------

TEST(TimingModelTest, NvmeLatencyPlusTransfer) {
  const DeviceParams p = DeviceParams::NvmeP3700();
  TimingModel model(p);
  const Time t4k = model.ServiceTime(IoOp::kWrite, 0, 4096, 0);
  EXPECT_EQ(t4k, p.write_latency +
                     static_cast<Time>(p.write_ns_per_byte * 4096));
  // 128KB costs more than 4KB by the transfer-time difference.
  const Time t128k = model.ServiceTime(IoOp::kWrite, 0, 128 * 1024, 0);
  EXPECT_GT(t128k, t4k);
  EXPECT_EQ(t128k - t4k,
            static_cast<Time>(p.write_ns_per_byte * (128 * 1024 - 4096)));
}

TEST(TimingModelTest, ReadsFasterThanWritesOnNvme) {
  TimingModel model(DeviceParams::NvmeP3700());
  EXPECT_LT(model.ServiceTime(IoOp::kRead, 0, 4096, 0),
            model.ServiceTime(IoOp::kWrite, 0, 4096, 0));
}

TEST(TimingModelTest, HddChargesSeekOnRandomAccess) {
  const DeviceParams p = DeviceParams::SasHdd();
  TimingModel model(p);
  // First op from head position 0 at offset 1MB: seek.
  EXPECT_TRUE(model.WouldSeek(1 << 20, 0));
  const Time random = model.ServiceTime(IoOp::kWrite, 1 << 20, 4096, 0);
  // Now sequential: no seek.
  EXPECT_FALSE(model.WouldSeek((1 << 20) + 4096, 0));
  const Time sequential =
      model.ServiceTime(IoOp::kWrite, (1 << 20) + 4096, 4096, 0);
  EXPECT_EQ(random - sequential, p.avg_seek + p.rotational_delay);
  // Seek dominates: random 4KB is > 10x sequential 4KB.
  EXPECT_GT(random, 10 * sequential);
}

TEST(TimingModelTest, NonHddNeverSeeks) {
  TimingModel nvme(DeviceParams::NvmeP3700());
  EXPECT_FALSE(nvme.WouldSeek(123456789, 0));
  const Time a = nvme.ServiceTime(IoOp::kRead, 0, 4096, 0);
  const Time b = nvme.ServiceTime(IoOp::kRead, 999999488, 4096, 0);
  EXPECT_EQ(a, b);
}

TEST(TimingModelTest, DeviceSpeedOrdering) {
  // PMEM < NVMe < SATA SSD < HDD(random) for a 4KB random write.
  TimingModel pmem(DeviceParams::PmemEmulated());
  TimingModel nvme(DeviceParams::NvmeP3700());
  TimingModel ssd(DeviceParams::SataSsd());
  TimingModel hdd(DeviceParams::SasHdd());
  const Time t_pmem = pmem.ServiceTime(IoOp::kWrite, 8 << 20, 4096, 0);
  const Time t_nvme = nvme.ServiceTime(IoOp::kWrite, 8 << 20, 4096, 0);
  const Time t_ssd = ssd.ServiceTime(IoOp::kWrite, 8 << 20, 4096, 0);
  const Time t_hdd = hdd.ServiceTime(IoOp::kWrite, 8 << 20, 4096, 0);
  EXPECT_LT(t_pmem, t_nvme);
  EXPECT_LT(t_nvme, t_ssd);
  EXPECT_LT(t_ssd, t_hdd);
}

// ---------- SimDevice ----------

TEST(SimDeviceTest, RealModeRoundTrip) {
  SimDevice dev(nullptr, DeviceParams::NvmeP3700());
  std::vector<uint8_t> data(4096, 0x5A);
  ASSERT_TRUE(dev.WriteNow(8192, data).ok());
  std::vector<uint8_t> out(4096);
  ASSERT_TRUE(dev.ReadNow(8192, out).ok());
  EXPECT_EQ(data, out);
  EXPECT_EQ(dev.stats().writes.load(), 1u);
  EXPECT_EQ(dev.stats().reads.load(), 1u);
  EXPECT_EQ(dev.stats().bytes_written.load(), 4096u);
}

sim::Task<void> WriteOnce(sim::Environment& env, SimDevice& dev, uint32_t ch,
                          Time* done_at) {
  co_await dev.WriteTimed(ch, 0, 4096);
  *done_at = env.now();
}

TEST(SimDeviceTest, TimedWriteChargesServiceTime) {
  sim::Environment env;
  SimDevice dev(&env, DeviceParams::NvmeP3700());
  Time done_at = 0;
  env.Spawn(WriteOnce(env, dev, 0, &done_at));
  env.Run();
  const DeviceParams p = DeviceParams::NvmeP3700();
  EXPECT_EQ(done_at, p.write_latency +
                         static_cast<Time>(p.write_ns_per_byte * 4096));
  EXPECT_EQ(dev.stats().writes.load(), 1u);
}

TEST(SimDeviceTest, SameChannelQueuesBeyondParallelism) {
  sim::Environment env;
  DeviceParams p = DeviceParams::NvmeP3700();
  p.per_queue_parallelism = 1;
  SimDevice dev(&env, p);
  Time t1 = 0, t2 = 0;
  env.Spawn(WriteOnce(env, dev, 0, &t1));
  env.Spawn(WriteOnce(env, dev, 0, &t2));
  env.Run();
  // Second op waits for the first: completion times differ by one
  // service time.
  EXPECT_EQ(t2, 2 * t1);
}

TEST(SimDeviceTest, DifferentChannelsOverlapLatencyShareBandwidth) {
  sim::Environment env;
  DeviceParams p = DeviceParams::NvmeP3700();
  p.per_queue_parallelism = 1;
  SimDevice dev(&env, p);
  Time t1 = 0, t2 = 0;
  env.Spawn(WriteOnce(env, dev, 0, &t1));
  env.Spawn(WriteOnce(env, dev, 1, &t2));
  env.Run();
  // Latency phases overlap (device_parallelism = 4); only the
  // transfer serializes on the shared pipe.
  TimingModel model(p);
  const Time transfer = model.TransferPart(IoOp::kWrite, 4096);
  EXPECT_EQ(t2, t1 + transfer);
  EXPECT_LT(t2, 2 * t1);  // far better than full serialization
}

TEST(SimDeviceTest, DeviceParallelismCapsRandomIops) {
  sim::Environment env;
  DeviceParams p = DeviceParams::NvmeP3700();
  SimDevice dev(&env, p);
  // 64 concurrent 4KB writes spread over all channels.
  constexpr int kOps = 64;
  std::vector<Time> done(kOps, 0);
  for (int i = 0; i < kOps; ++i) {
    env.Spawn(WriteOnce(env, dev, static_cast<uint32_t>(i % 31), &done[i]));
  }
  const Time end = env.Run();
  const double iops = kOps / (static_cast<double>(end) / 1e9);
  // P3700-class: random write IOPS land in the 100k-400k band, not
  // millions (the old per-channel-only model allowed ~8M).
  EXPECT_GT(iops, 100'000.0);
  EXPECT_LT(iops, 500'000.0);
}

TEST(SimDeviceTest, SequentialBandwidthCappedByPipe) {
  sim::Environment env;
  DeviceParams p = DeviceParams::NvmeP3700();
  SimDevice dev(&env, p);
  constexpr int kOps = 32;
  constexpr uint64_t kLen = 128 * 1024;
  std::vector<Time> done(kOps, 0);
  for (int i = 0; i < kOps; ++i) {
    env.Spawn([](sim::Environment& e, SimDevice& d, uint32_t ch, uint64_t off,
                 Time* out) -> sim::Task<void> {
      co_await d.WriteTimed(ch, off, kLen);
      *out = e.now();
    }(env, dev, static_cast<uint32_t>(i % 31), static_cast<uint64_t>(i) * kLen,
                 &done[i]));
  }
  const Time end = env.Run();
  const double gbps = kOps * kLen / (static_cast<double>(end) / 1e9) / 1e9;
  // ~1.1 GB/s write pipe.
  EXPECT_GT(gbps, 0.8);
  EXPECT_LT(gbps, 1.3);
}

sim::Task<void> FunctionalTimedIo(SimDevice& dev, Status* write_st,
                                  Status* read_st,
                                  std::vector<uint8_t>* read_back) {
  std::vector<uint8_t> data(512, 0x7E);
  *write_st = co_await dev.Write(2, 1024, data);
  read_back->assign(512, 0);
  *read_st = co_await dev.Read(2, 1024, *read_back);
}

TEST(SimDeviceTest, TimedFunctionalIoMovesData) {
  sim::Environment env;
  SimDevice dev(&env, DeviceParams::NvmeP3700());
  Status write_st = Status::Internal("unset"), read_st = Status::Internal("unset");
  std::vector<uint8_t> read_back;
  env.Spawn(FunctionalTimedIo(dev, &write_st, &read_st, &read_back));
  env.Run();
  EXPECT_TRUE(write_st.ok());
  EXPECT_TRUE(read_st.ok());
  ASSERT_EQ(read_back.size(), 512u);
  EXPECT_EQ(read_back[0], 0x7Eu);
  EXPECT_EQ(read_back[511], 0x7Eu);
}

TEST(SimDeviceTest, ChannelQueueDepthVisible) {
  sim::Environment env;
  DeviceParams p = DeviceParams::NvmeP3700();
  p.per_queue_parallelism = 1;
  SimDevice dev(&env, p);
  Time t1 = 0, t2 = 0, t3 = 0;
  env.Spawn(WriteOnce(env, dev, 5, &t1));
  env.Spawn(WriteOnce(env, dev, 5, &t2));
  env.Spawn(WriteOnce(env, dev, 5, &t3));
  // Before running, depth is 0; after partial run, ops are in flight.
  env.RunUntil(1);  // starts all three; one in service, two queued
  EXPECT_EQ(dev.ChannelQueueDepth(5), 3u);
  env.Run();
  EXPECT_EQ(dev.ChannelQueueDepth(5), 0u);
}

// ---------- DeviceRegistry ----------

TEST(DeviceRegistryTest, CreateAndFind) {
  DeviceRegistry registry;
  auto dev = registry.Create(DeviceParams::NvmeP3700());
  ASSERT_TRUE(dev.ok());
  auto found = registry.Find("nvme0");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(*found, *dev);
  EXPECT_FALSE(registry.Find("nvme9").ok());
}

TEST(DeviceRegistryTest, DuplicateRejected) {
  DeviceRegistry registry;
  ASSERT_TRUE(registry.Create(DeviceParams::NvmeP3700()).ok());
  EXPECT_EQ(registry.Create(DeviceParams::NvmeP3700()).status().code(),
            StatusCode::kAlreadyExists);
}

TEST(DeviceRegistryTest, NamesListsAll) {
  DeviceRegistry registry;
  ASSERT_TRUE(registry.Create(DeviceParams::NvmeP3700()).ok());
  ASSERT_TRUE(registry.Create(DeviceParams::SasHdd()).ok());
  const auto names = registry.Names();
  EXPECT_EQ(names.size(), 2u);
}

}  // namespace
}  // namespace labstor::simdev
