// Telemetry subsystem: sharded metrics merge-on-scrape, Chrome trace
// JSON well-formedness (parsed back by a minimal JSON reader),
// concurrent-writer shard safety, and the runtime wiring in both real
// (wall-clock Runtime) and sim (virtual-time SimRuntime) modes.
#include "telemetry/telemetry.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <set>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "core/client.h"
#include "core/runtime.h"
#include "core/sim_runtime.h"
#include "labmods/genericfs.h"
#include "simdev/registry.h"

namespace labstor::telemetry {
namespace {

// ------------------------------------------------------------------
// Minimal JSON well-formedness checker (objects, arrays, strings,
// numbers, true/false/null). Returns true iff the whole input is one
// valid JSON value.
// ------------------------------------------------------------------

class JsonChecker {
 public:
  explicit JsonChecker(std::string_view text) : text_(text) {}

  bool Valid() {
    SkipWs();
    if (!Value()) return false;
    SkipWs();
    return pos_ == text_.size();
  }

 private:
  bool Value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return Object();
      case '[': return Array();
      case '"': return String();
      case 't': return Literal("true");
      case 'f': return Literal("false");
      case 'n': return Literal("null");
      default: return Number();
    }
  }

  bool Object() {
    ++pos_;  // '{'
    SkipWs();
    if (Peek() == '}') { ++pos_; return true; }
    while (true) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (Peek() != ':') return false;
      ++pos_;
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') { ++pos_; continue; }
      if (Peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool Array() {
    ++pos_;  // '['
    SkipWs();
    if (Peek() == ']') { ++pos_; return true; }
    while (true) {
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') { ++pos_; continue; }
      if (Peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool String() {
    if (Peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') {
        if (pos_ + 1 >= text_.size()) return false;
        ++pos_;
      }
      ++pos_;
    }
    if (pos_ >= text_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }

  bool Number() {
    const size_t start = pos_;
    if (Peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool Literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

std::set<std::string> Categories(const TraceRecorder& trace) {
  std::set<std::string> cats;
  for (const TraceEvent& e : trace.Snapshot()) cats.insert(e.category);
  return cats;
}

// ------------------------------------------------------------------
// MetricsRegistry
// ------------------------------------------------------------------

TEST(MetricsRegistry, CounterMergesAcrossShardsOnScrape) {
  MetricsRegistry registry(4);
  Counter* c = registry.GetCounter("runtime.worker.requests");
  c->Add(10, 0);
  c->Add(20, 1);
  c->Add(30, 2);
  c->Inc(3);
  EXPECT_EQ(c->Value(), 61u);
  const MetricsSnapshot snap = registry.Scrape();
  ASSERT_TRUE(snap.counters.contains("runtime.worker.requests"));
  EXPECT_EQ(snap.counters.at("runtime.worker.requests"), 61u);
}

TEST(MetricsRegistry, GetReturnsSameHandleAndSurvivesReset) {
  MetricsRegistry registry(2);
  Counter* a = registry.GetCounter("x.y.z");
  Counter* b = registry.GetCounter("x.y.z");
  EXPECT_EQ(a, b);
  a->Add(5);
  registry.Reset();
  EXPECT_EQ(a->Value(), 0u);
  a->Add(7);
  EXPECT_EQ(registry.Scrape().counters.at("x.y.z"), 7u);
}

TEST(MetricsRegistry, HistogramMergesAcrossShardsOnScrape) {
  MetricsRegistry registry(4);
  LatencyHistogram* h = registry.GetHistogram("ipc.queue.wait_ns");
  for (uint64_t shard = 0; shard < 4; ++shard) {
    for (uint64_t i = 0; i < 100; ++i) {
      h->Record(1000 * (shard + 1), shard);
    }
  }
  const Histogram merged = h->Merged();
  EXPECT_EQ(merged.count(), 400u);
  EXPECT_EQ(merged.Min(), 1000u);
  EXPECT_GE(merged.Max(), 4000u);
  // p50 sits between the shard-1 and shard-4 values only if all
  // shards merged.
  EXPECT_GT(merged.Percentile(99), merged.Percentile(10));
}

TEST(MetricsRegistry, GaugeTracksLastSetValue) {
  MetricsRegistry registry(2);
  Gauge* g = registry.GetGauge("orchestrator.workers.active");
  g->Set(6);
  g->Add(-2);
  EXPECT_EQ(registry.Scrape().gauges.at("orchestrator.workers.active"), 4);
}

TEST(MetricsRegistry, JsonScrapeIsWellFormed) {
  MetricsRegistry registry(2);
  registry.GetCounter("a.b.count")->Add(42);
  registry.GetGauge("a.b.gauge")->Set(-7);
  LatencyHistogram* h = registry.GetHistogram("a.b.lat_ns");
  h->Record(123, 0);
  h->Record(456, 1);
  const std::string json = registry.ToJson();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  EXPECT_NE(json.find("\"a.b.count\":42"), std::string::npos);
  EXPECT_NE(json.find("\"a.b.gauge\":-7"), std::string::npos);
  EXPECT_NE(json.find("\"count\":2"), std::string::npos);
}

TEST(MetricsRegistry, ConcurrentWritersAreExact) {
  MetricsRegistry registry(8);
  Counter* c = registry.GetCounter("stress.counter");
  LatencyHistogram* h = registry.GetHistogram("stress.hist");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        c->Inc(static_cast<size_t>(t));
        h->Record(static_cast<uint64_t>(i), static_cast<size_t>(t));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c->Value(), static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(h->Merged().count(), static_cast<uint64_t>(kThreads) * kPerThread);
}

// ------------------------------------------------------------------
// TraceRecorder
// ------------------------------------------------------------------

TEST(TraceRecorder, ChromeJsonParsesBackAndKeepsCategories) {
  TraceRecorder trace(4, 64);
  trace.Span(0, kCatQueue, "queue.wait", 100, 50, "qid", 7);
  trace.Span(1, kCatMod, "labfs", 150, 3000);
  trace.Span(1, kCatDevice, "write 4096B ch0", 3150, 9000, "channel", 0);
  trace.Span(0, kCatOrchestrator, "rebalance", 5000, 0, "workers", 2);
  // A name needing escapes must not break the JSON.
  trace.Span(2, kCatRuntime, "weird \"name\"\\path", 6000, 1);

  const std::string json = trace.ToChromeJson();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  for (const char* cat : {"queue", "mod", "device", "orchestrator"}) {
    EXPECT_NE(json.find("\"cat\":\"" + std::string(cat) + "\""),
              std::string::npos);
  }
  EXPECT_NE(json.find("\"args\":{\"qid\":7}"), std::string::npos);
  EXPECT_NE(json.find("thread_name"), std::string::npos);

  // Snapshot is merged and time-sorted.
  const std::vector<TraceEvent> events = trace.Snapshot();
  ASSERT_EQ(events.size(), 5u);
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].ts_ns, events[i].ts_ns);
  }
}

TEST(TraceRecorder, RingOverwritesOldestAndCountsDrops) {
  TraceRecorder trace(1, 8);
  for (uint64_t i = 0; i < 20; ++i) {
    trace.Span(0, kCatRuntime, "e" + std::to_string(i), i, 1);
  }
  EXPECT_EQ(trace.recorded(), 8u);
  EXPECT_EQ(trace.dropped(), 12u);
  // The retained window is the most recent events.
  uint64_t min_ts = ~0ull;
  for (const TraceEvent& e : trace.Snapshot()) min_ts = std::min(min_ts, e.ts_ns);
  EXPECT_GE(min_ts, 12u);
  trace.Clear();
  EXPECT_EQ(trace.recorded(), 0u);
}

TEST(TraceRecorder, ConcurrentSpanWritersAreSafe) {
  TraceRecorder trace(8, 1024);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        trace.Span(static_cast<uint32_t>(t), kCatMod, "span",
                   static_cast<uint64_t>(i), 1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(trace.recorded(), 8u * 1024u);
  EXPECT_EQ(trace.dropped() + trace.recorded(),
            static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_TRUE(JsonChecker(trace.ToChromeJson()).Valid());
}

// ------------------------------------------------------------------
// Sim-mode wiring: virtual-time spans out of a SimRuntime.
// ------------------------------------------------------------------

sim::Task<void> OneRequest(core::SimRuntime& rt, uint32_t qid,
                           core::Stack& stack, ipc::Request& req) {
  (void)co_await rt.Execute(qid, stack, req);
}

TEST(SimModeTelemetry, VirtualTimeSpansCoverQueueModDevice) {
  sim::Environment env;
  simdev::DeviceRegistry devices(&env);
  ASSERT_TRUE(devices.Create(simdev::DeviceParams::NvmeP3700(64 << 20)).ok());
  core::SimRuntime rt(env, devices, 2);
  Telemetry tel;
  rt.AttachTelemetry(&tel);
  EXPECT_TRUE(tel.virtual_time());

  auto stack = rt.MountYaml(
      "mount: fs::/tel\n"
      "dag:\n"
      "  - mod: labfs\n"
      "    uuid: labfs_tel\n"
      "    params:\n"
      "      log_records_per_worker: 1024\n"
      "    outputs: [sched_tel]\n"
      "  - mod: noop_sched\n"
      "    uuid: sched_tel\n"
      "    outputs: [drv_tel]\n"
      "  - mod: kernel_driver\n"
      "    uuid: drv_tel\n");
  ASSERT_TRUE(stack.ok()) << stack.status().ToString();
  rt.RegisterQueue(1, 3 * sim::kUs);
  core::DynamicOrchestrator policy;
  rt.StartRebalancer(&policy, 1 * sim::kMs);

  ipc::Request create;
  create.op = ipc::OpCode::kCreate;
  create.SetPath("fs::/tel/file");
  env.Spawn(OneRequest(rt, 1, **stack, create));
  env.Run();

  std::vector<uint8_t> data(4096, 0x5A);
  ipc::Request write;
  write.op = ipc::OpCode::kWrite;
  write.SetPath("fs::/tel/file");
  write.length = 4096;
  write.data = data.data();
  env.Spawn(OneRequest(rt, 1, **stack, write));
  const sim::Time end = env.Run();

  const std::set<std::string> cats = Categories(tel.trace());
  EXPECT_TRUE(cats.contains("queue"));
  EXPECT_TRUE(cats.contains("mod"));
  EXPECT_TRUE(cats.contains("device"));
  EXPECT_TRUE(cats.contains("orchestrator"));
  // Every span lives on the virtual timeline, not the wall clock.
  for (const TraceEvent& e : tel.trace().Snapshot()) {
    EXPECT_LE(e.ts_ns + e.dur_ns, end) << e.name;
  }

  const MetricsSnapshot snap = tel.metrics().Scrape();
  EXPECT_EQ(snap.counters.at("runtime.worker.requests"), 2u);
  EXPECT_GT(snap.counters.at("device.write.ops"), 0u);
  EXPECT_GT(snap.counters.at("mod.labfs.charged_ns"), 0u);
  EXPECT_GT(snap.histograms.at("runtime.request.latency_ns").count(), 0u);
  EXPECT_TRUE(JsonChecker(snap.ToJson()).Valid());
  EXPECT_TRUE(JsonChecker(tel.TraceJson()).Valid());
}

// ------------------------------------------------------------------
// Real-mode wiring: Runtime workers + client queue-wait stamping.
// ------------------------------------------------------------------

TEST(RealModeTelemetry, RuntimeWorkersEmitQueueAndModSpans) {
  simdev::DeviceRegistry devices(nullptr);
  ASSERT_TRUE(devices.Create(simdev::DeviceParams::NvmeP3700(64 << 20)).ok());
  Telemetry tel;
  core::Runtime::Options options;
  options.max_workers = 2;
  options.admin_poll = std::chrono::milliseconds(2);
  options.worker_idle_sleep = std::chrono::microseconds(50);
  options.telemetry = &tel;
  core::Runtime runtime(std::move(options), devices);
  auto spec = core::StackSpec::Parse(
      "mount: fs::/teler\n"
      "rules:\n"
      "  exec_mode: async\n"
      "dag:\n"
      "  - mod: labfs\n"
      "    uuid: labfs_teler\n"
      "    params:\n"
      "      log_records_per_worker: 2048\n"
      "    outputs: [lru_teler]\n"
      "  - mod: lru_cache\n"
      "    uuid: lru_teler\n"
      "    outputs: [drv_teler]\n"
      "  - mod: kernel_driver\n"
      "    uuid: drv_teler\n");
  ASSERT_TRUE(spec.ok());
  auto stack = runtime.MountStack(*spec, ipc::Credentials{1, 0, 0});
  ASSERT_TRUE(stack.ok()) << stack.status().ToString();
  ASSERT_TRUE(runtime.Start().ok());

  core::Client client(runtime, ipc::Credentials{100, 1000, 1000});
  ASSERT_TRUE(client.Connect().ok());
  labmods::GenericFs fs(client);
  auto fd = fs.Create("fs::/teler/file");
  ASSERT_TRUE(fd.ok()) << fd.status().ToString();
  std::vector<uint8_t> data(4096, 0x11);
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(fs.Write(*fd, data, static_cast<uint64_t>(i) * 4096).ok());
  }
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(fs.Read(*fd, data, static_cast<uint64_t>(i) * 4096).ok());
  }
  ASSERT_TRUE(runtime.Stop().ok());

  const MetricsSnapshot snap = tel.metrics().Scrape();
  EXPECT_GE(snap.counters.at("runtime.worker.requests"), 17u);  // ops + create
  EXPECT_GE(snap.histograms.at("ipc.queue.wait_ns").count(), 1u);
  EXPECT_GE(snap.counters.at("cache.lru_cache.hits"), 1u);
  EXPECT_GE(snap.counters.at("orchestrator.rebalance.count"), 1u);

  const std::set<std::string> cats = Categories(tel.trace());
  EXPECT_TRUE(cats.contains("queue"));
  EXPECT_TRUE(cats.contains("mod"));
  EXPECT_TRUE(cats.contains("orchestrator"));
  EXPECT_TRUE(JsonChecker(tel.TraceJson()).Valid());

  // Disabled telemetry stops recording instantly.
  const size_t before = tel.trace().recorded();
  tel.set_enabled(false);
  tel.trace().Clear();
  EXPECT_EQ(tel.trace().recorded(), 0u);
  EXPECT_GE(before, 1u);
}

// ------------------------------------------------------------------
// ExecTrace helpers shared with bench_anatomy.
// ------------------------------------------------------------------

TEST(ExecTraceSummarize, AggregatesInFirstAppearanceOrder) {
  core::ExecTrace trace;
  trace.Charge("permissions", 100);
  trace.Charge("labfs", 200);
  trace.Charge("permissions", 50);
  trace.Charge("cache", 400);
  const auto totals = trace.Summarize();
  ASSERT_EQ(totals.size(), 3u);
  EXPECT_EQ(totals[0].component, "permissions");
  EXPECT_EQ(totals[0].total, 150u);
  EXPECT_EQ(totals[1].component, "labfs");
  EXPECT_EQ(totals[1].total, 200u);
  EXPECT_EQ(totals[2].component, "cache");
  EXPECT_EQ(totals[2].total, 400u);

  core::ExecTrace::DevOp op;
  op.op = simdev::IoOp::kWrite;
  op.length = 4096;
  op.channel = 3;
  op.async = true;
  EXPECT_EQ(op.Summary(), "write 4096B ch3 async");

  Telemetry tel;
  trace.PublishTo(tel, 1);
  const MetricsSnapshot snap = tel.metrics().Scrape();
  EXPECT_EQ(snap.counters.at("mod.permissions.charged_ns"), 150u);
  EXPECT_EQ(snap.counters.at("mod.cache.charged_ns"), 400u);
}

}  // namespace
}  // namespace labstor::telemetry
