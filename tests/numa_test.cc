// NUMA-aware placement suite (DESIGN.md §13): topology math, the
// segment allocator's local/spill/exhausted ladder, the SimRuntime's
// remote-access accounting, and a zero-allocation check on the
// steady-state query paths.
//
// This binary installs the same counting global allocator as
// hotpath_test so placement decisions can be asserted allocation-free.
#include "ipc/numa.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>
#include <vector>

#include "core/orchestrator.h"
#include "core/sim_runtime.h"
#include "sim/environment.h"
#include "simdev/registry.h"

// ---------------------------------------------------------------
// Counting allocator (see hotpath_test.cc for the full rationale):
// disabled under sanitizers, where interposed allocators make
// operator-new overrides report false mismatches.
// ---------------------------------------------------------------
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define LABSTOR_COUNT_ALLOCS 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define LABSTOR_COUNT_ALLOCS 0
#else
#define LABSTOR_COUNT_ALLOCS 1
#endif
#else
#define LABSTOR_COUNT_ALLOCS 1
#endif

namespace {
std::atomic<uint64_t> g_heap_allocs{0};
uint64_t HeapAllocs() { return g_heap_allocs.load(std::memory_order_relaxed); }
}  // namespace

#if LABSTOR_COUNT_ALLOCS
void* operator new(std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (posix_memalign(&p, static_cast<std::size_t>(align), size ? size : 1) !=
      0) {
    throw std::bad_alloc();
  }
  return p;
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
#pragma GCC diagnostic pop
#endif  // LABSTOR_COUNT_ALLOCS

namespace labstor::ipc {
namespace {

// ---------------------------------------------------------------------------
// Topology math.
// ---------------------------------------------------------------------------

TEST(NumaTopologyTest, DualSocketSplitsCoresEvenly) {
  const NumaTopology topo = NumaTopology::DualSocket(256);
  EXPECT_EQ(topo.nodes, 2u);
  EXPECT_EQ(topo.cores_per_node, 128u);
  EXPECT_EQ(topo.NodeOfCore(0), 0u);
  EXPECT_EQ(topo.NodeOfCore(127), 0u);
  EXPECT_EQ(topo.NodeOfCore(128), 1u);
  EXPECT_EQ(topo.NodeOfCore(255), 1u);
  EXPECT_TRUE(topo.SameNode(0, 127));
  EXPECT_FALSE(topo.SameNode(127, 128));
}

TEST(NumaTopologyTest, DegenerateTopologyIsNumaOblivious) {
  // cores_per_node == 0 means "everything on node 0" — the pre-NUMA
  // behavior every existing caller gets by default.
  const NumaTopology flat;
  EXPECT_EQ(flat.NodeOfCore(0), 0u);
  EXPECT_EQ(flat.NodeOfCore(9999), 0u);
  EXPECT_TRUE(flat.SameNode(3, 212));

  const NumaTopology tiny = NumaTopology::DualSocket(1);
  EXPECT_EQ(tiny.cores_per_node, 1u);  // never zero cores per node
  EXPECT_EQ(tiny.NodeOfCore(0), 0u);
  EXPECT_EQ(tiny.NodeOfCore(1), 1u);
}

// ---------------------------------------------------------------------------
// Segment placement: local, spill, exhausted.
// ---------------------------------------------------------------------------

class NumaAllocTest : public ::testing::Test {
 protected:
  static constexpr size_t kSeg = 64 << 10;
  static constexpr size_t kBudget = 4 * kSeg;  // 4 segments per node

  NumaAllocTest()
      : alloc_(shm_, NumaTopology::DualSocket(8), kBudget) {}

  ShMemManager shm_;
  NumaSegmentAllocator alloc_;
  Credentials runtime_creds_{1, 0, 0};
};

TEST_F(NumaAllocTest, SegmentsLandOnTheCoreLocalNode) {
  // Cores 0-3 -> node 0, cores 4-7 -> node 1.
  auto near = alloc_.CreateForCore(runtime_creds_, 2, kSeg);
  ASSERT_TRUE(near.ok());
  EXPECT_EQ((*near)->numa_node(), 0u);
  auto far = alloc_.CreateForCore(runtime_creds_, 6, kSeg);
  ASSERT_TRUE(far.ok());
  EXPECT_EQ((*far)->numa_node(), 1u);
  EXPECT_EQ(alloc_.stats().local_allocs.load(), 2u);
  EXPECT_EQ(alloc_.stats().remote_allocs.load(), 0u);
  EXPECT_EQ(alloc_.node_used_bytes(0), kSeg);
  EXPECT_EQ(alloc_.node_used_bytes(1), kSeg);
}

TEST_F(NumaAllocTest, ExhaustedNodeSpillsToTheRemoteNodeAndCounts) {
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(alloc_.CreateForCore(runtime_creds_, 0, kSeg).ok());
  }
  ASSERT_EQ(alloc_.node_used_bytes(0), kBudget) << "node 0 full";

  // The fifth core-0 segment cannot fit locally: it must land on node
  // 1 and be counted as a spill, not fail.
  auto spilled = alloc_.CreateForCore(runtime_creds_, 0, kSeg);
  ASSERT_TRUE(spilled.ok()) << spilled.status().ToString();
  EXPECT_EQ((*spilled)->numa_node(), 1u);
  EXPECT_EQ(alloc_.stats().remote_allocs.load(), 1u);
  EXPECT_EQ(alloc_.node_used_bytes(1), kSeg);
}

TEST_F(NumaAllocTest, AllNodesFullFailsAndCounts) {
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(alloc_.CreateForCore(runtime_creds_, 0, kSeg).ok());
    ASSERT_TRUE(alloc_.CreateForCore(runtime_creds_, 4, kSeg).ok());
  }
  auto refused = alloc_.CreateForCore(runtime_creds_, 0, kSeg);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(alloc_.stats().failed_allocs.load(), 1u);
  // Failure must not leak budget.
  EXPECT_EQ(alloc_.node_used_bytes(0), kBudget);
  EXPECT_EQ(alloc_.node_used_bytes(1), kBudget);
}

TEST_F(NumaAllocTest, ExplicitNodePlacementIsHonored) {
  auto seg = alloc_.CreateOnNode(runtime_creds_, 1, kSeg);
  ASSERT_TRUE(seg.ok());
  EXPECT_EQ((*seg)->numa_node(), 1u);
  EXPECT_EQ(alloc_.node_used_bytes(1), kSeg);
  EXPECT_EQ(alloc_.node_used_bytes(0), 0u);
}

TEST_F(NumaAllocTest, SteadyStateQueriesAllocateNothing) {
#if !LABSTOR_COUNT_ALLOCS
  GTEST_SKIP() << "allocation counting disabled under sanitizers";
#endif
  // Warm: one placement on each node so every code path has run once.
  ASSERT_TRUE(alloc_.CreateForCore(runtime_creds_, 0, kSeg).ok());
  ASSERT_TRUE(alloc_.CreateForCore(runtime_creds_, 4, kSeg).ok());

  const NumaTopology& topo = alloc_.topology();
  const uint64_t before = HeapAllocs();
  uint64_t sink = 0;
  for (uint32_t i = 0; i < 10000; ++i) {
    sink += topo.NodeOfCore(i);
    sink += topo.SameNode(i, i + 1) ? 1 : 0;
    sink += alloc_.node_used_bytes(i % 2);
    sink += alloc_.stats().local_allocs.load(std::memory_order_relaxed);
  }
  EXPECT_EQ(HeapAllocs(), before)
      << "steady-state NUMA queries must not touch the heap";
  EXPECT_GT(sink, 0u);
}

}  // namespace
}  // namespace labstor::ipc

// ---------------------------------------------------------------------------
// SimRuntime accounting: a worker draining a queue homed on the other
// socket pays remote costs; rehoming turns access local again.
// ---------------------------------------------------------------------------

namespace labstor::core {
namespace {

sim::Task<void> OneDummy(SimRuntime& rt, uint32_t qid, Stack& stack,
                         ipc::Request& req, Status* out) {
  *out = co_await rt.Execute(qid, stack, req);
}

struct NumaRun {
  uint64_t remote_accesses = 0;
  uint64_t rehomed = 0;
};

NumaRun RunCrossSocketWorkload(bool rehome) {
  sim::Environment env;
  simdev::DeviceRegistry devices(&env);
  EXPECT_TRUE(devices.Create(simdev::DeviceParams::NvmeP3700(16 << 20)).ok());
  SimRuntime rt(env, devices, 4);
  // Cores 0-1 -> node 0, cores 2-3 -> node 1.
  rt.SetNumaTopology(ipc::NumaTopology::DualSocket(4),
                     sim::DefaultNumaCosts(), rehome);
  auto stack = rt.MountYaml(
      "mount: ctl::/numa\n"
      "dag:\n"
      "  - mod: dummy\n"
      "    uuid: dummy_numa\n");
  EXPECT_TRUE(stack.ok()) << stack.status().ToString();
  // The queue registers homed with worker 0 (node 0); assigning it to
  // worker 2 (node 1) makes every drain a cross-socket access.
  rt.RegisterQueue(1, 3 * sim::kUs);
  Assignment cross;
  cross.worker_queues = {{}, {}, {1}, {}};
  cross.latency_dedicated = {false, false, false, false};
  rt.ApplyAssignment(cross);

  constexpr size_t kReqs = 4;
  auto reqs = std::make_unique<std::array<ipc::Request, kReqs>>();
  std::array<Status, kReqs> done;
  for (size_t i = 0; i < kReqs; ++i) {
    ipc::Request& req = (*reqs)[i];
    req.op = ipc::OpCode::kDummy;
    env.Spawn(OneDummy(rt, 1, **stack, req, &done[i]));
  }
  env.Run();
  for (const Status& st : done) EXPECT_TRUE(st.ok()) << st.ToString();

  NumaRun run;
  run.remote_accesses = rt.remote_queue_accesses();
  run.rehomed = rt.queues_rehomed();
  return run;
}

TEST(SimNumaTest, CrossSocketDrainsAreCountedRemote) {
  const NumaRun run = RunCrossSocketWorkload(/*rehome=*/false);
  EXPECT_GT(run.remote_accesses, 0u)
      << "worker on node 1 drained a node-0 queue without paying";
  EXPECT_EQ(run.rehomed, 0u);
}

TEST(SimNumaTest, RehomingMovesTheQueueToTheWorkerNode) {
  const NumaRun run = RunCrossSocketWorkload(/*rehome=*/true);
  EXPECT_GT(run.rehomed, 0u) << "rebalance must migrate the segment";
  EXPECT_EQ(run.remote_accesses, 0u)
      << "after rehoming, steady-state drains are local";
}

}  // namespace
}  // namespace labstor::core
