// LabFS end-to-end behaviour through GenericFS over a sync LabStack
// (decentralized mode: DAG executes inline, no worker threads needed).
#include "labmods/labfs.h"

#include <gtest/gtest.h>

#include <numeric>

#include "core/client.h"
#include "core/runtime.h"
#include "labmods/genericfs.h"
#include "simdev/registry.h"

namespace labstor::labmods {
namespace {

constexpr const char* kStackYaml =
    "mount: fs::/t\n"
    "rules:\n"
    "  exec_mode: sync\n"
    "dag:\n"
    "  - mod: labfs\n"
    "    uuid: labfs_test\n"
    "    params:\n"
    "      log_records_per_worker: 2048\n"
    "    outputs: [drv_labfs_test]\n"
    "  - mod: kernel_driver\n"
    "    uuid: drv_labfs_test\n";

class LabFsTest : public ::testing::Test {
 protected:
  LabFsTest()
      : devices_(nullptr),
        runtime_(MakeOptions(), devices_),
        client_(runtime_, ipc::Credentials{100, 1000, 1000}),
        fs_(client_) {
    auto dev = devices_.Create(simdev::DeviceParams::NvmeP3700(64 << 20));
    EXPECT_TRUE(dev.ok());
    device_ = *dev;
    auto spec = core::StackSpec::Parse(kStackYaml);
    EXPECT_TRUE(spec.ok());
    auto stack = runtime_.MountStack(*spec, ipc::Credentials{1, 0, 0});
    EXPECT_TRUE(stack.ok()) << stack.status().ToString();
    EXPECT_TRUE(client_.Connect().ok());
  }

  static core::Runtime::Options MakeOptions() {
    core::Runtime::Options options;
    options.max_workers = 2;
    return options;
  }

  LabFsMod* labfs() {
    auto mod = runtime_.registry().Find("labfs_test");
    EXPECT_TRUE(mod.ok());
    return dynamic_cast<LabFsMod*>(*mod);
  }

  std::vector<uint8_t> Pattern(size_t n, uint8_t seed = 1) {
    std::vector<uint8_t> data(n);
    for (size_t i = 0; i < n; ++i) data[i] = static_cast<uint8_t>(seed + i);
    return data;
  }

  simdev::DeviceRegistry devices_;
  simdev::SimDevice* device_ = nullptr;
  core::Runtime runtime_;
  core::Client client_;
  GenericFs fs_;
};

TEST_F(LabFsTest, CreateWriteReadRoundTrip) {
  auto fd = fs_.Create("fs::/t/hello.txt");
  ASSERT_TRUE(fd.ok()) << fd.status().ToString();
  const auto data = Pattern(4096);
  auto written = fs_.Write(*fd, data, 0);
  ASSERT_TRUE(written.ok());
  EXPECT_EQ(*written, 4096u);
  std::vector<uint8_t> out(4096);
  auto read = fs_.Read(*fd, out, 0);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, 4096u);
  EXPECT_EQ(out, data);
  EXPECT_TRUE(fs_.Close(*fd).ok());
}

TEST_F(LabFsTest, OpenMissingFileFails) {
  EXPECT_EQ(fs_.Open("fs::/t/ghost", 0).status().code(),
            StatusCode::kNotFound);
}

TEST_F(LabFsTest, OpenExistingWithoutCreate) {
  auto fd = fs_.Create("fs::/t/exists");
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(fs_.Close(*fd).ok());
  auto again = fs_.Open("fs::/t/exists", 0);
  EXPECT_TRUE(again.ok());
}

TEST_F(LabFsTest, UnalignedMultiBlockWrite) {
  auto fd = fs_.Create("fs::/t/unaligned");
  ASSERT_TRUE(fd.ok());
  const auto data = Pattern(10000, 7);
  ASSERT_TRUE(fs_.Write(*fd, data, 1234).ok());
  std::vector<uint8_t> out(10000);
  auto read = fs_.Read(*fd, out, 1234);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, 10000u);
  EXPECT_EQ(out, data);
  auto size = fs_.StatSize("fs::/t/unaligned");
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, 1234u + 10000u);
}

TEST_F(LabFsTest, SparseHoleReadsZero) {
  auto fd = fs_.Create("fs::/t/sparse");
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(fs_.Write(*fd, Pattern(100), 100000).ok());
  std::vector<uint8_t> out(200, 0xFF);
  auto read = fs_.Read(*fd, out, 0);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, 200u);
  for (const uint8_t b : out) EXPECT_EQ(b, 0);
}

TEST_F(LabFsTest, ReadPastEofClamps) {
  auto fd = fs_.Create("fs::/t/short");
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(fs_.Write(*fd, Pattern(100), 0).ok());
  std::vector<uint8_t> out(4096);
  auto read = fs_.Read(*fd, out, 50);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, 50u);
  auto eof = fs_.Read(*fd, out, 100);
  ASSERT_TRUE(eof.ok());
  EXPECT_EQ(*eof, 0u);
}

TEST_F(LabFsTest, OverwriteKeepsSize) {
  auto fd = fs_.Create("fs::/t/over");
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(fs_.Write(*fd, Pattern(8192, 1), 0).ok());
  const uint64_t free_after_first = labfs()->allocator_free_blocks();
  ASSERT_TRUE(fs_.Write(*fd, Pattern(8192, 9), 0).ok());
  // Overwrite reuses blocks: no new allocation.
  EXPECT_EQ(labfs()->allocator_free_blocks(), free_after_first);
  std::vector<uint8_t> out(8192);
  ASSERT_TRUE(fs_.Read(*fd, out, 0).ok());
  EXPECT_EQ(out, Pattern(8192, 9));
}

TEST_F(LabFsTest, UnlinkFreesBlocks) {
  const uint64_t free_before = labfs()->allocator_free_blocks();
  auto fd = fs_.Create("fs::/t/doomed");
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(fs_.Write(*fd, Pattern(40960), 0).ok());
  EXPECT_EQ(labfs()->allocator_free_blocks(), free_before - 10);
  ASSERT_TRUE(fs_.Close(*fd).ok());
  ASSERT_TRUE(fs_.Unlink("fs::/t/doomed").ok());
  EXPECT_EQ(labfs()->allocator_free_blocks(), free_before);
  EXPECT_FALSE(labfs()->Exists("fs::/t/doomed"));
  EXPECT_EQ(fs_.Unlink("fs::/t/doomed").code(), StatusCode::kNotFound);
}

TEST_F(LabFsTest, RenamePreservesContent) {
  auto fd = fs_.Create("fs::/t/old_name");
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(fs_.Write(*fd, Pattern(512), 0).ok());
  ASSERT_TRUE(fs_.Close(*fd).ok());
  ASSERT_TRUE(fs_.Rename("fs::/t/old_name", "fs::/t/new_name").ok());
  EXPECT_FALSE(labfs()->Exists("fs::/t/old_name"));
  auto nfd = fs_.Open("fs::/t/new_name", 0);
  ASSERT_TRUE(nfd.ok());
  std::vector<uint8_t> out(512);
  ASSERT_TRUE(fs_.Read(*nfd, out, 0).ok());
  EXPECT_EQ(out, Pattern(512));
  // Rename onto an existing file fails.
  auto fd2 = fs_.Create("fs::/t/other");
  ASSERT_TRUE(fd2.ok());
  EXPECT_EQ(fs_.Rename("fs::/t/new_name", "fs::/t/other").code(),
            StatusCode::kAlreadyExists);
}

TEST_F(LabFsTest, MkdirAndReaddir) {
  ASSERT_TRUE(fs_.Mkdir("fs::/t/dir").ok());
  EXPECT_EQ(fs_.Mkdir("fs::/t/dir").code(), StatusCode::kAlreadyExists);
  for (int i = 0; i < 5; ++i) {
    auto fd = fs_.Create("fs::/t/dir/f" + std::to_string(i));
    ASSERT_TRUE(fd.ok());
  }
  auto fd = fs_.Create("fs::/t/dir_sibling");  // not inside /dir
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(fs_.Mkdir("fs::/t/dir/sub").ok());
  auto count = fs_.ReaddirCount("fs::/t/dir");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 6u);  // 5 files + 1 subdir, not the sibling
}

TEST_F(LabFsTest, TruncateShrinksAndFrees) {
  auto fd = fs_.Create("fs::/t/trunc");
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(fs_.Write(*fd, Pattern(16384), 0).ok());
  const uint64_t free_before = labfs()->allocator_free_blocks();
  // Truncate to 5000 bytes: blocks 2 and 3 freed.
  ipc::Request req;
  auto stack = client_.ResolvePath("fs::/t/trunc");
  ASSERT_TRUE(stack.ok());
  req.op = ipc::OpCode::kTruncate;
  req.SetPath("fs::/t/trunc");
  req.offset = 5000;
  ASSERT_TRUE(client_.Execute(req, **stack).ok());
  ASSERT_TRUE(req.ToStatus().ok());
  EXPECT_EQ(labfs()->allocator_free_blocks(), free_before + 2);
  auto size = fs_.StatSize("fs::/t/trunc");
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, 5000u);
}

TEST_F(LabFsTest, FsyncSucceeds) {
  auto fd = fs_.Create("fs::/t/sync_me");
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(fs_.Write(*fd, Pattern(100), 0).ok());
  EXPECT_TRUE(fs_.Fsync(*fd).ok());
}

TEST_F(LabFsTest, ProvenanceTracksCreatorAndOps) {
  auto fd = fs_.Create("fs::/t/prov");
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(fs_.Write(*fd, Pattern(10), 0).ok());
  ASSERT_TRUE(fs_.Write(*fd, Pattern(10), 10).ok());
  std::vector<uint8_t> out(10);
  ASSERT_TRUE(fs_.Read(*fd, out, 0).ok());
  auto prov = labfs()->GetProvenance("fs::/t/prov");
  ASSERT_TRUE(prov.ok());
  EXPECT_EQ(prov->creator_uid, 1000u);
  EXPECT_EQ(prov->creator_pid, 100u);
  EXPECT_EQ(prov->writes, 2u);
  EXPECT_EQ(prov->reads, 1u);
}

TEST_F(LabFsTest, StateRepairRebuildsFromLog) {
  // Write files, wipe in-memory state, replay the on-device log.
  auto fd = fs_.Create("fs::/t/survivor");
  ASSERT_TRUE(fd.ok());
  const auto data = Pattern(12288, 3);
  ASSERT_TRUE(fs_.Write(*fd, data, 0).ok());
  ASSERT_TRUE(fs_.Mkdir("fs::/t/dir2").ok());
  ASSERT_TRUE(fs_.Rename("fs::/t/survivor", "fs::/t/renamed").ok());
  auto dead = fs_.Create("fs::/t/deleted");
  ASSERT_TRUE(dead.ok());
  ASSERT_TRUE(fs_.Unlink("fs::/t/deleted").ok());
  const size_t files_before = labfs()->file_count();
  const uint64_t free_before = labfs()->allocator_free_blocks();

  ASSERT_TRUE(labfs()->StateRepair().ok());

  EXPECT_EQ(labfs()->file_count(), files_before);
  EXPECT_TRUE(labfs()->Exists("fs::/t/renamed"));
  EXPECT_TRUE(labfs()->Exists("fs::/t/dir2"));
  EXPECT_FALSE(labfs()->Exists("fs::/t/survivor"));
  EXPECT_FALSE(labfs()->Exists("fs::/t/deleted"));
  EXPECT_EQ(labfs()->allocator_free_blocks(), free_before);
  // Data still readable through a fresh fd (mappings replayed).
  auto nfd = fs_.Open("fs::/t/renamed", 0);
  ASSERT_TRUE(nfd.ok());
  std::vector<uint8_t> out(12288);
  auto read = fs_.Read(*nfd, out, 0);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(out, data);
  // And new allocations don't collide with replayed ones.
  auto fresh = fs_.Create("fs::/t/after_repair");
  ASSERT_TRUE(fresh.ok());
  ASSERT_TRUE(fs_.Write(*fresh, Pattern(8192, 5), 0).ok());
  std::vector<uint8_t> out2(12288);
  ASSERT_TRUE(fs_.Read(*nfd, out2, 0).ok());
  EXPECT_EQ(out2, data);
}

TEST_F(LabFsTest, FdTableCloneForFork) {
  auto fd = fs_.Create("fs::/t/forked");
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(fs_.Write(*fd, Pattern(64), 0).ok());
  // "Child process": new client + connector, inherits the fd table.
  core::Client child(runtime_, ipc::Credentials{101, 1000, 1000});
  ASSERT_TRUE(child.Connect().ok());
  GenericFs child_fs(child);
  ASSERT_TRUE(child_fs.CloneFdTableFrom(fs_).ok());
  std::vector<uint8_t> out(64);
  auto read = child_fs.Read(*fd, out, 0);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(out, Pattern(64));
}

}  // namespace
}  // namespace labstor::labmods
