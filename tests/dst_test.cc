// Deterministic-simulation harness (src/dst, DESIGN.md §8).
//
// This binary has its own main: dst::InitSeeds strips --dst_seed /
// --dst_random_seeds before gtest sees argv, so CI can pin a failing
// seed (`test_dst --dst_seed=0x...`) or widen the sweep
// (`test_dst --dst_random_seeds=25`).
#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "core/sim_runtime.h"
#include "dst/crash_enum.h"
#include "dst/invariants.h"
#include "dst/journal.h"
#include "dst/model.h"
#include "dst/rigs.h"
#include "dst/schedule.h"
#include "dst/workloads.h"
#include "faultinject/faultinject.h"
#include "ipc/shmem.h"
#include "labmods/fslog.h"
#include "simdev/registry.h"

namespace labstor::dst {
namespace {

// ---------------------------------------------------------------------------
// Schedule: seeded per-site decision streams.
// ---------------------------------------------------------------------------

TEST(ScheduleTest, SameSeedSameDraws) {
  Schedule a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64("x"), b.NextU64("x"));
    EXPECT_EQ(a.Range("y", 3, 999), b.Range("y", 3, 999));
    EXPECT_EQ(a.Chance("z", 0.3), b.Chance("z", 0.3));
    EXPECT_EQ(a.Jitter("j", 5000), b.Jitter("j", 5000));
  }
}

TEST(ScheduleTest, DifferentSeedsDiverge) {
  Schedule a(1), b(2);
  bool diverged = false;
  for (int i = 0; i < 32 && !diverged; ++i) {
    diverged = a.NextU64("x") != b.NextU64("x");
  }
  EXPECT_TRUE(diverged);
}

// A site's stream must not depend on which OTHER sites exist or when
// they were first touched — that is what makes old seeds replayable on
// builds that added new decision sites.
TEST(ScheduleTest, SiteStreamsIndependentOfCreationOrder) {
  Schedule a(7), b(7);
  // a touches "extra" first; b never touches it.
  (void)a.NextU64("extra.site");
  std::vector<uint64_t> from_a, from_b;
  for (int i = 0; i < 16; ++i) {
    from_a.push_back(a.NextU64("stable.site"));
    from_b.push_back(b.NextU64("stable.site"));
  }
  EXPECT_EQ(from_a, from_b);
}

TEST(ScheduleTest, ReplayHintNamesTheSeed) {
  Schedule s(0xABCD);
  EXPECT_NE(s.ReplayHint().find("--dst_seed=0xabcd"), std::string::npos);
}

TEST(ScheduleTest, ZeroJitterBoundIsSafe) {
  Schedule s(3);
  EXPECT_EQ(s.Jitter("site", 0), 0u);
}

// ---------------------------------------------------------------------------
// Environment::StepOne: single-event stepping for external controllers.
// ---------------------------------------------------------------------------

sim::Task<void> BumpAfter(sim::Environment& env, sim::Time delay, int* count) {
  co_await env.Delay(delay);
  ++*count;
}

TEST(StepOneTest, ExecutesExactlyOneEventAndHonorsDeadline) {
  sim::Environment env;
  int count = 0;
  env.Spawn(BumpAfter(env, 10, &count));
  env.Spawn(BumpAfter(env, 20, &count));

  // Two start events at t=0, then the two delayed resumes.
  EXPECT_TRUE(env.StepOne());  // first task runs to its Delay
  EXPECT_TRUE(env.StepOne());  // second task runs to its Delay
  EXPECT_EQ(count, 0);
  EXPECT_EQ(env.now(), 0u);

  // Deadline before the next event: no side effects.
  EXPECT_FALSE(env.StepOne(5));
  EXPECT_EQ(count, 0);
  EXPECT_EQ(env.now(), 0u);

  EXPECT_TRUE(env.StepOne());  // t=10 resume
  EXPECT_EQ(count, 1);
  EXPECT_EQ(env.now(), 10u);
  EXPECT_TRUE(env.StepOne());  // t=20 resume
  EXPECT_EQ(count, 2);
  EXPECT_FALSE(env.StepOne());  // queue drained

  env.Run();  // reap roots
}

// ---------------------------------------------------------------------------
// SimRuntime under a schedule hook: same seed => byte-identical trace.
// ---------------------------------------------------------------------------

sim::Task<void> NotedRequest(sim::Environment& env, core::SimRuntime& rt,
                             uint32_t qid, core::Stack& stack,
                             ipc::Request& req, Schedule& sched,
                             std::string tag) {
  const Status st = co_await rt.Execute(qid, stack, req);
  sched.Note(tag + " ok=" + (st.ok() ? "1" : "0") +
             " t=" + std::to_string(env.now()));
}

// Runs a small async workload whose interleaving is perturbed by the
// schedule's jitter streams, and returns the full event trace.
std::string RunJitteredScenario(uint64_t seed) {
  Schedule sched(seed);
  sim::Environment env;
  simdev::DeviceRegistry devices(&env);
  EXPECT_TRUE(devices.Create(simdev::DeviceParams::NvmeP3700(64 << 20)).ok());
  core::SimRuntime rt(env, devices, 2);
  rt.SetScheduleHook(sched.MakeSimHook(20 * sim::kUs));
  auto stack = rt.MountYaml(
      "mount: fs::/tr\n"
      "dag:\n"
      "  - mod: labfs\n"
      "    uuid: labfs_trace\n"
      "    params:\n"
      "      log_records_per_worker: 1024\n"
      "    outputs: [drv_trace]\n"
      "  - mod: kernel_driver\n"
      "    uuid: drv_trace\n");
  EXPECT_TRUE(stack.ok()) << stack.status().ToString();
  rt.RegisterQueue(1, 3 * sim::kUs);
  rt.RegisterQueue(2, 3 * sim::kUs);
  core::RoundRobinOrchestrator rr;
  rt.ApplyAssignment(
      rr.Rebalance({core::QueueLoad{1, 0, 0}, core::QueueLoad{2, 0, 0}}, 2));

  constexpr size_t kReqs = 6;
  std::vector<uint8_t> data(4096, 0x5A);
  // Requests hold atomics and cannot move; fixed storage.
  auto reqs = std::make_unique<std::array<ipc::Request, kReqs>>();
  for (size_t i = 0; i < kReqs; ++i) {
    ipc::Request& req = (*reqs)[i];
    if (i % 2 == 0) {
      req.op = ipc::OpCode::kCreate;
      req.SetPath("fs::/tr/f" + std::to_string(i));
    } else {
      req.op = ipc::OpCode::kCreate;
      req.SetPath("fs::/tr/g" + std::to_string(i));
    }
    env.Spawn(NotedRequest(env, rt, static_cast<uint32_t>(1 + i % 2), **stack,
                           req, sched, "req" + std::to_string(i)));
  }
  const sim::Time end = env.Run();
  sched.Note("end t=" + std::to_string(end));
  (void)data;
  return sched.trace();
}

TEST(SimTraceTest, SameSeedByteIdenticalTrace) {
  const std::string first = RunJitteredScenario(0xFEED);
  const std::string second = RunJitteredScenario(0xFEED);
  EXPECT_EQ(first, second) << "same seed must replay the same schedule";
  EXPECT_FALSE(first.empty());
}

TEST(SimTraceTest, DifferentSeedsPerturbTheSchedule) {
  // Jitter draws differ, so completion timestamps (and possibly order)
  // diverge between seeds.
  EXPECT_NE(RunJitteredScenario(1), RunJitteredScenario(2));
}

// ---------------------------------------------------------------------------
// Crash-point enumeration: every fslog append boundary, every torn
// prefix class, every invariant — across the whole seed sweep.
// ---------------------------------------------------------------------------

// Widens Result<unique_ptr<ConcreteRig>> to the factory's CrashRig.
template <typename Rig>
Result<std::unique_ptr<CrashRig>> MakeRig() {
  auto rig = Rig::Create();
  if (!rig.ok()) return rig.status();
  return std::unique_ptr<CrashRig>(std::move(*rig));
}

Workload FsWorkload(size_t num_ops) {
  return [num_ops](CrashRig& rig, Schedule& sched, const DeviceJournal& journal,
                   WorkloadLedger& ledger) {
    return RunFsWorkload(rig, sched, journal, ledger.fs, num_ops);
  };
}

Workload KvsWorkload(size_t num_ops) {
  return [num_ops](CrashRig& rig, Schedule& sched, const DeviceJournal& journal,
                   WorkloadLedger& ledger) {
    return RunKvsWorkload(rig, sched, journal, ledger.kv, num_ops);
  };
}

TEST(CrashEnumTest, LabFsEveryCrashPointRecoversConsistently) {
  const LabFsNoLostAckedWrites no_lost;
  const LabFsNoOrphanedBlocks no_orphans;
  const LabFsReplayIdempotence idempotent;
  const std::vector<const Invariant*> invariants{&no_lost, &no_orphans,
                                                 &idempotent};
  for (const uint64_t seed : SeedList()) {
    SCOPED_TRACE("seed 0x" + std::to_string(seed));
    Schedule sched(seed);
    auto report = EnumerateCrashPoints(
        MakeRig<SyncFsRig>,
        FsWorkload(25), invariants, sched);
    ASSERT_TRUE(report.ok()) << report.status().ToString() << "; "
                             << sched.ReplayHint();
    EXPECT_GT(report->boundaries, 0u) << sched.ReplayHint();
    // 256-byte records, stride 64: prefixes 0/64/128/192 + the fully
    // persisted record = 5 recovery states per boundary, plus the
    // end-of-run state. Exact, so a silently skipped boundary fails.
    EXPECT_EQ(report->points_visited, report->boundaries * 5 + 1)
        << sched.ReplayHint();
    EXPECT_TRUE(report->failures.empty())
        << report->Summary() << "\n"
        << sched.ReplayHint();
  }
}

TEST(CrashEnumTest, LabKvsEveryCrashPointRecoversConsistently) {
  const LabKvsAckedPutsVisible visible;
  const std::vector<const Invariant*> invariants{&visible};
  for (const uint64_t seed : SeedList()) {
    SCOPED_TRACE("seed 0x" + std::to_string(seed));
    Schedule sched(seed);
    auto report = EnumerateCrashPoints(
        MakeRig<SyncKvsRig>,
        KvsWorkload(20), invariants, sched);
    ASSERT_TRUE(report.ok()) << report.status().ToString() << "; "
                             << sched.ReplayHint();
    EXPECT_GT(report->boundaries, 0u) << sched.ReplayHint();
    EXPECT_EQ(report->points_visited, report->boundaries * 5 + 1)
        << sched.ReplayHint();
    EXPECT_TRUE(report->failures.empty())
        << report->Summary() << "\n"
        << sched.ReplayHint();
  }
}

TEST(CrashEnumTest, EnumerationTraceIsDeterministic) {
  const auto run = [](uint64_t seed) {
    Schedule sched(seed);
    const LabFsNoOrphanedBlocks no_orphans;
    auto report = EnumerateCrashPoints(
        MakeRig<SyncFsRig>,
        FsWorkload(10), {&no_orphans}, sched);
    EXPECT_TRUE(report.ok());
    return sched.trace();
  };
  const uint64_t seed = SeedList().front();
  const std::string first = run(seed);
  EXPECT_EQ(first, run(seed));
  EXPECT_FALSE(first.empty());
}

// A deliberately impossible invariant: proves a violation surfaces as
// a failure whose detail names the seed that replays it.
class AlwaysViolated final : public Invariant {
 public:
  std::string_view name() const override { return "test.always_violated"; }
  Status Check(const InvariantContext& ctx) const override {
    return Status::Internal("deliberate violation at boundary " +
                            std::to_string(ctx.point.boundary));
  }
};

TEST(CrashEnumTest, FailingInvariantReportsReplayableSeed) {
  Schedule sched(0xBADBEEF);
  const AlwaysViolated bad;
  auto report = EnumerateCrashPoints(
      MakeRig<SyncKvsRig>,
      KvsWorkload(4), {&bad}, sched);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_FALSE(report->failures.empty());
  EXPECT_FALSE(report->ok());
  for (const CrashFailure& f : report->failures) {
    EXPECT_NE(f.detail.find("--dst_seed=0xbadbeef"), std::string::npos)
        << f.detail;
    EXPECT_EQ(f.invariant, "test.always_violated");
  }
  EXPECT_NE(report->Summary().find("--dst_seed=0xbadbeef"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Snapshotable shared memory: crash-rollback semantics.
// ---------------------------------------------------------------------------

TEST(ShMemSnapshotTest, RestoreRollsBackBytesAndCursor) {
  ipc::ShMemSegment seg(1, 4096, ipc::Credentials{1, 0, 0});
  auto* a = seg.New<uint64_t>(0x1111'1111ULL);
  ASSERT_NE(a, nullptr);
  const size_t bytes_at_snap = seg.allocated_bytes();
  const Arena::Snapshot snap = seg.Snapshot();

  // Mutate pre-snapshot state and allocate past the checkpoint.
  *a = 0x2222'2222ULL;
  auto* b = seg.New<uint64_t>(0x3333'3333ULL);
  ASSERT_NE(b, nullptr);
  ASSERT_GT(seg.allocated_bytes(), bytes_at_snap);

  ASSERT_TRUE(seg.Restore(snap).ok());
  EXPECT_EQ(*a, 0x1111'1111ULL) << "mutation after the snapshot must vanish";
  EXPECT_EQ(seg.allocated_bytes(), bytes_at_snap);

  // The rolled-back region is reusable: the next allocation lands where
  // `b` was, exactly as after a real crash + restart.
  auto* c = seg.New<uint64_t>(0x4444'4444ULL);
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(static_cast<void*>(c), static_cast<void*>(b));
}

TEST(ShMemSnapshotTest, RestoreRejectsForeignSnapshot) {
  ipc::ShMemSegment seg(1, 4096, ipc::Credentials{1, 0, 0});
  ipc::ShMemSegment other(2, 8192, ipc::Credentials{1, 0, 0});
  ASSERT_NE(other.New<uint64_t>(1), nullptr);
  const Arena::Snapshot snap = other.Snapshot();
  // 8192-byte chunk layout cannot restore into a 4096-byte arena.
  EXPECT_FALSE(seg.Restore(snap).ok());
}

// ---------------------------------------------------------------------------
// FsLog torn-tail accounting (regression): the cumulative counter used
// to be the only signal, so a second Replay over the same log doubled
// the count and per-scan assertions passed or failed by accident.
// ---------------------------------------------------------------------------

TEST(FsLogStatsTest, TornCounterIsPerReplayAndResettable) {
  simdev::DeviceRegistry devices(nullptr);
  auto dev = devices.Create(simdev::DeviceParams::NvmeP3700(1 << 20));
  ASSERT_TRUE(dev.ok());
  labmods::MetadataLog log(*dev, 0, 1, 16);

  labmods::LogRecord rec;
  rec.op = labmods::LogOp::kCreate;
  rec.SetPath("fs::/x/a");
  ASSERT_TRUE(log.Append(0, rec).ok());
  rec.SetPath("fs::/x/b");
  ASSERT_TRUE(log.Append(0, rec).ok());

  // Tear the third append: the device persists only the first 100
  // bytes (magic survives, crc does not), exactly the torn-write model
  // Replay must detect.
  {
    faultinject::FaultInjector fi(7);
    faultinject::FaultPolicy torn;
    torn.trigger = faultinject::FaultPolicy::Trigger::kOnce;
    torn.arg = 100;
    fi.Arm("simdev.write.torn", torn);
    faultinject::ScopedInstall install(fi);
    rec.SetPath("fs::/x/c");
    EXPECT_FALSE(log.Append(0, rec).ok()) << "torn write surfaces an error";
  }

  const auto count_records = [&log] {
    size_t n = 0;
    EXPECT_TRUE(log.Replay([&n](const labmods::LogRecord&) {
                     ++n;
                     return Status::Ok();
                   }).ok());
    return n;
  };

  EXPECT_EQ(count_records(), 2u);
  EXPECT_EQ(log.last_replay_torn_dropped(), 1u);
  EXPECT_EQ(log.torn_records_dropped(), 1u);

  // Second scan of the same log: per-replay count stays 1 (the
  // regression had no per-scan signal; the cumulative one doubles).
  EXPECT_EQ(count_records(), 2u);
  EXPECT_EQ(log.last_replay_torn_dropped(), 1u);
  EXPECT_EQ(log.torn_records_dropped(), 2u);

  log.ResetStats();
  EXPECT_EQ(log.last_replay_torn_dropped(), 0u);
  EXPECT_EQ(log.torn_records_dropped(), 0u);
  EXPECT_EQ(count_records(), 2u);
  EXPECT_EQ(log.last_replay_torn_dropped(), 1u);
  EXPECT_EQ(log.torn_records_dropped(), 1u);
}

// ---------------------------------------------------------------------------
// DeviceJournal: prefix replay reconstructs exact device states.
// ---------------------------------------------------------------------------

TEST(DeviceJournalTest, PrefixReplayReconstructsTornState) {
  simdev::DeviceRegistry devices(nullptr);
  auto dev = devices.Create(simdev::DeviceParams::NvmeP3700(1 << 20));
  ASSERT_TRUE(dev.ok());

  DeviceJournal journal;
  journal.Attach(**dev);
  const std::vector<uint8_t> first = PatternBytes(1, 512);
  const std::vector<uint8_t> second = PatternBytes(2, 512);
  ASSERT_TRUE((*dev)->WriteNow(0, first).ok());
  ASSERT_TRUE((*dev)->WriteNow(4096, second).ok());
  DeviceJournal::Detach(**dev);
  ASSERT_EQ(journal.entries(), 2u);

  // Replay entry 0 in full plus 128 torn bytes of entry 1.
  simdev::DeviceParams fresh_params = simdev::DeviceParams::NvmeP3700(1 << 20);
  fresh_params.name = "nvme_fresh";
  auto fresh = devices.Create(fresh_params);
  ASSERT_TRUE(fresh.ok());
  ASSERT_TRUE(journal.ReplayInto(**fresh, 1, 128).ok());

  std::vector<uint8_t> got(512);
  ASSERT_TRUE((*fresh)->ReadNow(0, got).ok());
  EXPECT_EQ(got, first);
  ASSERT_TRUE((*fresh)->ReadNow(4096, got).ok());
  EXPECT_TRUE(std::equal(second.begin(), second.begin() + 128, got.begin()));
  const std::vector<uint8_t> zeros(512 - 128, 0);
  EXPECT_TRUE(std::equal(got.begin() + 128, got.end(), zeros.begin()))
      << "bytes past the torn prefix must be absent";
}

TEST(DeviceJournalTest, LogBoundariesSelectRegionWrites) {
  simdev::DeviceRegistry devices(nullptr);
  auto dev = devices.Create(simdev::DeviceParams::NvmeP3700(1 << 20));
  ASSERT_TRUE(dev.ok());
  DeviceJournal journal;
  journal.Attach(**dev);
  const std::vector<uint8_t> blob(256, 0xAA);
  ASSERT_TRUE((*dev)->WriteNow(0, blob).ok());        // in log region
  ASSERT_TRUE((*dev)->WriteNow(100000, blob).ok());   // data region
  ASSERT_TRUE((*dev)->WriteNow(256, blob).ok());      // in log region
  DeviceJournal::Detach(**dev);
  const std::vector<size_t> boundaries = journal.LogBoundaries(0, 4096);
  EXPECT_EQ(boundaries, (std::vector<size_t>{0, 2}));
}

}  // namespace
}  // namespace labstor::dst

int main(int argc, char** argv) {
  labstor::dst::InitSeeds(&argc, argv);
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
