// execve fd-state handoff and the decentralized rolling upgrade.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "core/client.h"
#include "core/runtime.h"
#include "labmods/dummy.h"
#include "labmods/genericfs.h"
#include "simdev/registry.h"

namespace labstor {
namespace {

using namespace std::chrono_literals;

class ExecveTest : public ::testing::Test {
 protected:
  ExecveTest() : devices_(nullptr), runtime_(MakeOptions(), devices_) {
    EXPECT_TRUE(devices_.Create(simdev::DeviceParams::NvmeP3700(64 << 20)).ok());
    auto spec = core::StackSpec::Parse(
        "mount: fs::/ex\n"
        "rules:\n"
        "  exec_mode: sync\n"
        "dag:\n"
        "  - mod: labfs\n"
        "    uuid: ex_fs\n"
        "    params:\n"
        "      log_records_per_worker: 512\n"
        "    outputs: [ex_drv]\n"
        "  - mod: kernel_driver\n"
        "    uuid: ex_drv\n");
    EXPECT_TRUE(spec.ok());
    EXPECT_TRUE(runtime_.MountStack(*spec, ipc::Credentials{1, 0, 0}).ok());
  }

  static core::Runtime::Options MakeOptions() {
    core::Runtime::Options options;
    options.max_workers = 2;
    options.admin_poll = 2ms;
    return options;
  }

  simdev::DeviceRegistry devices_;
  core::Runtime runtime_;
};

TEST_F(ExecveTest, FdStateSurvivesExecve) {
  core::Client client(runtime_, ipc::Credentials{100, 1000, 1000});
  ASSERT_TRUE(client.Connect().ok());
  labmods::GenericFs fs(client);
  auto fd = fs.Create("fs::/ex/persisted");
  ASSERT_TRUE(fd.ok());
  std::vector<uint8_t> data(512, 0xEC);
  ASSERT_TRUE(fs.Write(*fd, data, 0).ok());

  // execve: park the table, "replace the address space" (a fresh
  // connector object), reclaim.
  ASSERT_TRUE(fs.SaveStateForExecve().ok());
  EXPECT_EQ(fs.open_files(), 0u);

  labmods::GenericFs after_exec(client);
  ASSERT_TRUE(after_exec.RestoreStateAfterExecve().ok());
  EXPECT_EQ(after_exec.open_files(), 1u);
  std::vector<uint8_t> out(512);
  auto read = after_exec.Read(*fd, out, 0);  // the SAME fd number
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(out, data);
  // New fds don't collide with inherited ones.
  auto fd2 = after_exec.Create("fs::/ex/fresh");
  ASSERT_TRUE(fd2.ok());
  EXPECT_NE(*fd2, *fd);
}

TEST_F(ExecveTest, RestoreWithoutSaveFails) {
  core::Client client(runtime_, ipc::Credentials{200, 1000, 1000});
  ASSERT_TRUE(client.Connect().ok());
  labmods::GenericFs fs(client);
  EXPECT_EQ(fs.RestoreStateAfterExecve().code(), StatusCode::kNotFound);
}

TEST_F(ExecveTest, SavedStateIsConsumedOnce) {
  core::Client client(runtime_, ipc::Credentials{300, 1000, 1000});
  ASSERT_TRUE(client.Connect().ok());
  labmods::GenericFs fs(client);
  auto fd = fs.Create("fs::/ex/once");
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(fs.SaveStateForExecve().ok());
  labmods::GenericFs next(client);
  ASSERT_TRUE(next.RestoreStateAfterExecve().ok());
  labmods::GenericFs again(client);
  EXPECT_EQ(again.RestoreStateAfterExecve().code(), StatusCode::kNotFound);
}

TEST_F(ExecveTest, DecentralizedUpgradeRollsWithoutErrors) {
  auto spec = core::StackSpec::Parse(
      "mount: ctl::/roll\n"
      "dag:\n"
      "  - mod: dummy\n"
      "    uuid: roll_dummy\n"
      "    version: 1\n");
  ASSERT_TRUE(spec.ok());
  auto stack = runtime_.MountStack(*spec, ipc::Credentials{1, 0, 0});
  ASSERT_TRUE(stack.ok());
  ASSERT_TRUE(runtime_.Start().ok());

  // Two clients keep traffic flowing while a decentralized upgrade
  // rolls across their queues.
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> sent{0};
  std::atomic<uint64_t> errors{0};
  std::vector<std::thread> apps;
  for (uint32_t i = 0; i < 2; ++i) {
    apps.emplace_back([&, i] {
      core::Client client(runtime_, ipc::Credentials{400 + i, 1000, 1000});
      if (!client.Connect().ok()) {
        ++errors;
        return;
      }
      auto req = client.NewRequest();
      if (!req.ok()) {
        ++errors;
        return;
      }
      while (!stop.load()) {
        (*req)->Reuse();
        (*req)->op = ipc::OpCode::kDummy;
        if (client.Execute(**req, **stack).ok() && (*req)->ToStatus().ok()) {
          ++sent;
        } else {
          ++errors;
        }
      }
    });
  }
  while (sent.load() < 200) std::this_thread::yield();
  runtime_.SubmitUpgrade(core::UpgradeRequest{
      "dummy", 2, core::UpgradeKind::kDecentralized, 1 << 20});
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (runtime_.module_manager().upgrades_applied() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(1ms);
  }
  EXPECT_EQ(runtime_.module_manager().upgrades_applied(), 1u);
  const uint64_t at_upgrade = sent.load();
  while (sent.load() < at_upgrade + 200) std::this_thread::yield();
  stop.store(true);
  for (auto& t : apps) t.join();

  EXPECT_EQ(errors.load(), 0u);
  auto mod = runtime_.registry().Find("roll_dummy");
  ASSERT_TRUE(mod.ok());
  EXPECT_EQ((*mod)->version(), 2u);
  EXPECT_EQ(dynamic_cast<labmods::DummyMod*>(*mod)->messages(), sent.load());
  ASSERT_TRUE(runtime_.Stop().ok());
}

}  // namespace
}  // namespace labstor
