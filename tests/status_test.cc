#include "common/status.h"

#include <gtest/gtest.h>

namespace labstor {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("no such stack");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "no such stack");
  EXPECT_EQ(s.ToString(), "NOT_FOUND: no such stack");
}

TEST(StatusTest, EqualityComparesCodeOnly) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_EQ(Status::InvalidArgument("").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::AlreadyExists("").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::PermissionDenied("").code(), StatusCode::kPermissionDenied);
  EXPECT_EQ(Status::ResourceExhausted("").code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::FailedPrecondition("").code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Unavailable("").code(), StatusCode::kUnavailable);
  EXPECT_EQ(Status::Corruption("").code(), StatusCode::kCorruption);
  EXPECT_EQ(Status::Unimplemented("").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Timeout("").code(), StatusCode::kTimeout);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::Internal("boom"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, MoveOnlyTypes) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> owned = std::move(r).value();
  EXPECT_EQ(*owned, 7);
}

Status Helper(bool fail) {
  LABSTOR_RETURN_IF_ERROR(fail ? Status::Internal("inner") : Status::Ok());
  return Status::Ok();
}

TEST(ResultTest, ReturnIfErrorMacro) {
  EXPECT_TRUE(Helper(false).ok());
  EXPECT_EQ(Helper(true).code(), StatusCode::kInternal);
}

Result<int> Doubled(Result<int> in) {
  LABSTOR_ASSIGN_OR_RETURN(v, in);
  return v * 2;
}

TEST(ResultTest, AssignOrReturnMacro) {
  EXPECT_EQ(*Doubled(21), 42);
  EXPECT_EQ(Doubled(Status::NotFound("x")).status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace labstor
