// Device completion layer: polled vs interrupt delivery.
//
//   * completion-mode resolution at driver attach (`completion:` param,
//     including the S4 regression: a non-polling device must REJECT a
//     polled attach instead of silently spinning forever);
//   * DST byte-identity: the same seeded workload produces the same
//     recovery-visible device bytes whether completions are polled or
//     interrupt-delivered — delivery affects time, never state;
//   * crash enumeration at interrupt-delivery boundaries (op durable,
//     waiter never notified: the classic lost-completion window);
//   * doorbell/event wakeups in the real Runtime (workers parked in
//     idle sleep wake on submit instead of waiting out the backoff).
//
// Own main: dst::InitSeeds strips --dst_seed so failures replay.
#include <gtest/gtest.h>

#include <array>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/client.h"
#include "core/debug_harness.h"
#include "core/orchestrator.h"
#include "core/runtime.h"
#include "core/sim_runtime.h"
#include "dst/crash_enum.h"
#include "dst/invariants.h"
#include "dst/rigs.h"
#include "dst/schedule.h"
#include "labmods/drivers.h"
#include "sim/environment.h"
#include "simdev/registry.h"

namespace labstor {
namespace {

using namespace std::chrono_literals;

// ---------------------------------------------------------------------------
// Completion-mode resolution at attach time.
// ---------------------------------------------------------------------------

class CompletionResolutionTest : public ::testing::Test {
 protected:
  Result<std::unique_ptr<core::DebugHarness>> Attach(
      simdev::DeviceParams params, const std::string& yaml) {
    auto dev = devices_.Create(std::move(params));
    if (!dev.ok()) return dev.status();
    device_ = *dev;
    core::ModContext ctx;
    ctx.devices = &devices_;
    auto parsed = yaml::Parse(yaml);
    if (!parsed.ok()) return parsed.status();
    return core::DebugHarness::Create("kernel_driver", *parsed, ctx);
  }

  simdev::DeviceRegistry devices_;
  simdev::SimDevice* device_ = nullptr;
};

TEST_F(CompletionResolutionTest, NonPollingDeviceRejectsPolledAttach) {
  // S4 regression: supports_polling used to be declared and never
  // consulted, so this attach silently produced a driver that would
  // poll a device that never posts pollable CQEs.
  auto params = simdev::DeviceParams::SataSsd(16 << 20);
  ASSERT_FALSE(params.supports_polling);
  auto harness = Attach(std::move(params), "device: ssd0\ncompletion: polling\n");
  ASSERT_FALSE(harness.ok());
  EXPECT_EQ(harness.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(harness.status().ToString().find("ssd0"), std::string::npos)
      << "the error must name the offending device: "
      << harness.status().ToString();
}

TEST_F(CompletionResolutionTest, DeviceDefaultDowngradesImpossiblePolling) {
  // A hand-rolled DeviceParams can claim kPolling on a device that
  // cannot be polled; the default `completion: device` resolution must
  // fall back to interrupts instead of honoring the contradiction.
  auto params = simdev::DeviceParams::SataSsd(16 << 20);
  params.completion_mode = simdev::CompletionMode::kPolling;  // misconfigured
  auto harness = Attach(std::move(params), "device: ssd0\n");
  ASSERT_TRUE(harness.ok()) << harness.status().ToString();
  EXPECT_EQ(device_->completion_mode(), simdev::CompletionMode::kInterrupt);
}

TEST_F(CompletionResolutionTest, ExplicitModeOverridesTheDeviceDefault) {
  auto params = simdev::DeviceParams::NvmeP3700(16 << 20);
  ASSERT_TRUE(params.supports_polling);
  ASSERT_EQ(params.completion_mode, simdev::CompletionMode::kPolling);
  auto harness = Attach(std::move(params),
                        "device: nvme0\ncompletion: interrupt\n");
  ASSERT_TRUE(harness.ok()) << harness.status().ToString();
  EXPECT_EQ(device_->completion_mode(), simdev::CompletionMode::kInterrupt);
}

TEST_F(CompletionResolutionTest, UnknownModeIsAnError) {
  auto harness = Attach(simdev::DeviceParams::NvmeP3700(16 << 20),
                        "device: nvme0\ncompletion: carrier-pigeon\n");
  ASSERT_FALSE(harness.ok());
  EXPECT_EQ(harness.status().code(), StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// Byte identity across completion modes (DST).
// ---------------------------------------------------------------------------

sim::Task<void> SequentialFsOps(core::SimRuntime& rt, core::Stack& stack,
                                ipc::Request& req, uint64_t seed,
                                Status* out) {
  // One request reused across strictly-sequential ops: completion
  // delivery may stretch virtual time, but the op ORDER is fixed, so
  // any cross-mode divergence in device bytes is a real state bug.
  std::vector<uint8_t> payload(4096);
  for (int i = 0; i < 8; ++i) {
    const std::string path = "fs::/dev/f" + std::to_string(i);
    req.Reuse();
    req.op = ipc::OpCode::kCreate;
    req.SetPath(path);
    if (Status st = co_await rt.Execute(1, stack, req); !st.ok()) {
      *out = st;
      co_return;
    }
    for (size_t b = 0; b < payload.size(); ++b) {
      payload[b] = static_cast<uint8_t>(seed + i + b);
    }
    req.Reuse();
    req.op = ipc::OpCode::kWrite;
    req.SetPath(path);
    req.offset = (static_cast<uint64_t>(i) % 3) * 1000;  // partials too
    req.length = payload.size();
    req.data = payload.data();
    if (Status st = co_await rt.Execute(1, stack, req); !st.ok()) {
      *out = st;
      co_return;
    }
  }
  *out = Status::Ok();
}

uint64_t DeviceDigest(simdev::SimDevice& dev) {
  uint64_t hash = 1469598103934665603ULL;  // FNV-1a offset basis
  std::vector<uint8_t> block(4096);
  for (uint64_t off = 0; off < dev.params().capacity_bytes;
       off += block.size()) {
    EXPECT_TRUE(dev.ReadNow(off, block).ok());
    for (const uint8_t byte : block) {
      hash = (hash ^ byte) * 1099511628211ULL;
    }
  }
  return hash;
}

struct ModeRun {
  uint64_t digest = 0;
  uint64_t polled = 0;
  uint64_t interrupts = 0;
};

ModeRun RunSeededWorkload(uint64_t seed, const char* completion) {
  dst::Schedule sched(seed);
  sim::Environment env;
  simdev::DeviceRegistry devices(&env);
  auto dev = devices.Create(simdev::DeviceParams::NvmeP3700(16 << 20));
  EXPECT_TRUE(dev.ok());
  core::SimRuntime rt(env, devices, 1);
  rt.SetScheduleHook(sched.MakeSimHook(20 * sim::kUs));
  auto stack = rt.MountYaml(std::string(
      "mount: fs::/dev\n"
      "dag:\n"
      "  - mod: labfs\n"
      "    uuid: labfs_dev\n"
      "    params:\n"
      "      log_records_per_worker: 1024\n"
      "    outputs: [drv_dev]\n"
      "  - mod: kernel_driver\n"
      "    uuid: drv_dev\n"
      "    params:\n"
      "      completion: ") + completion + "\n");
  EXPECT_TRUE(stack.ok()) << stack.status().ToString();
  rt.RegisterQueue(1, 3 * sim::kUs);
  core::RoundRobinOrchestrator rr;
  rt.ApplyAssignment(rr.Rebalance({core::QueueLoad{1, 0, 0}}, 1));

  auto req = std::make_unique<ipc::Request>();
  Status status = Status::Internal("workload never ran");
  env.Spawn(SequentialFsOps(rt, **stack, *req, seed, &status));
  env.Run();
  EXPECT_TRUE(status.ok()) << status.ToString();

  ModeRun run;
  run.digest = DeviceDigest(**dev);
  run.polled = rt.polled_completions();
  run.interrupts = rt.interrupt_completions();
  return run;
}

TEST(ModeByteIdentityTest, PolledAndInterruptRunsProduceIdenticalBytes) {
  for (const uint64_t seed : dst::SeedList()) {
    SCOPED_TRACE("seed 0x" + std::to_string(seed));
    const ModeRun polled = RunSeededWorkload(seed, "polling");
    const ModeRun irq = RunSeededWorkload(seed, "interrupt");
    // Delivery mechanisms actually differed...
    EXPECT_GT(polled.polled, 0u);
    EXPECT_EQ(polled.interrupts, 0u);
    EXPECT_GT(irq.interrupts, 0u);
    EXPECT_EQ(irq.polled, 0u);
    // ...and the durable state did not.
    EXPECT_EQ(polled.digest, irq.digest)
        << "completion delivery changed recovery-visible device bytes";
  }
}

TEST(ModeByteIdentityTest, SameSeedSameModeIsDeterministic) {
  const uint64_t seed = dst::SeedList().front();
  EXPECT_EQ(RunSeededWorkload(seed, "interrupt").digest,
            RunSeededWorkload(seed, "interrupt").digest);
}

// ---------------------------------------------------------------------------
// Crash enumeration at interrupt-delivery boundaries.
// ---------------------------------------------------------------------------

dst::Workload InterruptFsWorkload(size_t num_ops) {
  return [num_ops](dst::CrashRig& rig, dst::Schedule& sched,
                   const dst::DeviceJournal& journal,
                   dst::WorkloadLedger& ledger) -> Status {
    rig.device().set_completion_mode(simdev::CompletionMode::kInterrupt);
    labmods::GenericFs* fs = rig.fs();
    if (fs == nullptr) return Status::FailedPrecondition("rig has no fs");
    for (size_t i = 0; i < num_ops; ++i) {
      auto fd = fs->Create("fs::/dst/irq" + std::to_string(i));
      if (!fd.ok()) return fd.status();
      std::vector<uint8_t> data(sched.Range("irq.len", 1, 4096),
                                static_cast<uint8_t>(i + 1));
      auto wrote = fs->Write(*fd, data, 0);
      if (!wrote.ok()) return wrote.status();
      // The durable prefix at the moment the simulated IRQ would fire:
      // the op's writes are on the device, the waiter has not resumed.
      ledger.interrupt_boundaries.push_back(journal.entries());
    }
    return Status::Ok();
  };
}

TEST(InterruptCrashEnumTest, LostCompletionWindowsRecoverConsistently) {
  const dst::LabFsNoOrphanedBlocks no_orphans;
  const dst::LabFsReplayIdempotence idempotent;
  const std::vector<const dst::Invariant*> invariants{&no_orphans,
                                                      &idempotent};
  constexpr size_t kOps = 12;
  for (const uint64_t seed : dst::SeedList()) {
    SCOPED_TRACE("seed 0x" + std::to_string(seed));
    dst::Schedule sched(seed);
    auto report = dst::EnumerateCrashPoints(
        [] {
          auto rig = dst::SyncFsRig::Create();
          if (!rig.ok()) return Result<std::unique_ptr<dst::CrashRig>>(
              rig.status());
          return Result<std::unique_ptr<dst::CrashRig>>(
              std::unique_ptr<dst::CrashRig>(std::move(*rig)));
        },
        InterruptFsWorkload(kOps), invariants, sched);
    ASSERT_TRUE(report.ok()) << report.status().ToString() << "; "
                             << sched.ReplayHint();
    EXPECT_GT(report->boundaries, 0u);
    // boundary x torn-prefix points + end-of-run + one reconstructed
    // prefix per interrupt boundary: exact, so none can be skipped.
    EXPECT_EQ(report->points_visited, report->boundaries * 5 + 1 + kOps)
        << sched.ReplayHint();
    EXPECT_TRUE(report->failures.empty())
        << report->Summary() << "\n"
        << sched.ReplayHint();
  }
}

// ---------------------------------------------------------------------------
// Doorbell wakeups in the real Runtime.
// ---------------------------------------------------------------------------

core::StackSpec DummyStack(const std::string& mount, const std::string& uuid) {
  auto spec = core::StackSpec::Parse("mount: " + mount +
                                     "\n"
                                     "dag:\n"
                                     "  - mod: dummy\n"
                                     "    uuid: " +
                                     uuid + "\n");
  EXPECT_TRUE(spec.ok()) << spec.status().ToString();
  return *spec;
}

// Run `submits` spaced-out dummy requests and return the runtime's
// doorbell counters. With long gaps and a high sleep ceiling workers
// spend the gaps parked, so event wakeups (when enabled) must fire.
struct DoorbellRun {
  uint64_t rings = 0;
  uint64_t wakeups = 0;
  uint64_t sleeps = 0;
};

DoorbellRun RunDoorbellWorkload(bool event_wakeup, int submits) {
  simdev::DeviceRegistry devices(nullptr);
  EXPECT_TRUE(devices.Create(simdev::DeviceParams::NvmeP3700(16 << 20)).ok());
  core::Runtime::Options options;
  options.max_workers = 1;
  options.admin_poll = 500ms;
  options.event_wakeup = event_wakeup;
  // A 50ms backoff ceiling makes un-doorbelled wakeups rare inside the
  // 10ms submit gaps: without the doorbell each request would wait out
  // most of a sleep; with it the parked worker wakes immediately.
  options.worker_idle_sleep = 50000us;
  core::Runtime runtime(std::move(options), devices);
  auto stack = runtime.MountStack(DummyStack("ctl::/bell", "dummy_bell"),
                                  ipc::Credentials{1, 0, 0});
  EXPECT_TRUE(stack.ok());
  EXPECT_TRUE(runtime.Start().ok());

  core::Client client(runtime, ipc::Credentials{88, 1000, 1000});
  EXPECT_TRUE(client.Connect().ok());
  auto req = client.NewRequest();
  EXPECT_TRUE(req.ok());
  for (int i = 0; i < submits; ++i) {
    std::this_thread::sleep_for(10ms);  // let the worker park
    (*req)->Reuse();
    (*req)->op = ipc::OpCode::kDummy;
    EXPECT_TRUE(client.Execute(**req, **stack).ok()) << "submit " << i;
  }

  DoorbellRun run;
  run.rings = runtime.doorbell_rings();
  run.wakeups = runtime.doorbell_wakeups();
  run.sleeps = runtime.idle_sleeps();
  EXPECT_TRUE(runtime.Stop().ok());
  return run;
}

TEST(DoorbellTest, ParkedWorkersWakeOnSubmit) {
  const DoorbellRun run = RunDoorbellWorkload(/*event_wakeup=*/true, 20);
  EXPECT_GE(run.rings, 20u) << "every successful submit rings";
  EXPECT_GT(run.sleeps, 0u) << "the worker must have parked at all";
  EXPECT_GE(run.wakeups, 1u)
      << "no parked worker ever woke to a doorbell; submits waited out "
         "the full idle backoff instead";
}

TEST(DoorbellTest, PollingModeCountsRingsButNeverParksOnThem) {
  const DoorbellRun run = RunDoorbellWorkload(/*event_wakeup=*/false, 5);
  EXPECT_GE(run.rings, 5u) << "rings are counted even when unused";
  EXPECT_EQ(run.wakeups, 0u)
      << "without event_wakeup the doorbell must not wake anyone";
}

}  // namespace
}  // namespace labstor

int main(int argc, char** argv) {
  labstor::dst::InitSeeds(&argc, argv);
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
