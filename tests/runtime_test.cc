// Runtime integration: async stacks through real worker threads, live
// upgrades with the centralized protocol, crash/restart recovery, and
// the KVS path.
#include "core/runtime.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "core/client.h"
#include "labmods/dummy.h"
#include "labmods/genericfs.h"
#include "labmods/generickvs.h"
#include "labmods/labfs.h"
#include "labmods/labkvs.h"
#include "simdev/registry.h"

namespace labstor::core {
namespace {

using namespace std::chrono_literals;

class RuntimeTest : public ::testing::Test {
 protected:
  RuntimeTest() : devices_(nullptr), runtime_(MakeOptions(), devices_) {
    auto dev = devices_.Create(simdev::DeviceParams::NvmeP3700(64 << 20));
    EXPECT_TRUE(dev.ok());
  }

  ~RuntimeTest() override {
    if (runtime_.running()) (void)runtime_.Stop();
  }

  static Runtime::Options MakeOptions() {
    Runtime::Options options;
    options.max_workers = 2;
    options.admin_poll = 2ms;
    options.worker_idle_sleep = std::chrono::microseconds(50);
    return options;
  }

  Stack* MountAsyncFsStack() {
    auto spec = StackSpec::Parse(
        "mount: fs::/rt\n"
        "rules:\n"
        "  exec_mode: async\n"
        "dag:\n"
        "  - mod: labfs\n"
        "    uuid: labfs_rt\n"
        "    params:\n"
        "      log_records_per_worker: 2048\n"
        "    outputs: [drv_rt]\n"
        "  - mod: kernel_driver\n"
        "    uuid: drv_rt\n");
    EXPECT_TRUE(spec.ok());
    auto stack = runtime_.MountStack(*spec, ipc::Credentials{1, 0, 0});
    EXPECT_TRUE(stack.ok()) << stack.status().ToString();
    return *stack;
  }

  simdev::DeviceRegistry devices_;
  Runtime runtime_;
};

TEST_F(RuntimeTest, StartStopLifecycle) {
  EXPECT_FALSE(runtime_.running());
  ASSERT_TRUE(runtime_.Start().ok());
  EXPECT_TRUE(runtime_.running());
  EXPECT_EQ(runtime_.Start().code(), StatusCode::kFailedPrecondition);
  ASSERT_TRUE(runtime_.Stop().ok());
  EXPECT_FALSE(runtime_.running());
  EXPECT_EQ(runtime_.Stop().code(), StatusCode::kFailedPrecondition);
}

TEST_F(RuntimeTest, AsyncFileIoThroughWorkers) {
  MountAsyncFsStack();
  ASSERT_TRUE(runtime_.Start().ok());
  Client client(runtime_, ipc::Credentials{100, 1000, 1000});
  ASSERT_TRUE(client.Connect().ok());
  labmods::GenericFs fs(client);

  auto fd = fs.Create("fs::/rt/via_worker");
  ASSERT_TRUE(fd.ok()) << fd.status().ToString();
  std::vector<uint8_t> data(4096, 0x42);
  auto written = fs.Write(*fd, data, 0);
  ASSERT_TRUE(written.ok());
  EXPECT_EQ(*written, 4096u);
  std::vector<uint8_t> out(4096, 0);
  auto read = fs.Read(*fd, out, 0);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(out, data);
  EXPECT_GT(runtime_.requests_processed(), 0u);
}

TEST_F(RuntimeTest, ManyClientsConcurrently) {
  MountAsyncFsStack();
  ASSERT_TRUE(runtime_.Start().ok());
  constexpr int kClients = 4;
  constexpr int kFilesEach = 25;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      Client client(runtime_,
                    ipc::Credentials{static_cast<uint32_t>(200 + c), 1000, 1000});
      if (!client.Connect().ok()) {
        ++failures;
        return;
      }
      labmods::GenericFs fs(client);
      for (int i = 0; i < kFilesEach; ++i) {
        const std::string path =
            "fs::/rt/c" + std::to_string(c) + "_f" + std::to_string(i);
        auto fd = fs.Create(path);
        if (!fd.ok()) {
          ++failures;
          continue;
        }
        std::vector<uint8_t> data(512, static_cast<uint8_t>(c * 16 + i));
        if (!fs.Write(*fd, data, 0).ok()) ++failures;
        std::vector<uint8_t> out(512);
        auto read = fs.Read(*fd, out, 0);
        if (!read.ok() || out != data) ++failures;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);

  auto mod = runtime_.registry().Find("labfs_rt");
  ASSERT_TRUE(mod.ok());
  EXPECT_EQ(dynamic_cast<labmods::LabFsMod*>(*mod)->file_count(),
            static_cast<size_t>(kClients * kFilesEach));
}

TEST_F(RuntimeTest, KvsPutGetDeleteThroughWorkers) {
  auto spec = StackSpec::Parse(
      "mount: kvs::/store\n"
      "dag:\n"
      "  - mod: labkvs\n"
      "    uuid: labkvs_rt\n"
      "    params:\n"
      "      log_records_per_worker: 2048\n"
      "    outputs: [drv_kvs_rt]\n"
      "  - mod: kernel_driver\n"
      "    uuid: drv_kvs_rt\n");
  ASSERT_TRUE(spec.ok());
  ASSERT_TRUE(runtime_.MountStack(*spec, ipc::Credentials{1, 0, 0}).ok());
  ASSERT_TRUE(runtime_.Start().ok());

  Client client(runtime_, ipc::Credentials{100, 1000, 1000});
  ASSERT_TRUE(client.Connect().ok());
  labmods::GenericKvs kvs(client);

  std::vector<uint8_t> value(8192);
  for (size_t i = 0; i < value.size(); ++i) value[i] = static_cast<uint8_t>(i * 3);
  ASSERT_TRUE(kvs.Put("kvs::/store/alpha", value).ok());
  auto exists = kvs.Exists("kvs::/store/alpha");
  ASSERT_TRUE(exists.ok());
  EXPECT_TRUE(*exists);

  std::vector<uint8_t> out(8192);
  auto got = kvs.Get("kvs::/store/alpha", out);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, value.size());
  EXPECT_EQ(out, value);

  // Overwrite with a smaller value.
  std::vector<uint8_t> small(100, 0xEE);
  ASSERT_TRUE(kvs.Put("kvs::/store/alpha", small).ok());
  auto got2 = kvs.Get("kvs::/store/alpha", out);
  ASSERT_TRUE(got2.ok());
  EXPECT_EQ(*got2, 100u);

  ASSERT_TRUE(kvs.Delete("kvs::/store/alpha").ok());
  auto gone = kvs.Exists("kvs::/store/alpha");
  ASSERT_TRUE(gone.ok());
  EXPECT_FALSE(*gone);
  EXPECT_EQ(kvs.Get("kvs::/store/alpha", out).status().code(),
            StatusCode::kNotFound);
}

TEST_F(RuntimeTest, LiveUpgradeWhileTrafficFlows) {
  // Dummy stack, async: messages flow through a worker while the admin
  // swaps the mod underneath (Table I's scenario).
  auto spec = StackSpec::Parse(
      "mount: ctl::/dummy\n"
      "dag:\n"
      "  - mod: dummy\n"
      "    uuid: dummy_rt\n"
      "    version: 1\n");
  ASSERT_TRUE(spec.ok());
  auto stack = runtime_.MountStack(*spec, ipc::Credentials{1, 0, 0});
  ASSERT_TRUE(stack.ok());
  ASSERT_TRUE(runtime_.Start().ok());

  Client client(runtime_, ipc::Credentials{100, 1000, 1000});
  ASSERT_TRUE(client.Connect().ok());

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> sent{0};
  std::atomic<int> errors{0};
  std::thread app([&] {
    while (!stop.load()) {
      auto req = client.NewRequest();
      if (!req.ok()) break;  // segment exhausted: stop sending
      (*req)->op = ipc::OpCode::kDummy;
      const Status st = client.Execute(**req, **stack);
      if (!st.ok() || !(*req)->ToStatus().ok()) {
        ++errors;
      } else {
        ++sent;
      }
    }
  });

  // Let traffic flow, then upgrade v1 -> v2 live.
  while (sent.load() < 100) std::this_thread::yield();
  runtime_.SubmitUpgrade(UpgradeRequest{"dummy", 2, UpgradeKind::kCentralized,
                                        1 << 20});
  // Wait for the admin thread to apply it.
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (runtime_.module_manager().upgrades_applied() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(1ms);
  }
  EXPECT_EQ(runtime_.module_manager().upgrades_applied(), 1u);
  const uint64_t sent_at_upgrade = sent.load();
  // Traffic continues after the upgrade.
  while (sent.load() < sent_at_upgrade + 100) std::this_thread::yield();
  stop.store(true);
  app.join();
  EXPECT_EQ(errors.load(), 0);

  auto mod = runtime_.registry().Find("dummy_rt");
  ASSERT_TRUE(mod.ok());
  EXPECT_EQ((*mod)->version(), 2u);
  // Message counter survived the upgrade (StateUpdate) and kept
  // counting: total messages == total successful sends.
  EXPECT_EQ(dynamic_cast<labmods::DummyMod*>(*mod)->messages(), sent.load());
}

TEST_F(RuntimeTest, CrashAndRestartRecovers) {
  MountAsyncFsStack();
  ASSERT_TRUE(runtime_.Start().ok());
  Client client(runtime_, ipc::Credentials{100, 1000, 1000});
  ASSERT_TRUE(client.Connect().ok());
  labmods::GenericFs fs(client);
  auto fd = fs.Create("fs::/rt/pre_crash");
  ASSERT_TRUE(fd.ok());
  std::vector<uint8_t> data(4096, 0x5A);
  ASSERT_TRUE(fs.Write(*fd, data, 0).ok());

  const uint64_t epoch_before = runtime_.ipc().epoch();
  runtime_.CrashForTesting();
  EXPECT_FALSE(runtime_.ipc().online());

  // A waiter during the outage sees recovery once the admin restarts.
  std::thread admin([&] {
    std::this_thread::sleep_for(50ms);
    ASSERT_TRUE(runtime_.Restart().ok());
  });
  // This request is submitted while offline-bound; Execute backs off
  // in Submit until queues drain post-restart.
  std::vector<uint8_t> out(4096, 0);
  auto read = fs.Read(*fd, out, 0);
  admin.join();
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(out, data);
  EXPECT_EQ(runtime_.ipc().epoch(), epoch_before + 1);
  // File state survived (and StateRepair replayed the log).
  auto fd2 = fs.Open("fs::/rt/pre_crash", 0);
  EXPECT_TRUE(fd2.ok());
}

TEST_F(RuntimeTest, SyncStackWorksWithoutWorkers) {
  auto spec = StackSpec::Parse(
      "mount: fs::/sync\n"
      "rules:\n"
      "  exec_mode: sync\n"
      "dag:\n"
      "  - mod: labfs\n"
      "    uuid: labfs_sync\n"
      "    params:\n"
      "      log_records_per_worker: 512\n"
      "    outputs: [drv_sync]\n"
      "  - mod: kernel_driver\n"
      "    uuid: drv_sync\n");
  ASSERT_TRUE(spec.ok());
  ASSERT_TRUE(runtime_.MountStack(*spec, ipc::Credentials{1, 0, 0}).ok());
  // Note: runtime NOT started — decentralized stacks bypass it.
  Client client(runtime_, ipc::Credentials{100, 1000, 1000});
  ASSERT_TRUE(client.Connect().ok());
  labmods::GenericFs fs(client);
  auto fd = fs.Create("fs::/sync/direct");
  ASSERT_TRUE(fd.ok());
  std::vector<uint8_t> data(100, 7);
  EXPECT_TRUE(fs.Write(*fd, data, 0).ok());
}

TEST_F(RuntimeTest, RebalanceAssignsAllQueues) {
  MountAsyncFsStack();
  ASSERT_TRUE(runtime_.Start().ok());
  // Connect several clients; their queues must all get workers.
  std::vector<std::unique_ptr<Client>> clients;
  for (uint32_t i = 0; i < 4; ++i) {
    clients.push_back(std::make_unique<Client>(
        runtime_, ipc::Credentials{300 + i, 1000, 1000}));
    ASSERT_TRUE(clients.back()->Connect().ok());
  }
  // Give the admin a moment to rebalance, then verify all clients can
  // do I/O (i.e. every queue is drained by someone).
  std::this_thread::sleep_for(50ms);
  for (uint32_t i = 0; i < 4; ++i) {
    labmods::GenericFs fs(*clients[i]);
    auto fd = fs.Create("fs::/rt/rebalance_" + std::to_string(i));
    EXPECT_TRUE(fd.ok()) << fd.status().ToString();
  }
  EXPECT_GE(runtime_.active_workers(), 1u);
}

}  // namespace
}  // namespace labstor::core
