// Stack fusion (DESIGN.md §11): eligibility rules, execution
// equivalence against the general DAG walk, live-upgrade safety
// (re-fuse under quiesce), and the inline-execution quiesce gate.
//
// Suites are named Fusion* so the TSan CI job's name filter picks up
// both the single-threaded rule tests and the gate interleaving test.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>

#include "core/client.h"
#include "core/module_registry.h"
#include "core/runtime.h"
#include "core/stack.h"
#include "core/stack_exec.h"
#include "labmods/dummy.h"
#include "simdev/registry.h"

namespace labstor::core {
namespace {

using namespace std::chrono_literals;

// A sync-ineligible mod: stands in for io_uring-style engines whose
// Process hands work to an external completion context.
class NoSyncMod final : public LabMod {
 public:
  NoSyncMod() : LabMod("fuse_nosync", ModType::kDummy, 1) {}
  Status Process(ipc::Request& req, StackExec& exec) override {
    if (exec.HasDownstream()) return exec.Forward(req);
    return Status::Ok();
  }
  bool SyncCapable() const override { return false; }
};

LABSTOR_REGISTER_LABMOD("fuse_nosync", 1, NoSyncMod);

constexpr const char* kSyncChainYaml =
    "mount: fs::/fuse\n"
    "rules:\n"
    "  exec_mode: sync\n"
    "dag:\n"
    "  - mod: permissions\n"
    "    uuid: fz_perm\n"
    "    outputs: [fz_fs]\n"
    "  - mod: labfs\n"
    "    uuid: fz_fs\n"
    "    outputs: [fz_lru]\n"
    "  - mod: lru_cache\n"
    "    uuid: fz_lru\n"
    "    outputs: [fz_sched]\n"
    "  - mod: noop_sched\n"
    "    uuid: fz_sched\n"
    "    outputs: [fz_drv]\n"
    "  - mod: kernel_driver\n"
    "    uuid: fz_drv\n";

class FusionTest : public ::testing::Test {
 protected:
  FusionTest() {
    auto dev = devices_.Create(simdev::DeviceParams::NvmeP3700(256 << 20));
    EXPECT_TRUE(dev.ok());
    ctx_.devices = &devices_;
    ctx_.num_workers = 2;
  }

  Stack* MountYaml(StackNamespace& ns, const std::string& yaml) {
    auto spec = StackSpec::Parse(yaml);
    EXPECT_TRUE(spec.ok()) << spec.status().ToString();
    auto stack = ns.Mount(*spec, registry_, ctx_, alice_);
    EXPECT_TRUE(stack.ok()) << stack.status().ToString();
    return *stack;
  }

  simdev::DeviceRegistry devices_;
  ModuleRegistry registry_;
  ModContext ctx_;
  StackNamespace ns_;
  ipc::Credentials alice_{100, 1000, 1000};
};

TEST_F(FusionTest, SyncLinearChainFuses) {
  Stack* stack = MountYaml(ns_, kSyncChainYaml);
  ASSERT_TRUE(stack->is_fused());
  ASSERT_EQ(stack->fused.size(), stack->vertices.size());
  // The chain visits every vertex in DAG order from the root.
  for (size_t i = 0; i < stack->fused.size(); ++i) {
    const Stack::FusedEntry& entry = stack->fused[i];
    EXPECT_EQ(entry.mod, stack->vertices[entry.vertex].mod);
  }
  EXPECT_EQ(stack->fused.front().vertex, stack->root);
  EXPECT_EQ(stack->fused.back().mod->mod_name(), "kernel_driver");
}

TEST_F(FusionTest, AsyncStackDoesNotFuse) {
  Stack* stack = MountYaml(
      ns_,
      "mount: ctl::/afuse\n"
      "rules:\n"
      "  exec_mode: async\n"
      "dag:\n"
      "  - mod: dummy\n"
      "    uuid: fz_async_a\n"
      "    outputs: [fz_async_b]\n"
      "  - mod: dummy\n"
      "    uuid: fz_async_b\n");
  EXPECT_FALSE(stack->is_fused());
}

TEST_F(FusionTest, BranchingDagDoesNotFuse) {
  Stack* stack = MountYaml(
      ns_,
      "mount: ctl::/branch\n"
      "rules:\n"
      "  exec_mode: sync\n"
      "dag:\n"
      "  - mod: dummy\n"
      "    uuid: fz_br_root\n"
      "    outputs: [fz_br_l, fz_br_r]\n"
      "  - mod: dummy\n"
      "    uuid: fz_br_l\n"
      "  - mod: dummy\n"
      "    uuid: fz_br_r\n");
  EXPECT_FALSE(stack->is_fused());
}

TEST_F(FusionTest, NonSyncCapableModBlocksFusion) {
  Stack* stack = MountYaml(
      ns_,
      "mount: ctl::/nosync\n"
      "rules:\n"
      "  exec_mode: sync\n"
      "dag:\n"
      "  - mod: dummy\n"
      "    uuid: fz_ns_a\n"
      "    outputs: [fz_ns_b]\n"
      "  - mod: fuse_nosync\n"
      "    uuid: fz_ns_b\n");
  EXPECT_FALSE(stack->is_fused());
}

TEST_F(FusionTest, NamespaceOptionDisablesFusion) {
  StackNamespace off(StackNamespace::Options{.enable_fusion = false});
  Stack* stack = MountYaml(off, kSyncChainYaml);
  EXPECT_FALSE(stack->is_fused());
  EXPECT_FALSE(off.fusion_enabled());
}

TEST_F(FusionTest, ToggleRefusesAndBumpsEpoch) {
  Stack* stack = MountYaml(ns_, kSyncChainYaml);
  ASSERT_TRUE(stack->is_fused());
  const uint64_t epoch0 = ns_.epoch();
  ns_.set_enable_fusion(false);
  EXPECT_FALSE(stack->is_fused());
  EXPECT_GT(ns_.epoch(), epoch0);
  const uint64_t epoch1 = ns_.epoch();
  ns_.set_enable_fusion(true);
  EXPECT_TRUE(stack->is_fused());
  EXPECT_GT(ns_.epoch(), epoch1);
  // Toggling to the current state is a no-op (no epoch churn).
  const uint64_t epoch2 = ns_.epoch();
  ns_.set_enable_fusion(true);
  EXPECT_EQ(ns_.epoch(), epoch2);
}

TEST_F(FusionTest, FusedExecutionMatchesUnfused) {
  // Same 4-layer FS chain mounted under fusion-on and fusion-off
  // namespaces (separate registries so instances don't collide):
  // create + write + read back must produce identical results and
  // identical time ledgers.
  const auto run = [this](bool fused, std::string* ledger) -> uint64_t {
    StackNamespace ns(StackNamespace::Options{.enable_fusion = fused});
    ModuleRegistry registry;
    Stack* stack = nullptr;
    {
      auto spec = StackSpec::Parse(kSyncChainYaml);
      EXPECT_TRUE(spec.ok());
      auto mounted = ns.Mount(*spec, registry, ctx_, alice_);
      EXPECT_TRUE(mounted.ok()) << mounted.status().ToString();
      stack = *mounted;
    }
    EXPECT_EQ(stack->is_fused(), fused);
    std::vector<uint8_t> data(4096);
    for (size_t i = 0; i < data.size(); ++i) {
      data[i] = static_cast<uint8_t>(i * 13);
    }
    uint64_t total = 0;
    const auto exec_one = [&](ipc::Request& req) {
      ExecTrace trace;
      StackExec exec(*stack, ctx_, trace);
      const Status st = exec.Dispatch(req);
      EXPECT_TRUE(st.ok()) << st.ToString();
      *ledger += std::to_string(trace.TotalSoftware());
      *ledger += ':';
      *ledger += std::to_string(trace.device_ops().size());
      *ledger += ';';
      total += req.result_u64;
    };
    ipc::Request create;
    create.op = ipc::OpCode::kCreate;
    create.SetPath("fs::/fuse/f");
    exec_one(create);
    ipc::Request write;
    write.op = ipc::OpCode::kWrite;
    write.SetPath("fs::/fuse/f");
    write.data = data.data();
    write.length = data.size();
    exec_one(write);
    std::vector<uint8_t> out(data.size(), 0);
    ipc::Request read;
    read.op = ipc::OpCode::kRead;
    read.SetPath("fs::/fuse/f");
    read.data = out.data();
    read.length = out.size();
    exec_one(read);
    EXPECT_EQ(out, data);
    return total;
  };
  std::string fused_ledger, unfused_ledger;
  const uint64_t fused_total = run(true, &fused_ledger);
  const uint64_t unfused_total = run(false, &unfused_ledger);
  EXPECT_EQ(fused_total, unfused_total);
  EXPECT_EQ(fused_ledger, unfused_ledger);
}

// ---------------------------------------------------------------------------
// Live-upgrade safety: re-fuse under quiesce + the inline-exec gate.
// ---------------------------------------------------------------------------

class FusionUpgradeTest : public ::testing::Test {
 protected:
  FusionUpgradeTest() : devices_(nullptr), runtime_(MakeOptions(), devices_) {
    auto dev = devices_.Create(simdev::DeviceParams::NvmeP3700(64 << 20));
    EXPECT_TRUE(dev.ok());
  }

  static Runtime::Options MakeOptions() {
    Runtime::Options options;
    options.max_workers = 1;
    return options;
  }

  Stack* MountSyncDummyChain() {
    auto spec = StackSpec::Parse(
        "mount: ctl::/fup\n"
        "rules:\n"
        "  exec_mode: sync\n"
        "dag:\n"
        "  - mod: dummy\n"
        "    uuid: fup_a\n"
        "    version: 1\n"
        "    outputs: [fup_b]\n"
        "  - mod: dummy\n"
        "    uuid: fup_b\n"
        "    version: 1\n");
    EXPECT_TRUE(spec.ok());
    auto stack = runtime_.MountStack(*spec, ipc::Credentials{1, 0, 0});
    EXPECT_TRUE(stack.ok()) << stack.status().ToString();
    return *stack;
  }

  simdev::DeviceRegistry devices_;
  Runtime runtime_;
};

TEST_F(FusionUpgradeTest, UpgradeRefusesChainAgainstNewInstances) {
  Stack* stack = MountSyncDummyChain();
  ASSERT_TRUE(stack->is_fused());

  ipc::Request req;
  req.op = ipc::OpCode::kDummy;
  req.stack_id = stack->id;
  ASSERT_TRUE(runtime_.Execute(req).ok());

  UpgradeRequest upgrade;
  upgrade.mod_name = "dummy";
  upgrade.new_version = 2;
  runtime_.SubmitUpgrade(upgrade);
  ASSERT_TRUE(runtime_.StepAdmin().ok());

  // The fused chain must point at the v2 instances the swap installed,
  // never at the retired v1 objects.
  ASSERT_TRUE(stack->is_fused());
  for (const Stack::FusedEntry& entry : stack->fused) {
    const Stack::Vertex& vertex = stack->vertices[entry.vertex];
    EXPECT_EQ(entry.mod, vertex.mod);
    auto live = runtime_.registry().Find(vertex.uuid);
    ASSERT_TRUE(live.ok());
    EXPECT_EQ(entry.mod, *live);
    EXPECT_EQ(entry.mod->version(), 2u);
  }
  // And it still executes: StateUpdate carried the message counters.
  req.Reuse();
  req.op = ipc::OpCode::kDummy;
  req.stack_id = stack->id;
  ASSERT_TRUE(runtime_.Execute(req).ok());
  EXPECT_EQ(req.result_u64, 2u);  // second message through fup_b
}

TEST_F(FusionUpgradeTest, InlineExecIsHeldAtTheQuiesceGate) {
  // Regression for the validation-to-execution window: a sync client
  // thread that enters Execute *while* the centralized upgrade has
  // quiesced the runtime must be held at the gate until the swap and
  // re-fuse complete — not run a stale fused chain mid-replacement.
  Stack* stack = MountSyncDummyChain();
  ASSERT_TRUE(stack->is_fused());

  std::atomic<bool> quiesced{false};
  std::atomic<bool> gate_seen{false};
  std::atomic<bool> exec_done{false};
  const uint64_t paused0 = runtime_.inline_execs_paused();

  runtime_.module_manager().SetPhaseHook([&](std::string_view phase) {
    if (phase != "centralized.quiesced") return;
    // Release the client thread, then require it to hit the gate
    // (inline_execs_paused increments) before the swap proceeds. If
    // the gate were missing, the client would execute to completion
    // here instead — the pre-fix interleaving.
    quiesced.store(true, std::memory_order_release);
    const auto deadline = std::chrono::steady_clock::now() + 5s;
    while (runtime_.inline_execs_paused() == paused0) {
      if (exec_done.load(std::memory_order_acquire)) {
        ADD_FAILURE() << "inline Execute completed during quiesce";
        return;
      }
      if (std::chrono::steady_clock::now() > deadline) {
        ADD_FAILURE() << "client never reached the quiesce gate";
        return;
      }
      std::this_thread::yield();
    }
    gate_seen.store(true, std::memory_order_release);
  });

  std::thread client([&] {
    while (!quiesced.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
    ipc::Request req;
    req.op = ipc::OpCode::kDummy;
    req.stack_id = stack->id;
    const Status st = runtime_.Execute(req);
    EXPECT_TRUE(st.ok()) << st.ToString();
    exec_done.store(true, std::memory_order_release);
  });

  UpgradeRequest upgrade;
  upgrade.mod_name = "dummy";
  upgrade.new_version = 2;
  runtime_.SubmitUpgrade(upgrade);
  ASSERT_TRUE(runtime_.StepAdmin().ok());
  client.join();
  runtime_.module_manager().SetPhaseHook(nullptr);

  EXPECT_TRUE(gate_seen.load());
  EXPECT_TRUE(exec_done.load());
  EXPECT_GT(runtime_.inline_execs_paused(), paused0);
  // The held request ran against the post-upgrade chain.
  ASSERT_TRUE(stack->is_fused());
  for (const Stack::FusedEntry& entry : stack->fused) {
    EXPECT_EQ(entry.mod->version(), 2u);
  }
}

}  // namespace
}  // namespace labstor::core
