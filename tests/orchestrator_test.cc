#include "core/orchestrator.h"

#include <gtest/gtest.h>

#include <limits>
#include <numeric>

namespace labstor::core {
namespace {

std::vector<QueueLoad> MakeUniform(size_t n, sim::Time est, uint64_t backlog) {
  std::vector<QueueLoad> queues;
  for (size_t i = 0; i < n; ++i) {
    queues.push_back(QueueLoad{static_cast<uint32_t>(i + 1), est, backlog});
  }
  return queues;
}

size_t TotalAssigned(const Assignment& a) {
  size_t total = 0;
  for (const auto& queues : a.worker_queues) total += queues.size();
  return total;
}

TEST(PackLptTest, BalancesUniformLoads) {
  const auto queues = MakeUniform(8, 1000, 1);
  const PackResult pack = PackLpt(queues, 4);
  ASSERT_EQ(pack.bins.size(), 4u);
  for (const auto& bin : pack.bins) EXPECT_EQ(bin.size(), 2u);
  EXPECT_EQ(pack.makespan, 2000u);
}

TEST(PackLptTest, HeavyQueueIsolated) {
  std::vector<QueueLoad> queues = MakeUniform(4, 1000, 1);
  queues.push_back(QueueLoad{99, 1'000'000, 1});
  const PackResult pack = PackLpt(queues, 2);
  // The heavy queue lands alone-ish: makespan ~= heavy weight.
  EXPECT_EQ(pack.makespan, 1'000'000u);
}

TEST(PackLptTest, ZeroWorkers) {
  const PackResult pack = PackLpt(MakeUniform(3, 10, 1), 0);
  EXPECT_TRUE(pack.bins.empty());
}

TEST(RoundRobinTest, SpreadsAcrossAllWorkers) {
  RoundRobinOrchestrator rr;
  const Assignment a = rr.Rebalance(MakeUniform(10, 1000, 1), 4);
  ASSERT_EQ(a.num_workers(), 4u);
  EXPECT_EQ(TotalAssigned(a), 10u);
  // 10 queues over 4 workers: sizes 3,3,2,2.
  EXPECT_EQ(a.worker_queues[0].size(), 3u);
  EXPECT_EQ(a.worker_queues[3].size(), 2u);
  for (const bool dedicated : a.latency_dedicated) EXPECT_FALSE(dedicated);
}

TEST(RoundRobinTest, IgnoresLoad) {
  RoundRobinOrchestrator rr;
  std::vector<QueueLoad> queues = MakeUniform(4, 1000, 1);
  queues[0].est_processing_ns = 1'000'000'000;  // one enormous queue
  const Assignment a = rr.Rebalance(queues, 2);
  // Still 2-2 by order, load notwithstanding.
  EXPECT_EQ(a.worker_queues[0].size(), 2u);
  EXPECT_EQ(a.worker_queues[1].size(), 2u);
}

TEST(FixedTest, UsesExactlyConfiguredWorkers) {
  FixedOrchestrator fixed(1);
  const Assignment a = fixed.Rebalance(MakeUniform(6, 1000, 1), 8);
  ASSERT_EQ(a.num_workers(), 1u);
  EXPECT_EQ(a.worker_queues[0].size(), 6u);
}

TEST(DynamicTest, LightLoadUsesFewWorkers) {
  DynamicOrchestrator dynamic;
  // 2 idle-ish latency queues: one worker suffices within threshold.
  const Assignment a = dynamic.Rebalance(MakeUniform(2, 3000, 1), 8);
  EXPECT_EQ(TotalAssigned(a), 2u);
  EXPECT_LE(a.num_workers(), 2u);
}

TEST(DynamicTest, HeavyLoadScalesUp) {
  DynamicOrchestrator dynamic;
  // 8 queues with deep backlogs need parallel draining.
  const Assignment a = dynamic.Rebalance(MakeUniform(8, 50'000, 1000), 8);
  EXPECT_GT(a.num_workers(), 4u);
  EXPECT_EQ(TotalAssigned(a), 8u);
}

TEST(DynamicTest, SeparatesLatencyFromComputeQueues) {
  DynamicOrchestrator dynamic;
  std::vector<QueueLoad> queues;
  // 4 latency queues (3µs) and 4 compute queues (20ms).
  for (uint32_t i = 1; i <= 4; ++i) {
    queues.push_back(QueueLoad{i, 3 * sim::kUs, 10});
  }
  for (uint32_t i = 5; i <= 8; ++i) {
    queues.push_back(QueueLoad{i, 20 * sim::kMs, 10});
  }
  const Assignment a = dynamic.Rebalance(queues, 8);
  // No worker may hold both an LQ and a CQ.
  for (size_t w = 0; w < a.num_workers(); ++w) {
    bool has_lq = false, has_cq = false;
    for (const uint32_t qid : a.worker_queues[w]) {
      (qid <= 4 ? has_lq : has_cq) = true;
    }
    EXPECT_FALSE(has_lq && has_cq) << "worker " << w << " mixes classes";
    if (has_lq) EXPECT_TRUE(a.latency_dedicated[w]);
    if (has_cq) EXPECT_FALSE(a.latency_dedicated[w]);
  }
  EXPECT_EQ(TotalAssigned(a), 8u);
}

TEST(DynamicTest, AllQueuesAssignedEvenWhenBudgetTight) {
  DynamicOrchestrator dynamic;
  std::vector<QueueLoad> queues;
  for (uint32_t i = 1; i <= 6; ++i) {
    queues.push_back(QueueLoad{i, 3 * sim::kUs, 1});
  }
  for (uint32_t i = 7; i <= 12; ++i) {
    queues.push_back(QueueLoad{i, 20 * sim::kMs, 100});
  }
  const Assignment a = dynamic.Rebalance(queues, 2);
  EXPECT_EQ(TotalAssigned(a), 12u);
  EXPECT_LE(a.num_workers(), 4u);
}

TEST(DynamicTest, EmptyInputs) {
  DynamicOrchestrator dynamic;
  EXPECT_EQ(dynamic.Rebalance({}, 4).num_workers(), 0u);
  EXPECT_EQ(dynamic.Rebalance(MakeUniform(3, 10, 1), 0).num_workers(), 0u);
}

TEST(DynamicTest, DegenerateEpochBudgetFallsBackToDefaults) {
  // Regression: a zero epoch budget made the capacity floor
  // total_work / 0 = inf, whose size_t cast is undefined — observed as
  // either "commission every worker" (the consolidation loop skipped
  // entirely) or a zero-worker demand. Sanitize must restore the
  // default budget so light queues still consolidate.
  DynamicOrchestrator::Options opts;
  opts.epoch_budget_ns = 0;
  DynamicOrchestrator dynamic(opts);
  const auto queues = MakeUniform(8, 1000, 1);
  const Assignment a = dynamic.Rebalance(queues, 8);
  EXPECT_EQ(TotalAssigned(a), 8u);
  // 8us of total work fits one worker's epoch with room to spare.
  EXPECT_EQ(a.num_workers(), 1u);
}

TEST(DynamicTest, DegenerateUtilizationFallsBackToDefaults) {
  for (const double utilization :
       {0.0, -1.0, 7.5, std::numeric_limits<double>::quiet_NaN()}) {
    DynamicOrchestrator::Options opts;
    opts.target_utilization = utilization;
    DynamicOrchestrator dynamic(opts);
    const auto queues = MakeUniform(8, 1000, 1);
    const Assignment a = dynamic.Rebalance(queues, 8);
    EXPECT_EQ(TotalAssigned(a), 8u) << "utilization=" << utilization;
    EXPECT_EQ(a.num_workers(), 1u) << "utilization=" << utilization;
  }
}

TEST(DynamicTest, CapacityFloorNeverOvershootsBudget) {
  // Enormous sustained work: the floor wants thousands of workers but
  // must clamp to the budget, and every queue stays assigned.
  DynamicOrchestrator dynamic;
  std::vector<QueueLoad> queues;
  for (uint32_t i = 1; i <= 64; ++i) {
    queues.push_back(QueueLoad{i, 50 * sim::kMs, 1000});
  }
  const Assignment a = dynamic.Rebalance(queues, 16);
  EXPECT_EQ(TotalAssigned(a), 64u);
  EXPECT_LE(a.num_workers(), 16u);
  EXPECT_GE(a.num_workers(), 15u);  // saturated: nearly all commissioned
}

TEST(ShardedTest, CoversAllQueuesWithinWorkerBudget) {
  ShardedOrchestrator sharded(8);
  EXPECT_EQ(sharded.shards(), 8u);
  const auto queues = MakeUniform(64, 1000, 1);
  const Assignment a = sharded.Rebalance(queues, 32);
  EXPECT_LE(a.num_workers(), 32u);
  std::vector<int> seen(65, 0);
  for (const auto& bin : a.worker_queues) {
    for (const uint32_t qid : bin) ++seen[qid];
  }
  for (uint32_t qid = 1; qid <= 64; ++qid) {
    EXPECT_EQ(seen[qid], 1) << "qid " << qid;
  }
}

TEST(ShardedTest, SingleShardMatchesInnerPolicy) {
  ShardedOrchestrator sharded(1);
  DynamicOrchestrator dynamic;
  const auto queues = MakeUniform(12, 5000, 2);
  const Assignment s = sharded.Rebalance(queues, 8);
  const Assignment d = dynamic.Rebalance(queues, 8);
  EXPECT_EQ(s.worker_queues, d.worker_queues);
  EXPECT_EQ(s.latency_dedicated, d.latency_dedicated);
}

TEST(ShardedTest, MoreShardsThanWorkersClamps) {
  ShardedOrchestrator sharded(16);
  const auto queues = MakeUniform(40, 1000, 1);
  const Assignment a = sharded.Rebalance(queues, 4);
  EXPECT_LE(a.num_workers(), 4u);
  EXPECT_EQ(TotalAssigned(a), 40u);
}

TEST(ShardedTest, HeavyAndLightMixKeepsDedicationPerShard) {
  ShardedOrchestrator sharded(4);
  std::vector<QueueLoad> queues;
  for (uint32_t i = 1; i <= 16; ++i) {
    queues.push_back(QueueLoad{i, 3 * sim::kUs, 1});       // LQs
  }
  for (uint32_t i = 17; i <= 24; ++i) {
    queues.push_back(QueueLoad{i, 20 * sim::kMs, 50});     // CQs
  }
  const Assignment a = sharded.Rebalance(queues, 16);
  EXPECT_EQ(TotalAssigned(a), 24u);
  EXPECT_LE(a.num_workers(), 16u);
  // At least one latency-dedicated worker survives the concatenation.
  bool any_dedicated = false;
  for (const bool d : a.latency_dedicated) any_dedicated |= d;
  EXPECT_TRUE(any_dedicated);
}

TEST(DynamicTest, FewerWorkersThanRoundRobinOnLightLoad) {
  // The Fig. 5(a) claim: dynamic matches performance with fewer cores.
  DynamicOrchestrator dynamic;
  RoundRobinOrchestrator rr;
  const auto queues = MakeUniform(4, 3000, 1);
  const Assignment d = dynamic.Rebalance(queues, 8);
  const Assignment r = rr.Rebalance(queues, 8);
  size_t d_active = 0, r_active = 0;
  for (const auto& q : d.worker_queues) d_active += q.empty() ? 0 : 1;
  for (const auto& q : r.worker_queues) r_active += q.empty() ? 0 : 1;
  EXPECT_LT(d_active, r_active);
}

}  // namespace
}  // namespace labstor::core
