#include "common/uuid.h"

#include <gtest/gtest.h>

#include <unordered_set>

namespace labstor {
namespace {

TEST(UuidTest, NilByDefault) {
  Uuid id;
  EXPECT_TRUE(id.IsNil());
}

TEST(UuidTest, RoundTripsThroughString) {
  const Uuid id = Uuid::FromRandom(0x0123456789ABCDEFULL, 0xFEDCBA9876543210ULL);
  const std::string text = id.ToString();
  EXPECT_EQ(text.size(), 36u);
  auto parsed = Uuid::Parse(text);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, id);
}

TEST(UuidTest, ParseRejectsBadInput) {
  EXPECT_FALSE(Uuid::Parse("").ok());
  EXPECT_FALSE(Uuid::Parse("not-a-uuid").ok());
  EXPECT_FALSE(Uuid::Parse("0123456789abcdef0123456789abcdef0123").ok());
  // Right length, wrong separator positions.
  EXPECT_FALSE(Uuid::Parse("012345678-9abc-def0-1234-56789abcdef0").ok());
  // Non-hex digit.
  EXPECT_FALSE(Uuid::Parse("zzzzzzzz-9abc-4ef0-9234-56789abcdef0").ok());
}

TEST(UuidTest, FromNameIsDeterministic) {
  EXPECT_EQ(Uuid::FromName("labfs"), Uuid::FromName("labfs"));
  EXPECT_FALSE(Uuid::FromName("labfs") == Uuid::FromName("labkvs"));
}

TEST(UuidTest, FromNameAvoidsObviousCollisions) {
  std::unordered_set<Uuid, UuidHash> seen;
  const char* names[] = {"labfs", "labkvs", "lru", "noop", "blk-switch",
                         "permissions", "compress", "spdk", "dax",
                         "kernel_driver", "genericfs", "generickvs",
                         "dummy", "consistency", "shmem"};
  for (const char* name : names) {
    EXPECT_TRUE(seen.insert(Uuid::FromName(name)).second) << name;
  }
}

TEST(UuidTest, VersionBitsSet) {
  const Uuid random = Uuid::FromRandom(~0ULL, ~0ULL);
  EXPECT_EQ((random.hi >> 12) & 0xF, 0x4u);
  const Uuid named = Uuid::FromName("x");
  EXPECT_EQ((named.hi >> 12) & 0xF, 0x5u);
}

TEST(UuidTest, HashSpreads) {
  UuidHash hash;
  std::unordered_set<size_t> hashes;
  for (int i = 0; i < 1000; ++i) {
    hashes.insert(hash(Uuid::FromName("mod-" + std::to_string(i))));
  }
  EXPECT_GT(hashes.size(), 990u);
}

}  // namespace
}  // namespace labstor
