#include "common/ring_buffer.h"

#include <gtest/gtest.h>

#include <numeric>
#include <thread>
#include <vector>

namespace labstor {
namespace {

TEST(SpscRingTest, PushPopSingleThread) {
  SpscRing<int> ring(8);
  EXPECT_EQ(ring.capacity(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(ring.TryPush(i));
  EXPECT_FALSE(ring.TryPush(99));  // full
  for (int i = 0; i < 8; ++i) {
    auto v = ring.TryPop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_FALSE(ring.TryPop().has_value());  // empty
}

TEST(SpscRingTest, WrapsAround) {
  SpscRing<int> ring(4);
  for (int round = 0; round < 100; ++round) {
    EXPECT_TRUE(ring.TryPush(round));
    auto v = ring.TryPop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, round);
  }
}

TEST(SpscRingTest, MoveOnlyPayload) {
  SpscRing<std::unique_ptr<int>> ring(4);
  EXPECT_TRUE(ring.TryPush(std::make_unique<int>(5)));
  auto v = ring.TryPop();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(**v, 5);
}

TEST(SpscRingTest, ConcurrentProducerConsumer) {
  SpscRing<uint64_t> ring(1024);
  constexpr uint64_t kCount = 200000;
  uint64_t sum = 0;
  std::thread consumer([&] {
    uint64_t received = 0;
    uint64_t expected = 0;
    while (received < kCount) {
      auto v = ring.TryPop();
      if (!v.has_value()) continue;
      ASSERT_EQ(*v, expected);  // FIFO order preserved
      ++expected;
      sum += *v;
      ++received;
    }
  });
  for (uint64_t i = 0; i < kCount; ++i) {
    while (!ring.TryPush(i)) {
    }
  }
  consumer.join();
  EXPECT_EQ(sum, kCount * (kCount - 1) / 2);
}

TEST(MpmcRingTest, PushPopSingleThread) {
  MpmcRing<int> ring(8);
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(ring.TryPush(i));
  EXPECT_FALSE(ring.TryPush(99));
  for (int i = 0; i < 8; ++i) {
    auto v = ring.TryPop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_FALSE(ring.TryPop().has_value());
}

TEST(MpmcRingTest, SizeApprox) {
  MpmcRing<int> ring(16);
  EXPECT_TRUE(ring.EmptyApprox());
  for (int i = 0; i < 5; ++i) ring.TryPush(i);
  EXPECT_EQ(ring.SizeApprox(), 5u);
  ring.TryPop();
  EXPECT_EQ(ring.SizeApprox(), 4u);
}

TEST(MpmcRingTest, ConcurrentProducersConsumers) {
  MpmcRing<uint64_t> ring(256);
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr uint64_t kPerProducer = 50000;
  std::atomic<uint64_t> total_popped{0};
  std::atomic<uint64_t> sum{0};

  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (uint64_t i = 0; i < kPerProducer; ++i) {
        const uint64_t value = static_cast<uint64_t>(p) * kPerProducer + i;
        while (!ring.TryPush(value)) {
        }
      }
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      while (total_popped.load() < kProducers * kPerProducer) {
        auto v = ring.TryPop();
        if (!v.has_value()) continue;
        sum.fetch_add(*v);
        total_popped.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();

  const uint64_t n = kProducers * kPerProducer;
  EXPECT_EQ(total_popped.load(), n);
  EXPECT_EQ(sum.load(), n * (n - 1) / 2);
}

}  // namespace
}  // namespace labstor
