#include "common/ring_buffer.h"

#include "common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <deque>
#include <numeric>
#include <thread>
#include <vector>

namespace labstor {
namespace {

TEST(SpscRingTest, PushPopSingleThread) {
  SpscRing<int> ring(8);
  EXPECT_EQ(ring.capacity(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(ring.TryPush(i));
  EXPECT_FALSE(ring.TryPush(99));  // full
  for (int i = 0; i < 8; ++i) {
    auto v = ring.TryPop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_FALSE(ring.TryPop().has_value());  // empty
}

TEST(SpscRingTest, WrapsAround) {
  SpscRing<int> ring(4);
  for (int round = 0; round < 100; ++round) {
    EXPECT_TRUE(ring.TryPush(round));
    auto v = ring.TryPop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, round);
  }
}

TEST(SpscRingTest, MoveOnlyPayload) {
  SpscRing<std::unique_ptr<int>> ring(4);
  EXPECT_TRUE(ring.TryPush(std::make_unique<int>(5)));
  auto v = ring.TryPop();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(**v, 5);
}

TEST(SpscRingTest, ConcurrentProducerConsumer) {
  SpscRing<uint64_t> ring(1024);
  constexpr uint64_t kCount = 200000;
  uint64_t sum = 0;
  std::thread consumer([&] {
    uint64_t received = 0;
    uint64_t expected = 0;
    while (received < kCount) {
      auto v = ring.TryPop();
      if (!v.has_value()) continue;
      ASSERT_EQ(*v, expected);  // FIFO order preserved
      ++expected;
      sum += *v;
      ++received;
    }
  });
  for (uint64_t i = 0; i < kCount; ++i) {
    while (!ring.TryPush(i)) {
    }
  }
  consumer.join();
  EXPECT_EQ(sum, kCount * (kCount - 1) / 2);
}

TEST(MpmcRingTest, PushPopSingleThread) {
  MpmcRing<int> ring(8);
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(ring.TryPush(i));
  EXPECT_FALSE(ring.TryPush(99));
  for (int i = 0; i < 8; ++i) {
    auto v = ring.TryPop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_FALSE(ring.TryPop().has_value());
}

TEST(MpmcRingTest, SizeApprox) {
  MpmcRing<int> ring(16);
  EXPECT_TRUE(ring.EmptyApprox());
  for (int i = 0; i < 5; ++i) ring.TryPush(i);
  EXPECT_EQ(ring.SizeApprox(), 5u);
  ring.TryPop();
  EXPECT_EQ(ring.SizeApprox(), 4u);
}

TEST(MpmcRingTest, ConcurrentProducersConsumers) {
  MpmcRing<uint64_t> ring(256);
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr uint64_t kPerProducer = 50000;
  std::atomic<uint64_t> total_popped{0};
  std::atomic<uint64_t> sum{0};

  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (uint64_t i = 0; i < kPerProducer; ++i) {
        const uint64_t value = static_cast<uint64_t>(p) * kPerProducer + i;
        while (!ring.TryPush(value)) {
        }
      }
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      while (total_popped.load() < kProducers * kPerProducer) {
        auto v = ring.TryPop();
        if (!v.has_value()) continue;
        sum.fetch_add(*v);
        total_popped.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();

  const uint64_t n = kProducers * kPerProducer;
  EXPECT_EQ(total_popped.load(), n);
  EXPECT_EQ(sum.load(), n * (n - 1) / 2);
}

// Wraparound stress on the smallest legal ring: a capacity-2 ring
// cycles its indices every two operations, so >2^16 ops exercise the
// cached-index and wrap paths continuously. A third thread hammers
// SizeApprox — the regression here is the head-before-tail load order
// that let a concurrent pop underflow the unsigned subtraction into a
// near-SIZE_MAX "size".
TEST(SpscRingTest, CapacityTwoWraparoundStressWithSizeSampler) {
  SpscRing<uint64_t> ring(2);
  constexpr uint64_t kOps = 1u << 17;
  std::atomic<bool> done{false};
  std::atomic<bool> size_sane{true};

  // If the sampler is descheduled between SizeApprox's two loads, many
  // ops can complete, so the size can legitimately exceed capacity —
  // but never the total op count. Underflow shows up as ~2^64.
  // Every spin loop yields: with capacity 2 the threads run in
  // lockstep, and on a single-core host a non-yielding spin burns a
  // full scheduler quantum per handoff.
  std::thread sampler([&] {
    while (!done.load(std::memory_order_acquire)) {
      const size_t size = ring.SizeApprox();
      if (size > kOps) {
        size_sane.store(false, std::memory_order_relaxed);
      }
      std::this_thread::yield();
    }
  });
  std::thread consumer([&] {
    uint64_t expected = 0;
    while (expected < kOps) {
      auto v = ring.TryPop();
      if (!v.has_value()) {
        std::this_thread::yield();
        continue;
      }
      ASSERT_EQ(*v, expected);  // FIFO survives every wrap
      ++expected;
    }
  });
  for (uint64_t i = 0; i < kOps; ++i) {
    while (!ring.TryPush(i)) {
      std::this_thread::yield();
    }
  }
  consumer.join();
  done.store(true, std::memory_order_release);
  sampler.join();
  EXPECT_TRUE(size_sane.load()) << "SizeApprox underflowed during pops";
  EXPECT_EQ(ring.SizeApprox(), 0u);
}

TEST(MpmcRingTest, CapacityTwoWraparoundStressWithSizeSampler) {
  MpmcRing<uint64_t> ring(2);
  constexpr int kProducers = 2;
  constexpr int kConsumers = 2;
  constexpr uint64_t kPerProducer = 1u << 16;
  constexpr uint64_t kTotal = kProducers * kPerProducer;
  std::atomic<uint64_t> popped{0};
  std::atomic<uint64_t> sum{0};
  std::atomic<bool> done{false};
  std::atomic<bool> size_sane{true};

  std::thread sampler([&] {
    while (!done.load(std::memory_order_acquire)) {
      if (ring.SizeApprox() > kTotal) {  // underflow reads as ~2^64
        size_sane.store(false, std::memory_order_relaxed);
      }
      std::this_thread::yield();
    }
  });
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (uint64_t i = 0; i < kPerProducer; ++i) {
        const uint64_t value = static_cast<uint64_t>(p) * kPerProducer + i;
        while (!ring.TryPush(value)) {
          std::this_thread::yield();
        }
      }
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      while (popped.load() < kTotal) {
        auto v = ring.TryPop();
        if (!v.has_value()) {
          std::this_thread::yield();
          continue;
        }
        sum.fetch_add(*v);
        popped.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  done.store(true, std::memory_order_release);
  sampler.join();
  EXPECT_TRUE(size_sane.load()) << "SizeApprox underflowed during pops";
  EXPECT_EQ(popped.load(), kTotal);
  EXPECT_EQ(sum.load(), kTotal * (kTotal - 1) / 2);
}

TEST(SpscRingTest, PopBatchDrainsFifoWithPartialRuns) {
  SpscRing<uint64_t> ring(8);
  for (uint64_t i = 0; i < 6; ++i) ASSERT_TRUE(ring.TryPush(i));
  uint64_t out[8] = {};
  ASSERT_EQ(ring.TryPopBatch(out, 4), 4u);
  for (uint64_t i = 0; i < 4; ++i) EXPECT_EQ(out[i], i);
  // Oversized ask returns only what is buffered.
  ASSERT_EQ(ring.TryPopBatch(out, 8), 2u);
  EXPECT_EQ(out[0], 4u);
  EXPECT_EQ(out[1], 5u);
  EXPECT_EQ(ring.TryPopBatch(out, 8), 0u);
}

TEST(SpscRingTest, PopBatchAcrossWrap) {
  SpscRing<uint64_t> ring(4);
  uint64_t out[4] = {};
  uint64_t next = 0;
  // Force the indices around the ring several times.
  for (int round = 0; round < 5; ++round) {
    ASSERT_TRUE(ring.TryPush(next));
    ASSERT_TRUE(ring.TryPush(next + 1));
    ASSERT_TRUE(ring.TryPush(next + 2));
    ASSERT_EQ(ring.TryPopBatch(out, 4), 3u);
    for (uint64_t i = 0; i < 3; ++i) EXPECT_EQ(out[i], next + i);
    next += 3;
  }
}

TEST(SpscRingTest, ConcurrentBatchConsumer) {
  SpscRing<uint64_t> ring(64);
  constexpr uint64_t kTotal = 200000;
  std::thread producer([&] {
    for (uint64_t i = 0; i < kTotal; ++i) {
      while (!ring.TryPush(i)) std::this_thread::yield();
    }
  });
  uint64_t expect = 0;
  uint64_t out[32];
  while (expect < kTotal) {
    const size_t n = ring.TryPopBatch(out, 32);
    if (n == 0) {
      std::this_thread::yield();
      continue;
    }
    for (size_t i = 0; i < n; ++i) {
      ASSERT_EQ(out[i], expect) << "batch pop broke FIFO order";
      ++expect;
    }
  }
  producer.join();
}

TEST(MpmcRingTest, PopBatchDrainsFifoWithPartialRuns) {
  MpmcRing<uint64_t> ring(8);
  for (uint64_t i = 0; i < 6; ++i) ASSERT_TRUE(ring.TryPush(i));
  uint64_t out[8] = {};
  ASSERT_EQ(ring.TryPopBatch(out, 4), 4u);
  for (uint64_t i = 0; i < 4; ++i) EXPECT_EQ(out[i], i);
  ASSERT_EQ(ring.TryPopBatch(out, 8), 2u);
  EXPECT_EQ(out[0], 4u);
  EXPECT_EQ(out[1], 5u);
  EXPECT_EQ(ring.TryPopBatch(out, 8), 0u);
}

TEST(MpmcRingTest, PushBatchAcceptsPartialWhenNearlyFull) {
  MpmcRing<uint64_t> ring(8);
  uint64_t first[6] = {0, 1, 2, 3, 4, 5};
  ASSERT_EQ(ring.TryPushBatch(first, 6), 6u);
  uint64_t second[6] = {6, 7, 8, 9, 10, 11};
  // Only two slots remain: the batch is truncated, not rejected.
  ASSERT_EQ(ring.TryPushBatch(second, 2), 2u);
  EXPECT_EQ(ring.TryPushBatch(second + 2, 4), 0u);  // full
  for (uint64_t i = 0; i < 8; ++i) {
    auto v = ring.TryPop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
}

TEST(MpmcRingTest, BatchRoundTripAcrossWrap) {
  MpmcRing<uint64_t> ring(4);
  uint64_t out[4] = {};
  uint64_t next = 0;
  for (int round = 0; round < 6; ++round) {
    uint64_t in[3] = {next, next + 1, next + 2};
    ASSERT_EQ(ring.TryPushBatch(in, 3), 3u);
    ASSERT_EQ(ring.TryPopBatch(out, 4), 3u);
    for (uint64_t i = 0; i < 3; ++i) EXPECT_EQ(out[i], next + i);
    next += 3;
  }
}

TEST(MpmcRingTest, ConcurrentBatchProducersConsumers) {
  MpmcRing<uint64_t> ring(64);
  constexpr int kProducers = 2;
  constexpr int kConsumers = 2;
  constexpr uint64_t kPerProducer = 50000;
  constexpr uint64_t kTotal = kProducers * kPerProducer;
  std::atomic<uint64_t> popped{0};
  std::atomic<uint64_t> sum{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      uint64_t batch[8];
      uint64_t next = static_cast<uint64_t>(p) * kPerProducer;
      const uint64_t end = next + kPerProducer;
      while (next < end) {
        const size_t want =
            std::min<uint64_t>(8, end - next);
        for (size_t i = 0; i < want; ++i) batch[i] = next + i;
        size_t accepted = 0;
        while (accepted < want) {
          const size_t n =
              ring.TryPushBatch(batch + accepted, want - accepted);
          if (n == 0) std::this_thread::yield();
          accepted += n;
        }
        next += want;
      }
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      uint64_t out[8];
      while (popped.load() < kTotal) {
        const size_t n = ring.TryPopBatch(out, 8);
        if (n == 0) {
          std::this_thread::yield();
          continue;
        }
        uint64_t local = 0;
        for (size_t i = 0; i < n; ++i) local += out[i];
        sum.fetch_add(local);
        popped.fetch_add(n);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(popped.load(), kTotal);
  EXPECT_EQ(sum.load(), kTotal * (kTotal - 1) / 2);
}


// ---------------------------------------------------------------------------
// Property-based randomized batch tests (DESIGN.md §8): random
// interleavings of single/batch push/pop checked step-by-step against
// a std::deque reference model. Seeded and replayable — a failure's
// SCOPED_TRACE names the seed; re-run it alone with
// LABSTOR_RING_SEED=<seed>.
// ---------------------------------------------------------------------------

namespace {

std::vector<uint64_t> PropertySeeds() {
  if (const char* env = std::getenv("LABSTOR_RING_SEED"); env != nullptr) {
    return {std::strtoull(env, nullptr, 0)};
  }
  return {0x4C414253, 1, 0xDEADBEEF, 77};
}

}  // namespace

TEST(SpscRingPropertyTest, RandomBatchPopsMatchDequeModel) {
  for (const uint64_t seed : PropertySeeds()) {
    SCOPED_TRACE("LABSTOR_RING_SEED=" + std::to_string(seed));
    Rng rng(seed);
    SpscRing<uint64_t> ring(64);
    std::deque<uint64_t> model;
    uint64_t next_value = 0;

    for (int step = 0; step < 20000; ++step) {
      const uint64_t roll = rng.Range(0, 99);
      if (roll < 50) {
        const bool pushed = ring.TryPush(next_value);
        EXPECT_EQ(pushed, model.size() < ring.capacity());
        if (pushed) model.push_back(next_value++);
      } else if (roll < 75) {
        const auto v = ring.TryPop();
        EXPECT_EQ(v.has_value(), !model.empty());
        if (v.has_value()) {
          ASSERT_FALSE(model.empty());
          EXPECT_EQ(*v, model.front());
          model.pop_front();
        }
      } else {
        uint64_t out[16];
        const size_t max = rng.Range(1, 16);
        const size_t n = ring.TryPopBatch(out, max);
        ASSERT_EQ(n, std::min<size_t>(max, model.size()));
        for (size_t i = 0; i < n; ++i) {
          EXPECT_EQ(out[i], model.front());
          model.pop_front();
        }
      }
    }
    // Drain: everything the model still holds must come out, in order.
    uint64_t out[16];
    while (!model.empty()) {
      const size_t n = ring.TryPopBatch(out, 16);
      ASSERT_GT(n, 0u);
      for (size_t i = 0; i < n; ++i) {
        EXPECT_EQ(out[i], model.front());
        model.pop_front();
      }
    }
    EXPECT_FALSE(ring.TryPop().has_value());
  }
}

TEST(MpmcRingPropertyTest, RandomBatchOpsMatchDequeModel) {
  for (const uint64_t seed : PropertySeeds()) {
    SCOPED_TRACE("LABSTOR_RING_SEED=" + std::to_string(seed));
    Rng rng(seed);
    MpmcRing<uint64_t> ring(64);
    std::deque<uint64_t> model;
    uint64_t next_value = 0;

    for (int step = 0; step < 20000; ++step) {
      const uint64_t roll = rng.Range(0, 99);
      if (roll < 30) {
        const bool pushed = ring.TryPush(next_value);
        EXPECT_EQ(pushed, model.size() < ring.capacity());
        if (pushed) model.push_back(next_value++);
      } else if (roll < 55) {
        // Batch push: with a single producer the ring must accept
        // exactly the free space, capped by the batch size.
        uint64_t in[16];
        const size_t want = rng.Range(1, 16);
        for (size_t i = 0; i < want; ++i) in[i] = next_value + i;
        const size_t accepted = ring.TryPushBatch(in, want);
        ASSERT_EQ(accepted,
                  std::min<size_t>(want, ring.capacity() - model.size()));
        for (size_t i = 0; i < accepted; ++i) model.push_back(next_value++);
      } else if (roll < 80) {
        const auto v = ring.TryPop();
        EXPECT_EQ(v.has_value(), !model.empty());
        if (v.has_value()) {
          ASSERT_FALSE(model.empty());
          EXPECT_EQ(*v, model.front());
          model.pop_front();
        }
      } else {
        uint64_t out[16];
        const size_t max = rng.Range(1, 16);
        const size_t n = ring.TryPopBatch(out, max);
        ASSERT_EQ(n, std::min<size_t>(max, model.size()));
        for (size_t i = 0; i < n; ++i) {
          EXPECT_EQ(out[i], model.front());
          model.pop_front();
        }
      }
    }
    uint64_t out[16];
    while (!model.empty()) {
      const size_t n = ring.TryPopBatch(out, 16);
      ASSERT_GT(n, 0u);
      for (size_t i = 0; i < n; ++i) {
        EXPECT_EQ(out[i], model.front());
        model.pop_front();
      }
    }
    EXPECT_FALSE(ring.TryPop().has_value());
  }
}

}  // namespace
}  // namespace labstor
