// End-to-end fault injection: every fault class the failpoint registry
// can arm, driven through the real stack — device EIO/ENOSPC, torn log
// writes, queue-pair overflow, shmem attach failure, worker death,
// poisoned request slots, mid-DAG mount failure, partial StateRepair —
// asserting that each surfaces a Status (never a hang; the CMake entry
// puts a hard TIMEOUT on this binary) and that the recovery paths
// converge.
#include <gtest/gtest.h>

#include <chrono>
#include <numeric>
#include <string>
#include <vector>

#include "core/client.h"
#include "core/runtime.h"
#include "faultinject/faultinject.h"
#include "labmods/genericfs.h"
#include "labmods/labfs.h"
#include "sim/environment.h"
#include "simdev/registry.h"
#include "telemetry/telemetry.h"

namespace labstor {
namespace {

using namespace std::chrono_literals;
using faultinject::FaultPolicy;

// One injector per test, seeded for reproducibility (LABSTOR_FAULTS_SEED
// overrides, which is how CI pins the probabilistic sites). Tests arm
// policies and then Install(); TearDown guarantees the process-wide
// pointer is cleared even when an assertion bails out early.
class FaultInjectionTest : public ::testing::Test {
 protected:
  FaultInjectionTest()
      : injector_(faultinject::FaultInjector::SeedFromEnv(42)) {}
  void TearDown() override { injector_.Uninstall(); }

  static FaultPolicy Once(StatusCode code) {
    FaultPolicy policy;
    policy.trigger = FaultPolicy::Trigger::kOnce;
    policy.code = code;
    return policy;
  }
  static FaultPolicy Always(StatusCode code) {
    FaultPolicy policy;
    policy.code = code;
    return policy;
  }

  faultinject::FaultInjector injector_;
};

// Mounts a sync labfs stack on a fresh runtime; the common rig for the
// device- and log-level fault classes.
struct SyncFsRig {
  SyncFsRig()
      : devices(nullptr),
        runtime(MakeOptions(), devices),
        client(runtime, ipc::Credentials{100, 1000, 1000}),
        fs(client) {
    EXPECT_TRUE(
        devices.Create(simdev::DeviceParams::NvmeP3700(64 << 20)).ok());
    auto spec = core::StackSpec::Parse(
        "mount: fs::/fi\n"
        "rules:\n"
        "  exec_mode: sync\n"
        "dag:\n"
        "  - mod: labfs\n"
        "    uuid: fi_fs\n"
        "    params:\n"
        "      log_records_per_worker: 256\n"
        "    outputs: [fi_drv]\n"
        "  - mod: kernel_driver\n"
        "    uuid: fi_drv\n");
    EXPECT_TRUE(spec.ok());
    auto stack = runtime.MountStack(*spec, ipc::Credentials{1, 0, 0});
    EXPECT_TRUE(stack.ok()) << stack.status().ToString();
    EXPECT_TRUE(client.Connect().ok());
  }

  static core::Runtime::Options MakeOptions() {
    core::Runtime::Options options;
    options.max_workers = 2;
    return options;
  }

  labmods::LabFsMod* labfs() {
    auto mod = runtime.registry().Find("fi_fs");
    EXPECT_TRUE(mod.ok());
    return dynamic_cast<labmods::LabFsMod*>(*mod);
  }

  simdev::DeviceRegistry devices;
  core::Runtime runtime;
  core::Client client;
  labmods::GenericFs fs;
};

TEST_F(FaultInjectionTest, DisabledFailpointsAreInert) {
  // The zero-overhead claim: with no injector installed the macro is a
  // branch on nullptr and the workload is untouched.
  ASSERT_EQ(faultinject::Active(), nullptr);
  SyncFsRig rig;
  auto fd = rig.fs.Create("fs::/fi/plain");
  ASSERT_TRUE(fd.ok());
  std::vector<uint8_t> data(4096, 9);
  EXPECT_TRUE(rig.fs.Write(*fd, data, 0).ok());
  EXPECT_TRUE(rig.fs.Read(*fd, data, 0).ok());
  // Installed but unarmed sites are equally inert.
  injector_.Install();
  EXPECT_FALSE(injector_.Evaluate("simdev.read.eio").has_value());
  EXPECT_TRUE(rig.fs.Read(*fd, data, 0).ok());
  EXPECT_EQ(injector_.total_fires(), 0u);
}

TEST_F(FaultInjectionTest, DeviceEioSurfacesOnRead) {
  SyncFsRig rig;
  auto fd = rig.fs.Create("fs::/fi/eio");
  ASSERT_TRUE(fd.ok());
  std::vector<uint8_t> data(4096, 1);
  ASSERT_TRUE(rig.fs.Write(*fd, data, 0).ok());

  injector_.Arm("simdev.read.eio", Once(StatusCode::kInternal));
  injector_.Install();
  EXPECT_EQ(rig.fs.Read(*fd, data, 0).status().code(), StatusCode::kInternal);
  EXPECT_EQ(injector_.fires("simdev.read.eio"), 1u);
  // kOnce: the next read goes through.
  EXPECT_TRUE(rig.fs.Read(*fd, data, 0).ok());
}

TEST_F(FaultInjectionTest, DeviceFullSurfacesEnospc) {
  SyncFsRig rig;
  auto fd = rig.fs.Create("fs::/fi/full");
  ASSERT_TRUE(fd.ok());
  injector_.Arm("simdev.write.full", Once(StatusCode::kResourceExhausted));
  injector_.Install();
  std::vector<uint8_t> data(4096, 2);
  EXPECT_EQ(rig.fs.Write(*fd, data, 0).status().code(),
            StatusCode::kResourceExhausted);
  EXPECT_TRUE(rig.fs.Write(*fd, data, 0).ok());
}

TEST_F(FaultInjectionTest, TornLogWriteIsDroppedOnReplay) {
  SyncFsRig rig;
  auto fd = rig.fs.Create("fs::/fi/a");
  ASSERT_TRUE(fd.ok());
  std::vector<uint8_t> data(8192, 7);
  ASSERT_TRUE(rig.fs.Write(*fd, data, 0).ok());

  // Tear the NEXT log append after 16 persisted bytes: magic and seq
  // land on the device, the payload and crc don't — the classic torn
  // tail a crash leaves behind.
  FaultPolicy torn = Once(StatusCode::kUnavailable);
  torn.arg = 16;
  injector_.Arm("simdev.write.torn", torn);
  injector_.Install();
  EXPECT_EQ(rig.fs.Create("fs::/fi/b").status().code(),
            StatusCode::kUnavailable);
  injector_.Uninstall();

  auto* labfs = rig.labfs();
  ASSERT_NE(labfs, nullptr);
  // The failed create rolled its inode back.
  EXPECT_FALSE(labfs->Exists("fs::/fi/b"));
  // Crash-repair replays the log; the torn record is detected by its
  // crc and dropped as the region's tail instead of replayed as junk.
  ASSERT_TRUE(rig.runtime.registry().RepairAll().ok());
  EXPECT_GE(labfs->log_torn_dropped(), 1u);
  EXPECT_TRUE(labfs->Exists("fs::/fi/a"));
  auto size = labfs->FileSize("fs::/fi/a");
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, data.size());
  // The slot is reusable: the create now succeeds.
  EXPECT_TRUE(rig.fs.Create("fs::/fi/b").ok());
}

TEST_F(FaultInjectionTest, PartialStateRepairConverges) {
  SyncFsRig rig;
  auto fd = rig.fs.Create("fs::/fi/repair");
  ASSERT_TRUE(fd.ok());
  injector_.Arm("core.repair.partial", Once(StatusCode::kInternal));
  injector_.Install();
  EXPECT_FALSE(rig.runtime.registry().RepairAll().ok());
  // StateRepair is idempotent clear-and-rebuild: the retry converges.
  ASSERT_TRUE(rig.runtime.registry().RepairAll().ok());
  EXPECT_TRUE(rig.labfs()->Exists("fs::/fi/repair"));
}

TEST_F(FaultInjectionTest, MountStackMidDagFailureLeavesNamespaceClean) {
  simdev::DeviceRegistry devices(nullptr);
  core::Runtime runtime(SyncFsRig::MakeOptions(), devices);
  ASSERT_TRUE(devices.Create(simdev::DeviceParams::NvmeP3700(64 << 20)).ok());
  auto spec = core::StackSpec::Parse(
      "mount: fs::/middag\n"
      "rules:\n"
      "  exec_mode: sync\n"
      "dag:\n"
      "  - mod: labfs\n"
      "    uuid: middag_fs\n"
      "    outputs: [middag_drv]\n"
      "  - mod: kernel_driver\n"
      "    uuid: middag_drv\n");
  ASSERT_TRUE(spec.ok());

  injector_.Arm("core.mount.middag", Once(StatusCode::kInternal));
  injector_.Install();
  EXPECT_FALSE(runtime.MountStack(*spec, ipc::Credentials{1, 0, 0}).ok());
  EXPECT_EQ(runtime.ns().size(), 0u);  // no half-mounted stack
  // kOnce consumed: the retry mounts and serves traffic.
  ASSERT_TRUE(runtime.MountStack(*spec, ipc::Credentials{1, 0, 0}).ok());
  core::Client client(runtime, ipc::Credentials{100, 1000, 1000});
  ASSERT_TRUE(client.Connect().ok());
  labmods::GenericFs fs(client);
  EXPECT_TRUE(fs.Create("fs::/middag/ok").ok());
}

TEST_F(FaultInjectionTest, ShmemAttachFailureSurfacesAndRecovers) {
  SyncFsRig rig;
  injector_.Arm("ipc.connect.shmem", Once(StatusCode::kUnavailable));
  injector_.Install();
  core::Client late(rig.runtime, ipc::Credentials{200, 1000, 1000});
  EXPECT_EQ(late.Connect().code(), StatusCode::kUnavailable);
  EXPECT_FALSE(late.connected());
  // The transient attach failure clears; reconnect succeeds.
  ASSERT_TRUE(late.Connect().ok());
  EXPECT_TRUE(late.connected());
}

// --- async-runtime fault classes ---

struct AsyncRig {
  explicit AsyncRig(size_t workers,
                    std::chrono::milliseconds request_timeout = 100ms,
                    core::RetryPolicy retry = {})
      : devices(nullptr),
        runtime(MakeOptions(workers, request_timeout), devices),
        client(runtime, ipc::Credentials{100, 1000, 1000}, retry) {
    EXPECT_TRUE(
        devices.Create(simdev::DeviceParams::NvmeP3700(64 << 20)).ok());
    auto spec = core::StackSpec::Parse(
        "mount: ctl::/fi\n"
        "rules:\n"
        "  exec_mode: async\n"
        "dag:\n"
        "  - mod: dummy\n"
        "    uuid: fi_dummy\n");
    EXPECT_TRUE(spec.ok());
    auto mounted = runtime.MountStack(*spec, ipc::Credentials{1, 0, 0});
    EXPECT_TRUE(mounted.ok()) << mounted.status().ToString();
    stack = *mounted;
    EXPECT_TRUE(runtime.Start().ok());
    EXPECT_TRUE(client.Connect().ok());
  }
  ~AsyncRig() {
    if (runtime.running()) (void)runtime.Stop();
  }

  static core::Runtime::Options MakeOptions(
      size_t workers, std::chrono::milliseconds request_timeout) {
    core::Runtime::Options options;
    options.max_workers = workers;
    options.admin_poll = 2ms;
    options.worker_idle_sleep = std::chrono::microseconds(50);
    options.ipc.request_timeout = request_timeout;
    return options;
  }

  Status ExecuteDummy() {
    auto req = client.NewRequest();
    EXPECT_TRUE(req.ok());
    (*req)->op = ipc::OpCode::kDummy;
    return client.Execute(**req, *stack);
  }

  simdev::DeviceRegistry devices;
  core::Runtime runtime;
  core::Client client;
  core::Stack* stack = nullptr;
};

TEST_F(FaultInjectionTest, QueueOverflowSubmissionTimesOutNotHangs) {
  core::RetryPolicy retry;
  retry.submit_deadline = 100ms;
  AsyncRig rig(/*workers=*/2, /*request_timeout=*/1000ms, retry);
  injector_.Arm("ipc.qp.overflow", Always(StatusCode::kResourceExhausted));
  injector_.Install();
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_EQ(rig.ExecuteDummy().code(), StatusCode::kTimeout);
  EXPECT_LT(std::chrono::steady_clock::now() - t0, 10s) << "bounded, no hang";
}

TEST_F(FaultInjectionTest, QueueOverflowTransientRetriesSucceed) {
  AsyncRig rig(/*workers=*/2);
  injector_.Arm("ipc.qp.overflow", Once(StatusCode::kResourceExhausted));
  injector_.Install();
  EXPECT_TRUE(rig.ExecuteDummy().ok());
  EXPECT_EQ(injector_.fires("ipc.qp.overflow"), 1u);
}

TEST_F(FaultInjectionTest, WorkerDeathRequestRecoveredByRetry) {
  core::RetryPolicy retry;
  retry.max_attempts = 6;
  AsyncRig rig(/*workers=*/2, /*request_timeout=*/100ms, retry);
  injector_.Arm("core.worker.death", Once(StatusCode::kInternal));
  injector_.Install();
  // The first worker to dequeue the request dies with it; the client's
  // wait times out, it resubmits, and the surviving worker (handed the
  // dead worker's queues by the death-time rebalance) completes it.
  EXPECT_TRUE(rig.ExecuteDummy().ok());
  EXPECT_GE(rig.client.retries(), 1u);
  EXPECT_EQ(rig.runtime.dead_workers(), 1u);
  // Later traffic flows without further retries.
  EXPECT_TRUE(rig.ExecuteDummy().ok());
}

TEST_F(FaultInjectionTest, AllWorkersDeadDeadlineExceeded) {
  core::RetryPolicy retry;
  retry.max_attempts = 2;
  AsyncRig rig(/*workers=*/1, /*request_timeout=*/50ms, retry);
  injector_.Arm("core.worker.death", Always(StatusCode::kInternal));
  injector_.Install();
  // The only worker dies; every retry times out; the client reports
  // DEADLINE_EXCEEDED semantics instead of wedging forever.
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_EQ(rig.ExecuteDummy().code(), StatusCode::kTimeout);
  EXPECT_LT(std::chrono::steady_clock::now() - t0, 30s) << "bounded, no hang";
  EXPECT_EQ(rig.runtime.dead_workers(), 1u);
}

TEST_F(FaultInjectionTest, PoisonedSlotCompletesWithCorruptionNotRetried) {
  AsyncRig rig(/*workers=*/2);
  injector_.Arm("ipc.slot.poison", Once(StatusCode::kCorruption));
  injector_.Install();
  // The worker rejects the poisoned request without executing it. A
  // completed verdict is FINAL: the client must not blindly retry a
  // corruption (it could double-apply a mutation).
  EXPECT_EQ(rig.ExecuteDummy().code(), StatusCode::kCorruption);
  EXPECT_EQ(rig.client.retries(), 0u);
  EXPECT_TRUE(rig.ExecuteDummy().ok());
}

// --- sim-time windows, determinism, YAML, telemetry ---

sim::Task<void> TimedWrites(sim::Environment& env, simdev::SimDevice& dev) {
  // t = 0: outside the [1ms, 2ms) window — must not fire.
  co_await dev.WriteTimed(0, 0, 4096);
  co_await env.Delay(sim::Time{1500} * sim::kUs);  // into the window
  co_await dev.WriteTimed(0, 4096, 4096);          // fires
}

TEST_F(FaultInjectionTest, SimWindowOnlyFiresInsideWindow) {
  sim::Environment env;
  simdev::SimDevice dev(&env, simdev::DeviceParams::PmemEmulated(16 << 20));
  FaultPolicy spike;
  spike.sim_window = true;
  spike.window_start_ns = 1000 * sim::kUs;  // [1ms, 2ms)
  spike.window_end_ns = 2000 * sim::kUs;
  spike.arg = 100 * sim::kUs;
  injector_.Arm("simdev.latency.spike", spike);
  injector_.AttachSimEnv(&env);
  injector_.Install();
  env.Spawn(TimedWrites(env, dev));
  env.Run();
  EXPECT_EQ(injector_.fires("simdev.latency.spike"), 1u);

  // A windowed site with NO attached environment must never fire:
  // there is no clock to be inside the window of.
  faultinject::FaultInjector clockless(42);
  clockless.Arm("simdev.latency.spike", spike);
  EXPECT_FALSE(clockless.Evaluate("simdev.latency.spike").has_value());
}

TEST_F(FaultInjectionTest, LatencySpikeStretchesVirtualTime) {
  sim::Environment env;
  simdev::SimDevice dev(&env, simdev::DeviceParams::PmemEmulated(16 << 20));
  FaultPolicy spike;
  spike.arg = 500 * sim::kUs;  // +500us per op
  injector_.Arm("simdev.latency.spike", spike);
  injector_.AttachSimEnv(&env);
  injector_.Install();
  env.Spawn(dev.WriteTimed(0, 0, 4096));
  const sim::Time with_spike = env.Run();
  EXPECT_GE(with_spike, 500 * sim::kUs);
}

TEST_F(FaultInjectionTest, ProbabilisticFiringIsSeedDeterministic) {
  faultinject::FaultInjector a(1234);
  faultinject::FaultInjector b(1234);
  FaultPolicy coin;
  coin.trigger = FaultPolicy::Trigger::kProbability;
  coin.probability = 0.5;
  a.Arm("coin.flip", coin);
  b.Arm("coin.flip", coin);
  std::vector<bool> fires_a;
  std::vector<bool> fires_b;
  for (int i = 0; i < 256; ++i) {
    fires_a.push_back(a.Evaluate("coin.flip").has_value());
    fires_b.push_back(b.Evaluate("coin.flip").has_value());
  }
  EXPECT_EQ(fires_a, fires_b);  // same seed, same sequence
  EXPECT_GT(a.total_fires(), 0u);
  EXPECT_LT(a.total_fires(), 256u);  // actually probabilistic
}

TEST_F(FaultInjectionTest, EveryNFiresOnSchedule) {
  FaultPolicy every3;
  every3.trigger = FaultPolicy::Trigger::kEveryN;
  every3.every_n = 3;
  injector_.Arm("tick.tock", every3);
  int fired = 0;
  for (int i = 1; i <= 9; ++i) {
    if (injector_.Evaluate("tick.tock").has_value()) {
      ++fired;
      EXPECT_EQ(i % 3, 0) << "fired off-schedule at hit " << i;
    }
  }
  EXPECT_EQ(fired, 3);
}

TEST_F(FaultInjectionTest, YamlConfigArmsPolicies) {
  const Status st = injector_.LoadYaml(
      "seed: 7\n"
      "faults:\n"
      "  - site: simdev.write.eio\n"
      "    trigger: every_n\n"
      "    n: 32\n"
      "    code: internal\n"
      "    message: injected device EIO\n"
      "  - site: simdev.latency.spike\n"
      "    trigger: probability\n"
      "    p: 0.05\n"
      "    arg: 100000\n"
      "  - site: ipc.qp.overflow\n"
      "    trigger: once\n"
      "    window_start_us: 10\n"
      "    window_end_us: 20\n");
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_TRUE(injector_.IsArmed("simdev.write.eio"));
  EXPECT_TRUE(injector_.IsArmed("simdev.latency.spike"));
  EXPECT_TRUE(injector_.IsArmed("ipc.qp.overflow"));
  EXPECT_FALSE(injector_.IsArmed("simdev.read.eio"));

  EXPECT_FALSE(injector_.LoadYaml("faults:\n"
                                  "  - site: x\n"
                                  "    trigger: sometimes\n")
                   .ok());
  EXPECT_FALSE(injector_.LoadYaml("faults:\n"
                                  "  - site: x\n"
                                  "    code: not_a_code\n")
                   .ok());
  EXPECT_FALSE(injector_.LoadYaml("faults:\n"
                                  "  - trigger: once\n")  // missing site
                   .ok());
}

TEST_F(FaultInjectionTest, TelemetryCountsEveryFire) {
  telemetry::Telemetry tel;
  injector_.AttachTelemetry(&tel);
  injector_.Arm("audit.me", Always(StatusCode::kInternal));
  injector_.Install();
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(injector_.InjectStatus("audit.me").code(),
              StatusCode::kInternal);
  }
  EXPECT_EQ(tel.metrics().GetCounter("faultinject.fired")->Value(), 5u);
  EXPECT_EQ(tel.metrics().GetCounter("faultinject.fired.audit.me")->Value(),
            5u);
  EXPECT_EQ(injector_.total_fires(), 5u);
}

TEST_F(FaultInjectionTest, NoUnhandledFaultsUnderInjectedWorkload) {
  // The audit the CI job enforces: after a fault-heavy run, every
  // worker completion must have been publishable — a dropped
  // completion means a fault escaped all surfaced paths.
  telemetry::Telemetry tel;
  core::RetryPolicy retry;
  retry.max_attempts = 6;
  simdev::DeviceRegistry devices(nullptr);
  core::Runtime::Options options = AsyncRig::MakeOptions(2, 100ms);
  options.telemetry = &tel;
  core::Runtime runtime(std::move(options), devices);
  ASSERT_TRUE(devices.Create(simdev::DeviceParams::NvmeP3700(64 << 20)).ok());
  auto spec = core::StackSpec::Parse(
      "mount: ctl::/audit\n"
      "rules:\n"
      "  exec_mode: async\n"
      "dag:\n"
      "  - mod: dummy\n"
      "    uuid: audit_dummy\n");
  ASSERT_TRUE(spec.ok());
  auto stack = runtime.MountStack(*spec, ipc::Credentials{1, 0, 0});
  ASSERT_TRUE(stack.ok());
  ASSERT_TRUE(runtime.Start().ok());
  core::Client client(runtime, ipc::Credentials{100, 1000, 1000}, retry);
  ASSERT_TRUE(client.Connect().ok());

  FaultPolicy flaky;
  flaky.trigger = FaultPolicy::Trigger::kEveryN;
  flaky.every_n = 7;
  flaky.code = StatusCode::kCorruption;
  injector_.Arm("ipc.slot.poison", flaky);
  injector_.AttachTelemetry(&tel);
  injector_.Install();

  int ok_ops = 0;
  int failed_ops = 0;
  for (int i = 0; i < 64; ++i) {
    auto req = client.NewRequest();
    ASSERT_TRUE(req.ok());
    (*req)->op = ipc::OpCode::kDummy;
    if (client.Execute(**req, **stack).ok()) {
      ++ok_ops;
    } else {
      ++failed_ops;
    }
  }
  ASSERT_TRUE(runtime.Stop().ok());
  EXPECT_GT(ok_ops, 0);
  EXPECT_GT(failed_ops, 0);  // the injection actually bit
  EXPECT_EQ(tel.metrics().GetCounter("runtime.completion.dropped")->Value(),
            0u)
      << "a worker completed a request nobody could observe";
}

}  // namespace
}  // namespace labstor
