#include <gtest/gtest.h>

#include "kernelsim/access_api.h"
#include "kernelsim/kernel_fs.h"
#include "kernelsim/paths.h"
#include "sim/environment.h"

namespace labstor::kernelsim {
namespace {

using sim::Environment;
using sim::Time;

// ---------- path cost formulas ----------

TEST(PathsTest, OverheadOrderingMatchesFig6) {
  const sim::SoftwareCosts& c = sim::DefaultCosts();
  const Time dax = ApiOverhead(ApiKind::kLabDax, c);
  const Time spdk = ApiOverhead(ApiKind::kLabSpdk, c);
  const Time kdrv = ApiOverhead(ApiKind::kLabKernelDriver, c);
  const Time uring = ApiOverhead(ApiKind::kIoUring, c);
  const Time aio = ApiOverhead(ApiKind::kLibAio, c);
  const Time posix = ApiOverhead(ApiKind::kPosix, c);
  const Time paio = ApiOverhead(ApiKind::kPosixAio, c);
  EXPECT_LT(dax, spdk);
  EXPECT_LT(spdk, kdrv);
  EXPECT_LT(kdrv, uring);
  EXPECT_LT(uring, aio);
  EXPECT_LT(aio, posix);
  EXPECT_LT(posix, paio);
}

TEST(PathsTest, KernelDriverBeatsIoUringByEnoughOnNvme4K) {
  // Fig. 6's headline: KernelDriver >= 15% better IOPS than the best
  // kernel API at 4KB on NVMe.
  const sim::SoftwareCosts& c = sim::DefaultCosts();
  const auto p = simdev::DeviceParams::NvmeP3700();
  const double device_ns =
      static_cast<double>(p.write_latency) + p.write_ns_per_byte * 4096;
  const double t_kdrv =
      device_ns + static_cast<double>(ApiOverhead(ApiKind::kLabKernelDriver, c));
  const double t_uring =
      device_ns + static_cast<double>(ApiOverhead(ApiKind::kIoUring, c));
  EXPECT_GE(t_uring / t_kdrv, 1.15) << "uring=" << t_uring << " kdrv=" << t_kdrv;
}

TEST(PathsTest, SpdkBeatsKernelDriverOnNvme4K) {
  const sim::SoftwareCosts& c = sim::DefaultCosts();
  const auto p = simdev::DeviceParams::NvmeP3700();
  const double device_ns =
      static_cast<double>(p.write_latency) + p.write_ns_per_byte * 4096;
  const double t_kdrv =
      device_ns + static_cast<double>(ApiOverhead(ApiKind::kLabKernelDriver, c));
  const double t_spdk =
      device_ns + static_cast<double>(ApiOverhead(ApiKind::kLabSpdk, c));
  EXPECT_GE(t_kdrv / t_spdk, 1.08);
  EXPECT_LE(t_kdrv / t_spdk, 1.25);
}

TEST(PathsTest, GapShrinksAt128K) {
  const sim::SoftwareCosts& c = sim::DefaultCosts();
  const auto p = simdev::DeviceParams::NvmeP3700();
  const double device_ns = static_cast<double>(p.write_latency) +
                           p.write_ns_per_byte * 128 * 1024;
  const double t_posix =
      device_ns + static_cast<double>(ApiOverhead(ApiKind::kPosix, c));
  const double t_spdk =
      device_ns + static_cast<double>(ApiOverhead(ApiKind::kLabSpdk, c));
  EXPECT_LE(t_posix / t_spdk, 1.12);  // ~6% in the paper; small here too
}

TEST(PathsTest, NoOpPickDeterministic) {
  EXPECT_EQ(NoOpPickQueue(13, 8), 5u);
  EXPECT_EQ(NoOpPickQueue(16, 8), 0u);
}

// ---------- AccessApi DES ----------

sim::Task<void> OneIo(AccessApi& api, Time* done) {
  co_await api.DoIo(simdev::IoOp::kWrite, 0, 0, 4096);
  *done = 1;  // completion marker; caller reads env.now()
}

sim::Task<void> OneRandomIo(AccessApi& api) {
  // Off-track offset: forces an HDD seek.
  co_await api.DoIo(simdev::IoOp::kWrite, 0, 8 << 20, 4096);
}

TEST(AccessApiTest, TotalLatencyIsOverheadPlusDevice) {
  Environment env;
  simdev::SimDevice device(&env, simdev::DeviceParams::NvmeP3700());
  AccessApi api(env, device, ApiKind::kPosix);
  Time done = 0;
  env.Spawn(OneIo(api, &done));
  const Time end = env.Run();
  const auto p = simdev::DeviceParams::NvmeP3700();
  const Time expected = api.SoftwareOverhead() + p.write_latency +
                        static_cast<Time>(p.write_ns_per_byte * 4096);
  EXPECT_EQ(end, expected);
  EXPECT_EQ(done, 1u);
}

TEST(AccessApiTest, ApisIndistinguishableOnHdd) {
  // Fig. 6: on HDD the software path is noise next to the seek.
  const auto run = [](ApiKind kind) {
    Environment env;
    simdev::SimDevice device(&env, simdev::DeviceParams::SasHdd());
    AccessApi api(env, device, kind);
    env.Spawn(OneRandomIo(api));
    return env.Run();
  };
  const Time posix = run(ApiKind::kPosix);
  const Time spdk = run(ApiKind::kLabSpdk);
  EXPECT_LT(static_cast<double>(posix) / static_cast<double>(spdk), 1.01);
}

TEST(BlkSwitchPickTest, AvoidsLoadedQueues) {
  Environment env;
  simdev::DeviceParams p = simdev::DeviceParams::NvmeP3700();
  p.per_queue_parallelism = 1;
  simdev::SimDevice device(&env, p);
  // Load channel 0 with pending work.
  env.Spawn(device.WriteTimed(0, 0, 1 << 20));
  env.Spawn(device.WriteTimed(0, 0, 1 << 20));
  env.RunUntil(1);  // ops now in flight on channel 0
  const uint32_t pick = BlkSwitchPickQueue(device, 4096, 8);
  EXPECT_NE(pick, 0u);
  EXPECT_LT(pick, 4u);  // latency class stays in the lower half
  const uint32_t tpick = BlkSwitchPickQueue(device, 64 * 1024, 8);
  EXPECT_GE(tpick, 4u);
  env.Run();
}

// ---------- KernelFs ----------

sim::Task<void> CreateMany(Environment& env, KernelFs& fs, int n,
                           sim::Barrier& barrier) {
  for (int i = 0; i < n; ++i) co_await fs.Create();
  (void)env;
  barrier.Arrive();
}

double CreateThroughput(KfsKind kind, int threads, int per_thread) {
  Environment env;
  simdev::SimDevice device(&env, simdev::DeviceParams::NvmeP3700());
  KernelFs fs(env, device, kind);
  sim::Barrier barrier(env, static_cast<uint64_t>(threads));
  for (int t = 0; t < threads; ++t) {
    env.Spawn(CreateMany(env, fs, per_thread, barrier));
  }
  const Time end = env.Run();
  return static_cast<double>(threads * per_thread) /
         (static_cast<double>(end) / 1e9);
}

TEST(KernelFsTest, Ext4CreatesSerializeOnJournal) {
  const double t1 = CreateThroughput(KfsKind::kExt4, 1, 200);
  const double t8 = CreateThroughput(KfsKind::kExt4, 8, 200);
  // Lock-bound: 8 threads buy well under 3x.
  EXPECT_LT(t8 / t1, 3.0);
  EXPECT_GT(t8 / t1, 0.8);  // but not a collapse
}

TEST(KernelFsTest, XfsScalesBetterThanExt4) {
  const double ext4_8 = CreateThroughput(KfsKind::kExt4, 8, 200);
  const double xfs_8 = CreateThroughput(KfsKind::kXfs, 8, 200);
  EXPECT_GT(xfs_8, ext4_8);
}

TEST(KernelFsTest, F2fsFasterSingleThreadCreate) {
  const double f2fs_1 = CreateThroughput(KfsKind::kF2fs, 1, 200);
  const double ext4_1 = CreateThroughput(KfsKind::kExt4, 1, 200);
  EXPECT_GT(f2fs_1, ext4_1);
}

sim::Task<void> LabiosSeq(KernelFs& fs) {
  co_await fs.OpenSeekWriteClose(1, 0, 8192);
}

TEST(KernelFsTest, OpenSeekWriteCloseCountsFourOps) {
  Environment env;
  simdev::SimDevice device(&env, simdev::DeviceParams::NvmeP3700());
  KernelFs fs(env, device, KfsKind::kExt4);
  env.Spawn(LabiosSeq(fs));
  env.Run();
  EXPECT_EQ(fs.ops_completed(), 3u);  // open, write, close (seek is free-ish)
  EXPECT_EQ(device.stats().writes.load(), 1u);
}

sim::Task<void> WriteOne(KernelFs& fs, uint64_t len) {
  co_await fs.Write(2, 0, len);
}

TEST(KernelFsTest, DataWriteChargesCopyAndSpine) {
  Environment env;
  simdev::SimDevice device(&env, simdev::DeviceParams::NvmeP3700());
  KernelFs fs(env, device, KfsKind::kExt4);
  env.Spawn(WriteOne(fs, 4096));
  const Time end = env.Run();
  const auto p = simdev::DeviceParams::NvmeP3700();
  const Time device_time =
      p.write_latency + static_cast<Time>(p.write_ns_per_byte * 4096);
  EXPECT_GT(end, device_time);  // software on top
  EXPECT_LT(end, device_time + 30 * sim::kUs);
}

}  // namespace
}  // namespace labstor::kernelsim
