#include "common/yaml.h"

#include <gtest/gtest.h>

namespace labstor::yaml {
namespace {

TEST(YamlTest, EmptyDocumentIsNull) {
  auto root = Parse("");
  ASSERT_TRUE(root.ok());
  EXPECT_TRUE((*root)->IsNull());
}

TEST(YamlTest, ScalarDocument) {
  auto root = Parse("hello");
  ASSERT_TRUE(root.ok());
  ASSERT_TRUE((*root)->IsScalar());
  EXPECT_EQ((*root)->scalar(), "hello");
}

TEST(YamlTest, FlatMapping) {
  auto root = Parse("name: labfs\nworkers: 16\nratio: 0.5\nenabled: true\n");
  ASSERT_TRUE(root.ok());
  const NodePtr n = *root;
  ASSERT_TRUE(n->IsMapping());
  EXPECT_EQ(n->GetString("name", ""), "labfs");
  EXPECT_EQ(n->GetInt("workers", 0), 16);
  EXPECT_DOUBLE_EQ(n->GetDouble("ratio", 0), 0.5);
  EXPECT_TRUE(n->GetBool("enabled", false));
  EXPECT_EQ(n->GetString("missing", "dflt"), "dflt");
}

TEST(YamlTest, NestedMapping) {
  auto root = Parse(
      "runtime:\n"
      "  workers: 8\n"
      "  policy: dynamic\n"
      "mods:\n"
      "  repo: /opt/mods\n");
  ASSERT_TRUE(root.ok());
  const NodePtr runtime = (*root)->Get("runtime");
  ASSERT_NE(runtime, nullptr);
  EXPECT_EQ(runtime->GetInt("workers", 0), 8);
  EXPECT_EQ(runtime->GetString("policy", ""), "dynamic");
  EXPECT_EQ((*root)->Get("mods")->GetString("repo", ""), "/opt/mods");
}

TEST(YamlTest, BlockSequenceOfScalars) {
  auto root = Parse("- alpha\n- beta\n- gamma\n");
  ASSERT_TRUE(root.ok());
  ASSERT_TRUE((*root)->IsSequence());
  ASSERT_EQ((*root)->items().size(), 3u);
  EXPECT_EQ((*root)->items()[1]->scalar(), "beta");
}

TEST(YamlTest, SequenceUnderKeySameIndent) {
  auto root = Parse(
      "mods:\n"
      "- labfs\n"
      "- lru\n");
  ASSERT_TRUE(root.ok());
  const NodePtr mods = (*root)->Get("mods");
  ASSERT_NE(mods, nullptr);
  ASSERT_TRUE(mods->IsSequence());
  EXPECT_EQ(mods->items().size(), 2u);
}

TEST(YamlTest, SequenceOfMappings) {
  auto root = Parse(
      "dag:\n"
      "  - name: labfs\n"
      "    uuid: fs1\n"
      "    outputs: [lru1]\n"
      "  - name: lru\n"
      "    uuid: lru1\n");
  ASSERT_TRUE(root.ok());
  const NodePtr dag = (*root)->Get("dag");
  ASSERT_NE(dag, nullptr);
  ASSERT_TRUE(dag->IsSequence());
  ASSERT_EQ(dag->items().size(), 2u);
  const NodePtr first = dag->items()[0];
  ASSERT_TRUE(first->IsMapping());
  EXPECT_EQ(first->GetString("name", ""), "labfs");
  EXPECT_EQ(first->GetString("uuid", ""), "fs1");
  const NodePtr outputs = first->Get("outputs");
  ASSERT_TRUE(outputs->IsSequence());
  ASSERT_EQ(outputs->items().size(), 1u);
  EXPECT_EQ(outputs->items()[0]->scalar(), "lru1");
  EXPECT_EQ(dag->items()[1]->GetString("name", ""), "lru");
}

TEST(YamlTest, FlowSequence) {
  auto root = Parse("list: [1, 2, 3]\nempty: []\nnested: [[a, b], c]\n");
  ASSERT_TRUE(root.ok());
  const NodePtr list = (*root)->Get("list");
  ASSERT_TRUE(list->IsSequence());
  ASSERT_EQ(list->items().size(), 3u);
  EXPECT_EQ(*list->items()[2]->AsInt(), 3);
  EXPECT_EQ((*root)->Get("empty")->items().size(), 0u);
  const NodePtr nested = (*root)->Get("nested");
  ASSERT_EQ(nested->items().size(), 2u);
  ASSERT_TRUE(nested->items()[0]->IsSequence());
  EXPECT_EQ(nested->items()[0]->items()[1]->scalar(), "b");
}

TEST(YamlTest, CommentsAndBlanksIgnored) {
  auto root = Parse(
      "# header comment\n"
      "\n"
      "key: value  # trailing comment\n"
      "other: 'has # inside quotes'\n");
  ASSERT_TRUE(root.ok());
  EXPECT_EQ((*root)->GetString("key", ""), "value");
  EXPECT_EQ((*root)->GetString("other", ""), "has # inside quotes");
}

TEST(YamlTest, QuotedScalars) {
  auto root = Parse(
      "single: 'a b c'\n"
      "double: \"x\\ny\"\n"
      "colon_in_quotes: \"a:b\"\n");
  ASSERT_TRUE(root.ok());
  EXPECT_EQ((*root)->GetString("single", ""), "a b c");
  EXPECT_EQ((*root)->GetString("double", ""), "x\ny");
  EXPECT_EQ((*root)->GetString("colon_in_quotes", ""), "a:b");
}

TEST(YamlTest, NullValues) {
  auto root = Parse("a: ~\nb: null\nc:\nd: 1\n");
  ASSERT_TRUE(root.ok());
  EXPECT_TRUE((*root)->Get("a")->IsNull());
  EXPECT_TRUE((*root)->Get("b")->IsNull());
  EXPECT_TRUE((*root)->Get("c")->IsNull());
  EXPECT_EQ((*root)->GetInt("d", 0), 1);
}

TEST(YamlTest, TypedAccessorErrors) {
  auto root = Parse("s: hello\nn: 12\n");
  ASSERT_TRUE(root.ok());
  EXPECT_FALSE((*root)->Get("s")->AsInt().ok());
  EXPECT_FALSE((*root)->Get("s")->AsBool().ok());
  EXPECT_TRUE((*root)->Get("n")->AsInt().ok());
  EXPECT_TRUE((*root)->Get("n")->AsDouble().ok());
}

TEST(YamlTest, NegativeAndHexIntegers) {
  auto root = Parse("neg: -5\nhex: 0x10\n");
  ASSERT_TRUE(root.ok());
  EXPECT_EQ(*(*root)->Get("neg")->AsInt(), -5);
  EXPECT_EQ(*(*root)->Get("hex")->AsInt(), 16);
  EXPECT_FALSE((*root)->Get("neg")->AsUint().ok());
}

TEST(YamlTest, DuplicateKeyRejected) {
  auto root = Parse("a: 1\na: 2\n");
  EXPECT_FALSE(root.ok());
}

TEST(YamlTest, AnchorsRejected) {
  EXPECT_FALSE(Parse("a: &anchor 1\n").ok());
}

TEST(YamlTest, ErrorMentionsLineNumber) {
  // A deeper-indented mapping after a scalar value is trailing content.
  auto root = Parse("a: 1\n  b: 2\n");
  ASSERT_FALSE(root.ok());
  EXPECT_NE(root.status().message().find("line 2"), std::string::npos)
      << root.status().ToString();
}

TEST(YamlTest, FlowMappingValueRejected) {
  EXPECT_FALSE(Parse("m: {a: 1}\n").ok());
}

TEST(YamlTest, DeepNesting) {
  auto root = Parse(
      "a:\n"
      "  b:\n"
      "    c:\n"
      "      d: leaf\n");
  ASSERT_TRUE(root.ok());
  EXPECT_EQ(
      (*root)->Get("a")->Get("b")->Get("c")->GetString("d", ""), "leaf");
}

TEST(YamlTest, MappingOrderPreserved) {
  auto root = Parse("z: 1\na: 2\nm: 3\n");
  ASSERT_TRUE(root.ok());
  const auto& entries = (*root)->entries();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].first, "z");
  EXPECT_EQ(entries[1].first, "a");
  EXPECT_EQ(entries[2].first, "m");
}

TEST(YamlTest, RealisticLabStackSpec) {
  auto root = Parse(
      "mount: fs::/b\n"
      "rules:\n"
      "  exec_mode: async\n"
      "  priority: high\n"
      "  admins: [root, alice]\n"
      "dag:\n"
      "  - mod: labfs\n"
      "    uuid: fs1\n"
      "    params:\n"
      "      log_size: 4096\n"
      "    outputs: [lru1]\n"
      "  - mod: lru_cache\n"
      "    uuid: lru1\n"
      "    outputs: [sched1]\n"
      "  - mod: noop_sched\n"
      "    uuid: sched1\n"
      "    outputs: [drv1]\n"
      "  - mod: kernel_driver\n"
      "    uuid: drv1\n"
      "    params:\n"
      "      device: nvme0\n");
  ASSERT_TRUE(root.ok()) << root.status().ToString();
  const NodePtr n = *root;
  EXPECT_EQ(n->GetString("mount", ""), "fs::/b");
  EXPECT_EQ(n->Get("rules")->GetString("exec_mode", ""), "async");
  EXPECT_EQ(n->Get("rules")->Get("admins")->items().size(), 2u);
  const NodePtr dag = n->Get("dag");
  ASSERT_EQ(dag->items().size(), 4u);
  EXPECT_EQ(dag->items()[0]->Get("params")->GetInt("log_size", 0), 4096);
  EXPECT_EQ(dag->items()[3]->Get("params")->GetString("device", ""), "nvme0");
}

TEST(YamlTest, DumpRoundTrip) {
  const char* doc =
      "mount: fs::/b\n"
      "dag:\n"
      "  - mod: labfs\n"
      "    outputs: [a, b]\n";
  auto root = Parse(doc);
  ASSERT_TRUE(root.ok());
  auto reparsed = Parse((*root)->Dump());
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ((*reparsed)->GetString("mount", ""), "fs::/b");
  EXPECT_EQ((*reparsed)->Get("dag")->items().size(), 1u);
}

}  // namespace
}  // namespace labstor::yaml
