// Direct coverage for workload/arrival (the open/closed-loop driver
// every bench shares — previously exercised only through benches):
// issue counts per mode, per-stream stats accounting, duration- vs
// count-bounded termination, seed determinism, and two regressions
// that fail on the pre-fix code:
//   * an arrival landing exactly on the duration deadline was still
//     issued (`>` vs `>=`);
//   * an exponential gap truncating to 0ns re-entered the issue loop
//     at the same virtual instant, spinning the DES without advancing
//     time (now clamped to >= 1ns).
#include <gtest/gtest.h>

#include <vector>

#include "sim/environment.h"
#include "workload/arrival.h"

namespace labstor::workload {
namespace {

using sim::Environment;
using sim::Time;

struct OpLog {
  std::vector<Time> issue_times;
  std::vector<uint32_t> streams;
  std::vector<uint64_t> indices;
};

// Records every issue, then models a fixed service time.
ArrivalOp LoggingOp(Environment& env, OpLog* log, Time service) {
  return [&env, log, service](uint32_t stream,
                              uint64_t index) -> sim::Task<void> {
    log->issue_times.push_back(env.now());
    log->streams.push_back(stream);
    log->indices.push_back(index);
    co_await env.Delay(service);
  };
}

// ---------- mode issue counts ----------

TEST(ArrivalTest, ClosedLoopIssuesExactlyOpsPerStream) {
  Environment env;
  OpLog log;
  ArrivalOptions opts;
  opts.mode = ArrivalMode::kClosed;
  opts.streams = 3;
  opts.ops_per_stream = 20;
  const ArrivalStats stats =
      RunArrivals(env, opts, LoggingOp(env, &log, 10 * sim::kUs));
  EXPECT_EQ(stats.issued, 60u);
  EXPECT_EQ(stats.completed, 60u);
  EXPECT_EQ(log.issue_times.size(), 60u);
  // Closed loop: each stream strictly serial, 20 x 10us makespan.
  EXPECT_EQ(stats.Makespan(), 200 * sim::kUs);
}

TEST(ArrivalTest, FixedRateIssuesAtConstantGaps) {
  Environment env;
  OpLog log;
  ArrivalOptions opts;
  opts.mode = ArrivalMode::kOpenFixedRate;
  opts.streams = 1;
  opts.ops_per_stream = 5;
  opts.rate_per_stream = 1000.0;  // 1ms gap
  const ArrivalStats stats =
      RunArrivals(env, opts, LoggingOp(env, &log, 1 * sim::kUs));
  EXPECT_EQ(stats.issued, 5u);
  EXPECT_EQ(stats.completed, 5u);
  ASSERT_EQ(log.issue_times.size(), 5u);
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(log.issue_times[i], static_cast<Time>((i + 1) * sim::kMs));
  }
}

TEST(ArrivalTest, PoissonCountBoundedIssuesExactly) {
  Environment env;
  OpLog log;
  ArrivalOptions opts;
  opts.mode = ArrivalMode::kOpenPoisson;
  opts.streams = 2;
  opts.ops_per_stream = 50;
  opts.rate_per_stream = 100000.0;
  opts.seed = 7;
  const ArrivalStats stats =
      RunArrivals(env, opts, LoggingOp(env, &log, 1 * sim::kUs));
  EXPECT_EQ(stats.issued, 100u);
  EXPECT_EQ(stats.completed, 100u);
  // Gaps are random, not constant.
  ASSERT_GE(log.issue_times.size(), 3u);
  const Time g0 = log.issue_times[1] - log.issue_times[0];
  const Time g1 = log.issue_times[2] - log.issue_times[1];
  EXPECT_TRUE(g0 != g1 || log.issue_times[0] != g0);
}

TEST(ArrivalTest, OpenLoopLatencyIncludesQueueing) {
  // Arrivals every 1ms against a 5ms service: later arrivals do NOT
  // wait for earlier completions (open loop), and each op's recorded
  // latency is its own service time here (ops run as independent
  // processes against an uncontended fixed delay).
  Environment env;
  OpLog log;
  ArrivalOptions opts;
  opts.mode = ArrivalMode::kOpenFixedRate;
  opts.streams = 1;
  opts.ops_per_stream = 4;
  opts.rate_per_stream = 1000.0;
  const ArrivalStats stats =
      RunArrivals(env, opts, LoggingOp(env, &log, 5 * sim::kMs));
  EXPECT_EQ(stats.issued, 4u);
  EXPECT_EQ(stats.completed, 4u);
  // Issues at 1..4ms even though the first op completes at 6ms.
  EXPECT_EQ(log.issue_times.back(), 4 * sim::kMs);
  EXPECT_EQ(stats.latency.Max(), 5 * sim::kMs);
}

// ---------- per-stream stats accounting ----------

TEST(ArrivalTest, PerStreamHistogramsPartitionTheMerged) {
  Environment env;
  ArrivalOptions opts;
  opts.mode = ArrivalMode::kOpenPoisson;
  opts.streams = 4;
  opts.ops_per_stream = 25;
  opts.rate_per_stream = 50000.0;
  opts.seed = 11;
  // Per-stream distinct service times so the split is visible.
  const ArrivalStats stats = RunArrivals(
      env, opts, [&env](uint32_t stream, uint64_t) -> sim::Task<void> {
        co_await env.Delay((stream + 1) * sim::kUs);
      });
  ASSERT_EQ(stats.per_stream.size(), 4u);
  uint64_t sum = 0;
  for (uint32_t s = 0; s < 4; ++s) {
    EXPECT_EQ(stats.per_stream[s].count(), 25u);
    // Uncontended fixed delay: every sample in stream s is (s+1)us.
    EXPECT_EQ(stats.per_stream[s].Max(), (s + 1) * sim::kUs);
    sum += stats.per_stream[s].count();
  }
  EXPECT_EQ(stats.latency.count(), sum);
  EXPECT_EQ(stats.completed, sum);
}

// ---------- duration-bounded vs count-bounded termination ----------

TEST(ArrivalTest, DurationBoundStopsIssuing) {
  Environment env;
  OpLog log;
  ArrivalOptions opts;
  opts.mode = ArrivalMode::kOpenFixedRate;
  opts.streams = 1;
  opts.rate_per_stream = 10000.0;  // 100us gap
  opts.duration = 1 * sim::kMs;    // arrivals at 100..900us qualify
  const ArrivalStats stats =
      RunArrivals(env, opts, LoggingOp(env, &log, 1 * sim::kUs));
  EXPECT_EQ(stats.issued, 9u);
  for (const Time t : log.issue_times) EXPECT_LT(t, 1 * sim::kMs);
}

TEST(ArrivalTest, CountBoundWinsWhenTighterThanDuration) {
  Environment env;
  ArrivalOptions opts;
  opts.mode = ArrivalMode::kOpenFixedRate;
  opts.streams = 1;
  opts.ops_per_stream = 3;
  opts.rate_per_stream = 10000.0;
  opts.duration = 1 * sim::kSec;
  OpLog log;
  const ArrivalStats stats =
      RunArrivals(env, opts, LoggingOp(env, &log, 1 * sim::kUs));
  EXPECT_EQ(stats.issued, 3u);
}

TEST(ArrivalTest, UnboundedOpenLoopIssuesNothing) {
  // No rate, or neither bound: the generator refuses rather than
  // spinning forever.
  Environment env;
  OpLog log;
  ArrivalOptions opts;
  opts.mode = ArrivalMode::kOpenPoisson;
  opts.rate_per_stream = 0.0;
  opts.ops_per_stream = 10;
  EXPECT_EQ(RunArrivals(env, opts, LoggingOp(env, &log, 1)).issued, 0u);
  opts.rate_per_stream = 1000.0;
  opts.ops_per_stream = 0;
  opts.duration = 0;
  EXPECT_EQ(RunArrivals(env, opts, LoggingOp(env, &log, 1)).issued, 0u);
}

// ---------- regression: inclusive deadline ----------

// Pre-fix failing: with a 1ms gap and a 5ms duration the arrival at
// exactly t=5ms passed the old `env.now() > deadline` check and a 5th
// op was issued. Nearest the deadline must mean strictly before it.
TEST(ArrivalTest, ArrivalExactlyOnDeadlineIsNotIssued) {
  Environment env;
  OpLog log;
  ArrivalOptions opts;
  opts.mode = ArrivalMode::kOpenFixedRate;
  opts.streams = 1;
  opts.rate_per_stream = 1000.0;  // gaps of exactly 1ms
  opts.duration = 5 * sim::kMs;   // deadline lands ON the 5th arrival
  const ArrivalStats stats =
      RunArrivals(env, opts, LoggingOp(env, &log, 1 * sim::kUs));
  EXPECT_EQ(stats.issued, 4u);
  ASSERT_EQ(log.issue_times.size(), 4u);
  EXPECT_EQ(log.issue_times.back(), 4 * sim::kMs);
}

// ---------- regression: zero-gap clamp ----------

// Pre-fix failing: at 10^10 ops/s the mean gap is 0.1ns, which
// truncates to a 0ns delay — every issue lands at the same virtual
// instant (and a duration-bounded run would spin forever, since time
// never advances toward the deadline). The clamp guarantees >= 1ns
// between arrivals, so issue times strictly increase.
TEST(ArrivalTest, SubNanosecondGapsClampToOneNs) {
  Environment env;
  OpLog log;
  ArrivalOptions opts;
  opts.mode = ArrivalMode::kOpenFixedRate;
  opts.streams = 1;
  opts.ops_per_stream = 8;
  opts.rate_per_stream = 1e10;  // 0.1ns mean gap
  const ArrivalStats stats =
      RunArrivals(env, opts, LoggingOp(env, &log, 1 * sim::kUs));
  EXPECT_EQ(stats.issued, 8u);
  ASSERT_EQ(log.issue_times.size(), 8u);
  for (size_t i = 1; i < log.issue_times.size(); ++i) {
    EXPECT_LT(log.issue_times[i - 1], log.issue_times[i]);
  }
  EXPECT_EQ(log.issue_times.front(), 1u);  // 0.1ns draw -> 1ns clamp
}

TEST(ArrivalTest, ZeroGapPoissonTerminatesUnderDurationBound) {
  // Poisson at an absurd rate with ONLY a duration bound: pre-fix this
  // never advanced virtual time, so the loop never hit the deadline.
  Environment env;
  OpLog log;
  ArrivalOptions opts;
  opts.mode = ArrivalMode::kOpenPoisson;
  opts.streams = 1;
  opts.rate_per_stream = 1e12;
  opts.duration = 1 * sim::kUs;  // 1000ns of 1ns-clamped arrivals
  opts.seed = 3;
  const ArrivalStats stats = RunArrivals(env, opts, LoggingOp(env, &log, 1));
  EXPECT_GT(stats.issued, 0u);
  EXPECT_LE(stats.issued, 1000u);
}

// ---------- seed determinism ----------

TEST(ArrivalTest, SameSeedReproducesIssueSequence) {
  const auto run = [](uint64_t seed) {
    Environment env;
    OpLog log;
    ArrivalOptions opts;
    opts.mode = ArrivalMode::kOpenPoisson;
    opts.streams = 3;
    opts.ops_per_stream = 40;
    opts.rate_per_stream = 200000.0;
    opts.seed = seed;
    RunArrivals(env, opts, LoggingOp(env, &log, 2 * sim::kUs));
    return log;
  };
  const OpLog a = run(42), b = run(42), c = run(43);
  EXPECT_EQ(a.issue_times, b.issue_times);
  EXPECT_EQ(a.streams, b.streams);
  EXPECT_EQ(a.indices, b.indices);
  EXPECT_NE(a.issue_times, c.issue_times);
}

// ---------- gap_fn hook ----------

TEST(ArrivalTest, GapFnOverridesBaseRate) {
  Environment env;
  OpLog log;
  ArrivalOptions opts;
  opts.mode = ArrivalMode::kOpenPoisson;
  opts.streams = 1;
  opts.ops_per_stream = 3;
  opts.rate_per_stream = 1000.0;  // would be 1ms gaps
  opts.gap_fn = [](uint32_t, sim::Time, Rng&) { return 2e6; };  // 2ms
  RunArrivals(env, opts, LoggingOp(env, &log, 1 * sim::kUs));
  ASSERT_EQ(log.issue_times.size(), 3u);
  EXPECT_EQ(log.issue_times[0], 2 * sim::kMs);
  EXPECT_EQ(log.issue_times[2], 6 * sim::kMs);
}

TEST(ArrivalTest, GapFnSeesStreamSeededRng) {
  // The RNG handed to gap_fn is the stream's own seeded stream: two
  // runs with the same seed draw identical gap sequences.
  const auto run = [](uint64_t seed) {
    Environment env;
    OpLog log;
    ArrivalOptions opts;
    opts.mode = ArrivalMode::kOpenPoisson;
    opts.streams = 2;
    opts.ops_per_stream = 10;
    opts.rate_per_stream = 1.0;  // ignored by gap_fn
    opts.seed = seed;
    opts.gap_fn = [](uint32_t, sim::Time, Rng& rng) {
      return rng.Exponential(5e4);
    };
    RunArrivals(env, opts, LoggingOp(env, &log, 1 * sim::kUs));
    return log.issue_times;
  };
  EXPECT_EQ(run(9), run(9));
  EXPECT_NE(run(9), run(10));
}

}  // namespace
}  // namespace labstor::workload
