// Platform-surface tests: runtime config parsing, the debug harness,
// the adaptive cache's eviction behaviour, and the uring driver.
#include <gtest/gtest.h>

#include "core/debug_harness.h"
#include "kernelsim/paths.h"
#include "core/runtime_config.h"
#include "labmods/adaptive_cache.h"
#include "simdev/registry.h"

namespace labstor {
namespace {

// ---------- RuntimeConfig ----------

TEST(RuntimeConfigTest, FullConfigParses) {
  auto config = core::RuntimeConfig::Parse(
      "workers: 8\n"
      "admin_poll_ms: 3\n"
      "orchestrator:\n"
      "  policy: dynamic\n"
      "  lq_threshold_us: 50\n"
      "  loss_threshold: 0.2\n"
      "ipc:\n"
      "  segment_mb: 32\n"
      "  queue_depth: 512\n"
      "namespace:\n"
      "  max_stack_length: 8\n"
      "repos:\n"
      "  - /opt/mods\n"
      "devices:\n"
      "  - preset: nvme\n"
      "    name: fast0\n"
      "    capacity_mb: 128\n"
      "  - preset: hdd\n"
      "    capacity_mb: 512\n");
  ASSERT_TRUE(config.ok()) << config.status().ToString();
  EXPECT_EQ(config->options.max_workers, 8u);
  EXPECT_EQ(config->options.admin_poll.count(), 3);
  EXPECT_EQ(config->options.orchestrator->name(), "dynamic");
  EXPECT_EQ(config->options.ipc.segment_bytes, 32u << 20);
  EXPECT_EQ(config->options.ipc.queue_depth, 512u);
  EXPECT_EQ(config->options.ns.max_stack_length, 8u);
  ASSERT_EQ(config->devices.size(), 2u);
  EXPECT_EQ(config->devices[0].name, "fast0");
  EXPECT_EQ(config->devices[1].kind, simdev::DeviceKind::kHdd);
}

TEST(RuntimeConfigTest, DefaultsWhenSectionsAbsent) {
  auto config = core::RuntimeConfig::Parse("workers: 2\n");
  ASSERT_TRUE(config.ok());
  EXPECT_EQ(config->options.max_workers, 2u);
  EXPECT_EQ(config->options.orchestrator->name(), "dynamic");
}

TEST(RuntimeConfigTest, PolicyVariants) {
  auto rr = core::RuntimeConfig::Parse(
      "workers: 2\norchestrator:\n  policy: round_robin\n");
  ASSERT_TRUE(rr.ok());
  EXPECT_EQ(rr->options.orchestrator->name(), "round_robin");
  auto fixed = core::RuntimeConfig::Parse(
      "workers: 2\norchestrator:\n  policy: fixed\n  fixed_workers: 3\n");
  ASSERT_TRUE(fixed.ok());
  EXPECT_EQ(fixed->options.orchestrator->name(), "fixed");
}

TEST(RuntimeConfigTest, RejectsBadValues) {
  EXPECT_FALSE(core::RuntimeConfig::Parse("workers: 0\n").ok());
  EXPECT_FALSE(core::RuntimeConfig::Parse(
                   "workers: 2\nipc:\n  queue_depth: 1000\n")  // not pow2
                   .ok());
  EXPECT_FALSE(core::RuntimeConfig::Parse(
                   "workers: 2\norchestrator:\n  policy: psychic\n")
                   .ok());
  EXPECT_FALSE(core::RuntimeConfig::Parse(
                   "workers: 2\ndevices:\n  - preset: floppy\n")
                   .ok());
  EXPECT_FALSE(core::RuntimeConfig::Parse(
                   "workers: 2\nmax_repos_per_user: 1\nrepos:\n"
                   "  - /a\n  - /b\n")
                   .ok());
}

TEST(RuntimeConfigTest, ApplyDevicesRegisters) {
  auto config = core::RuntimeConfig::Parse(
      "workers: 2\ndevices:\n  - preset: pmem\n    name: pm0\n");
  ASSERT_TRUE(config.ok());
  simdev::DeviceRegistry registry;
  ASSERT_TRUE(config->ApplyDevices(registry).ok());
  EXPECT_TRUE(registry.Find("pm0").ok());
}

// ---------- DebugHarness ----------

core::ModContext HarnessContext(simdev::DeviceRegistry* devices) {
  core::ModContext ctx;
  ctx.devices = devices;
  ctx.num_workers = 1;
  return ctx;
}

TEST(DebugHarnessTest, IsolatesASchedulerMod) {
  simdev::DeviceRegistry devices;
  ASSERT_TRUE(devices.Create(simdev::DeviceParams::NvmeP3700(16 << 20)).ok());
  auto params = yaml::Parse("num_queues: 4\n");
  ASSERT_TRUE(params.ok());
  auto harness = core::DebugHarness::Create("noop_sched", *params,
                                            HarnessContext(&devices));
  ASSERT_TRUE(harness.ok()) << harness.status().ToString();
  ipc::Request req;
  req.op = ipc::OpCode::kBlkWrite;
  req.client_pid = 11;
  req.length = 4096;
  ASSERT_TRUE((*harness)->Feed(req).ok());
  EXPECT_EQ(req.channel, 11u % 4u);
  ASSERT_EQ((*harness)->sink().captured().size(), 1u);
  EXPECT_EQ((*harness)->sink().captured()[0].op, ipc::OpCode::kBlkWrite);
  EXPECT_GT((*harness)->trace().SoftwareFor("sched"), 0u);
}

TEST(DebugHarnessTest, SinkServesReads) {
  simdev::DeviceRegistry devices;
  auto harness = core::DebugHarness::Create("lru_cache", nullptr,
                                            HarnessContext(&devices));
  ASSERT_TRUE(harness.ok());
  (*harness)->sink().set_fill_byte(0x5A);
  std::vector<uint8_t> buf(4096, 0);
  ipc::Request req;
  req.op = ipc::OpCode::kBlkRead;
  req.offset = 0;
  req.length = buf.size();
  req.data = buf.data();
  ASSERT_TRUE((*harness)->Feed(req).ok());
  EXPECT_EQ(buf[0], 0x5A);
  EXPECT_EQ(buf[4095], 0x5A);
  // Second read: cache hit, the sink is not consulted again.
  (*harness)->sink().Clear();
  ASSERT_TRUE((*harness)->Feed(req).ok());
  EXPECT_TRUE((*harness)->sink().captured().empty());
}

TEST(DebugHarnessTest, UnknownModFails) {
  simdev::DeviceRegistry devices;
  EXPECT_FALSE(
      core::DebugHarness::Create("bogus", nullptr, HarnessContext(&devices))
          .ok());
}

// ---------- AdaptiveCache ----------

TEST(AdaptiveCacheTest, ProtectsHotPagesAgainstScans) {
  simdev::DeviceRegistry devices;
  auto params = yaml::Parse("capacity_pages: 8\n");
  ASSERT_TRUE(params.ok());
  auto harness = core::DebugHarness::Create("adaptive_cache", *params,
                                            HarnessContext(&devices));
  ASSERT_TRUE(harness.ok());
  auto* cache = dynamic_cast<labmods::AdaptiveCacheMod*>(&(*harness)->mod());
  ASSERT_NE(cache, nullptr);

  std::vector<uint8_t> buf(4096);
  const auto read_at = [&](uint64_t offset) {
    ipc::Request req;
    req.op = ipc::OpCode::kBlkRead;
    req.offset = offset;
    req.length = buf.size();
    req.data = buf.data();
    ASSERT_TRUE((*harness)->Feed(req).ok());
  };
  // Heat up pages 0 and 1.
  for (int i = 0; i < 30; ++i) {
    read_at(0);
    read_at(4096);
  }
  const uint64_t hits_before = cache->hits();
  // Scan through 20 cold pages (capacity is 8): the scan must evict
  // scan pages, not the hot ones.
  for (uint64_t p = 10; p < 30; ++p) read_at(p * 4096);
  read_at(0);
  read_at(4096);
  EXPECT_GE(cache->hits(), hits_before + 2)
      << "hot pages were evicted by a cold scan";
  EXPECT_LE(cache->resident_pages(), 8u);
}

TEST(AdaptiveCacheTest, StateMigratesOnUpgrade) {
  simdev::DeviceRegistry devices;
  auto a = core::DebugHarness::Create("adaptive_cache", nullptr,
                                      HarnessContext(&devices));
  ASSERT_TRUE(a.ok());
  std::vector<uint8_t> data(4096, 0x77);
  ipc::Request req;
  req.op = ipc::OpCode::kBlkWrite;
  req.length = data.size();
  req.data = data.data();
  ASSERT_TRUE((*a)->Feed(req).ok());

  labmods::AdaptiveCacheMod fresh;
  ASSERT_TRUE(fresh.StateUpdate((*a)->mod()).ok());
  EXPECT_EQ(fresh.resident_pages(), 1u);
}

// ---------- UringDriver ----------

TEST(UringDriverTest, ChargesKernelPathButMovesData) {
  simdev::DeviceRegistry devices;
  auto dev = devices.Create(simdev::DeviceParams::NvmeP3700(16 << 20));
  ASSERT_TRUE(dev.ok());
  auto harness = core::DebugHarness::Create("uring_driver", nullptr,
                                            HarnessContext(&devices));
  ASSERT_TRUE(harness.ok()) << harness.status().ToString();
  std::vector<uint8_t> data(4096, 0xCD);
  ipc::Request req;
  req.op = ipc::OpCode::kBlkWrite;
  req.offset = 8192;
  req.length = data.size();
  req.data = data.data();
  ASSERT_TRUE((*harness)->Feed(req).ok());
  // Functional write reached the device...
  std::vector<uint8_t> out(4096);
  ASSERT_TRUE((*dev)->ReadNow(8192, out).ok());
  EXPECT_EQ(out, data);
  // ...and the charge is the io_uring route, dearer than the bypass.
  const sim::SoftwareCosts& c = sim::DefaultCosts();
  EXPECT_EQ((*harness)->trace().SoftwareFor("uring_driver"),
            kernelsim::ApiOverhead(kernelsim::ApiKind::kIoUring, c));
}

}  // namespace
}  // namespace labstor
