// Unit tests for the substrate pieces of the bundled LabMods:
// allocator, compressor, metadata log, and the policy/cache/gate mods
// driven through hand-built two-vertex stacks.
#include <gtest/gtest.h>

#include <cstring>
#include <numeric>

#include "common/rng.h"
#include "core/module_registry.h"
#include "core/stack.h"
#include "core/stack_exec.h"
#include "labmods/block_allocator.h"
#include "labmods/compress.h"
#include "labmods/consistency.h"
#include "labmods/drivers.h"
#include "labmods/fslog.h"
#include "labmods/lru_cache.h"
#include "labmods/lz77.h"
#include "labmods/permissions.h"
#include "labmods/schedulers.h"
#include "simdev/registry.h"

namespace labstor::labmods {
namespace {

// ---------- PerWorkerAllocator ----------

uint64_t TotalBlocks(const std::vector<BlockExtent>& extents) {
  uint64_t total = 0;
  for (const BlockExtent& e : extents) total += e.count;
  return total;
}

TEST(AllocatorTest, EvenInitialDivision) {
  PerWorkerAllocator alloc(100, 1000, 4);
  EXPECT_EQ(alloc.FreeBlocks(), 1000u);
  for (uint32_t w = 0; w < 4; ++w) EXPECT_EQ(alloc.FreeBlocksOf(w), 250u);
}

TEST(AllocatorTest, ContiguousAllocationFromOwnPool) {
  PerWorkerAllocator alloc(0, 1000, 4);
  auto extents = alloc.Alloc(1, 10);
  ASSERT_TRUE(extents.ok());
  ASSERT_EQ(extents->size(), 1u);
  EXPECT_EQ(TotalBlocks(*extents), 10u);
  // Worker 1's pool starts at block 250.
  EXPECT_EQ((*extents)[0].start, 250u);
  EXPECT_EQ(alloc.FreeBlocksOf(1), 240u);
  EXPECT_EQ(alloc.steals(), 0u);
}

TEST(AllocatorTest, StealsWhenOwnPoolDry) {
  PerWorkerAllocator alloc(0, 100, 2);  // 50 each
  auto big = alloc.Alloc(0, 50);
  ASSERT_TRUE(big.ok());
  EXPECT_EQ(alloc.FreeBlocksOf(0), 0u);
  auto stolen = alloc.Alloc(0, 10);
  ASSERT_TRUE(stolen.ok());
  EXPECT_EQ(TotalBlocks(*stolen), 10u);
  EXPECT_GE(alloc.steals(), 1u);
  EXPECT_EQ(alloc.FreeBlocks(), 40u);
}

TEST(AllocatorTest, ExhaustionFailsCleanly) {
  PerWorkerAllocator alloc(0, 20, 2);
  EXPECT_TRUE(alloc.Alloc(0, 20).ok());
  auto fail = alloc.Alloc(0, 1);
  EXPECT_EQ(fail.status().code(), StatusCode::kResourceExhausted);
  // Partial requests roll back: free count unchanged after failure.
  EXPECT_EQ(alloc.FreeBlocks(), 0u);
}

TEST(AllocatorTest, FreeCoalesces) {
  PerWorkerAllocator alloc(0, 100, 1);
  auto a = alloc.Alloc(0, 100);
  ASSERT_TRUE(a.ok());
  // Free in shuffled pieces; a full-range alloc must succeed again
  // (only possible if ranges coalesced back into one).
  alloc.Free(0, BlockExtent{30, 30});
  alloc.Free(0, BlockExtent{0, 30});
  alloc.Free(0, BlockExtent{60, 40});
  auto again = alloc.Alloc(0, 100);
  ASSERT_TRUE(again.ok());
  ASSERT_EQ(again->size(), 1u);
  EXPECT_EQ((*again)[0].start, 0u);
}

TEST(AllocatorTest, ResizeShrinkDonatesFreeBlocks) {
  PerWorkerAllocator alloc(0, 400, 4);
  ASSERT_TRUE(alloc.Resize(2).ok());
  EXPECT_EQ(alloc.num_workers(), 2u);
  EXPECT_EQ(alloc.FreeBlocks(), 400u);  // nothing lost
  EXPECT_EQ(alloc.FreeBlocksOf(0) + alloc.FreeBlocksOf(1), 400u);
}

TEST(AllocatorTest, ResizeGrowStealsForNewWorkers) {
  PerWorkerAllocator alloc(0, 400, 2);
  ASSERT_TRUE(alloc.Resize(4, /*steal_blocks=*/50).ok());
  EXPECT_EQ(alloc.num_workers(), 4u);
  EXPECT_EQ(alloc.FreeBlocks(), 400u);
  EXPECT_EQ(alloc.FreeBlocksOf(2), 50u);
  EXPECT_EQ(alloc.FreeBlocksOf(3), 50u);
}

TEST(AllocatorTest, RebuildFromFreeRanges) {
  PerWorkerAllocator alloc({BlockExtent{10, 5}, BlockExtent{100, 20}}, 2);
  EXPECT_EQ(alloc.FreeBlocks(), 25u);
  auto got = alloc.Alloc(0, 25);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(TotalBlocks(*got), 25u);
}

TEST(AllocatorTest, RandomizedNoDoubleAllocation) {
  Rng rng(42);
  PerWorkerAllocator alloc(0, 2000, 4);
  std::vector<bool> owned(2000, false);
  std::vector<BlockExtent> held;
  for (int step = 0; step < 2000; ++step) {
    if (held.empty() || rng.Bernoulli(0.6)) {
      const uint32_t worker = static_cast<uint32_t>(rng.Uniform(4));
      auto extents = alloc.Alloc(worker, rng.Range(1, 8));
      if (!extents.ok()) continue;
      for (const BlockExtent& e : *extents) {
        for (uint64_t i = e.start; i < e.start + e.count; ++i) {
          ASSERT_FALSE(owned[i]) << "block " << i << " double-allocated";
          owned[i] = true;
        }
        held.push_back(e);
      }
    } else {
      const size_t victim = rng.Uniform(held.size());
      const BlockExtent e = held[victim];
      held.erase(held.begin() + static_cast<ptrdiff_t>(victim));
      for (uint64_t i = e.start; i < e.start + e.count; ++i) owned[i] = false;
      alloc.Free(static_cast<uint32_t>(rng.Uniform(4)), e);
    }
  }
  uint64_t held_blocks = 0;
  for (const BlockExtent& e : held) held_blocks += e.count;
  EXPECT_EQ(alloc.FreeBlocks(), 2000u - held_blocks);
}

// ---------- LZ77 ----------

void RoundTrip(const std::vector<uint8_t>& input) {
  const std::vector<uint8_t> compressed = Lz77Compress(input);
  auto restored = Lz77Decompress(compressed, input.size());
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(*restored, input);
}

TEST(Lz77Test, EmptyInput) { RoundTrip({}); }

TEST(Lz77Test, TinyInput) { RoundTrip({1, 2, 3}); }

TEST(Lz77Test, RepetitiveCompressesWell) {
  std::vector<uint8_t> input(100000);
  for (size_t i = 0; i < input.size(); ++i) input[i] = static_cast<uint8_t>(i % 7);
  const std::vector<uint8_t> compressed = Lz77Compress(input);
  EXPECT_LT(compressed.size(), input.size() / 4);
  RoundTrip(input);
}

TEST(Lz77Test, AllSameByte) {
  std::vector<uint8_t> input(65536, 0xAA);
  const std::vector<uint8_t> compressed = Lz77Compress(input);
  EXPECT_LT(compressed.size(), input.size() / 6);
  RoundTrip(input);
}

TEST(Lz77Test, RandomDataSurvives) {
  Rng rng(7);
  std::vector<uint8_t> input(50000);
  for (uint8_t& b : input) b = static_cast<uint8_t>(rng.Next());
  RoundTrip(input);  // may expand slightly but must round-trip
}

TEST(Lz77Test, TextLikeData) {
  std::string text;
  for (int i = 0; i < 500; ++i) {
    text += "particle simulation writes 8 floating point values per step; ";
  }
  std::vector<uint8_t> input(text.begin(), text.end());
  const std::vector<uint8_t> compressed = Lz77Compress(input);
  EXPECT_LT(compressed.size(), input.size() / 3);
  RoundTrip(input);
}

TEST(Lz77Test, CorruptionDetected) {
  std::vector<uint8_t> input(1000, 0x55);
  std::vector<uint8_t> compressed = Lz77Compress(input);
  compressed.resize(compressed.size() / 2);  // truncate
  EXPECT_FALSE(Lz77Decompress(compressed, input.size()).ok());
  EXPECT_FALSE(Lz77Decompress({}, 10).ok());
}

TEST(Lz77Test, SizeMismatchDetected) {
  std::vector<uint8_t> input(1000, 0x55);
  const std::vector<uint8_t> compressed = Lz77Compress(input);
  EXPECT_FALSE(Lz77Decompress(compressed, input.size() + 1).ok());
}

// ---------- MetadataLog ----------

TEST(MetadataLogTest, AppendAndReplayInSequenceOrder) {
  simdev::SimDevice device(nullptr, simdev::DeviceParams::NvmeP3700(8 << 20));
  MetadataLog log(&device, 0, /*workers=*/4, /*per_worker_records=*/64);
  // Interleave appends across workers.
  for (uint64_t i = 0; i < 20; ++i) {
    LogRecord record;
    record.op = LogOp::kCreate;
    record.inode_id = i;
    record.SetPath("/f" + std::to_string(i));
    ASSERT_TRUE(log.Append(static_cast<uint32_t>(i % 4), record).ok());
  }
  uint64_t expected_seq = 0;
  uint64_t count = 0;
  ASSERT_TRUE(log.Replay([&](const LogRecord& record) -> Status {
                   EXPECT_GT(record.seq, expected_seq);
                   expected_seq = record.seq;
                   ++count;
                   return Status::Ok();
                 })
                  .ok());
  EXPECT_EQ(count, 20u);
  EXPECT_EQ(log.records_appended(), 20u);
}

TEST(MetadataLogTest, RegionFull) {
  simdev::SimDevice device(nullptr, simdev::DeviceParams::NvmeP3700(8 << 20));
  MetadataLog log(&device, 0, 1, 4);
  LogRecord record;
  record.op = LogOp::kCreate;
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(log.Append(0, record).ok());
  EXPECT_EQ(log.Append(0, record).status().code(),
            StatusCode::kResourceExhausted);
}

TEST(MetadataLogTest, ReplaySurvivesReconstruction) {
  // A second MetadataLog over the same region must see the records
  // (this is what StateRepair relies on).
  simdev::SimDevice device(nullptr, simdev::DeviceParams::NvmeP3700(8 << 20));
  {
    MetadataLog log(&device, 0, 2, 64);
    LogRecord record;
    record.op = LogOp::kCreate;
    record.inode_id = 42;
    record.SetPath("/persisted");
    ASSERT_TRUE(log.Append(1, record).ok());
  }
  MetadataLog fresh(&device, 0, 2, 64);
  bool seen = false;
  ASSERT_TRUE(fresh
                  .Replay([&](const LogRecord& record) -> Status {
                    seen = record.inode_id == 42 &&
                           record.GetPath() == "/persisted";
                    return Status::Ok();
                  })
                  .ok());
  EXPECT_TRUE(seen);
}

// ---------- Mods through minimal stacks ----------

class ModStackTest : public ::testing::Test {
 protected:
  ModStackTest() {
    auto dev = devices_.Create(simdev::DeviceParams::NvmeP3700(64 << 20));
    EXPECT_TRUE(dev.ok());
    device_ = *dev;
    ctx_.devices = &devices_;
    ctx_.num_workers = 2;
  }

  core::Stack* MountYaml(const std::string& yaml) {
    auto spec = core::StackSpec::Parse(yaml);
    EXPECT_TRUE(spec.ok()) << spec.status().ToString();
    auto stack = ns_.Mount(*spec, registry_, ctx_, ipc::Credentials{1, 0, 0});
    EXPECT_TRUE(stack.ok()) << stack.status().ToString();
    return *stack;
  }

  Status Run(core::Stack* stack, ipc::Request& req, core::ExecTrace* trace) {
    core::StackExec exec(*stack, ctx_, *trace);
    return exec.Dispatch(req);
  }

  simdev::DeviceRegistry devices_;
  simdev::SimDevice* device_ = nullptr;
  core::ModuleRegistry registry_;
  core::ModContext ctx_;
  core::StackNamespace ns_;
};

TEST_F(ModStackTest, LruCacheWriteThroughAndReadHit) {
  core::Stack* stack = MountYaml(
      "mount: blk::/cache\n"
      "dag:\n"
      "  - mod: lru_cache\n"
      "    uuid: lru_t1\n"
      "    outputs: [drv_t1]\n"
      "  - mod: kernel_driver\n"
      "    uuid: drv_t1\n");
  std::vector<uint8_t> data(8192, 0x3C);
  ipc::Request req;
  req.op = ipc::OpCode::kBlkWrite;
  req.offset = 4096;
  req.length = data.size();
  req.data = data.data();
  core::ExecTrace trace;
  ASSERT_TRUE(Run(stack, req, &trace).ok());
  // Write-through: device saw the write.
  EXPECT_EQ(device_->stats().writes.load(), 1u);

  // Read back: served from cache, no device read.
  std::vector<uint8_t> out(8192, 0);
  req.op = ipc::OpCode::kBlkRead;
  req.data = out.data();
  core::ExecTrace trace2;
  ASSERT_TRUE(Run(stack, req, &trace2).ok());
  EXPECT_EQ(device_->stats().reads.load(), 0u);
  EXPECT_EQ(out, data);

  auto mod = registry_.Find("lru_t1");
  ASSERT_TRUE(mod.ok());
  auto* lru = dynamic_cast<LruCacheMod*>(*mod);
  ASSERT_NE(lru, nullptr);
  EXPECT_EQ(lru->hits(), 1u);
  EXPECT_EQ(lru->misses(), 0u);
}

TEST_F(ModStackTest, LruCacheMissFetchesAndFills) {
  core::Stack* stack = MountYaml(
      "mount: blk::/cache2\n"
      "dag:\n"
      "  - mod: lru_cache\n"
      "    uuid: lru_t2\n"
      "    outputs: [drv_t2]\n"
      "  - mod: kernel_driver\n"
      "    uuid: drv_t2\n");
  // Seed the device directly, bypassing the cache.
  std::vector<uint8_t> data(4096, 0x77);
  ASSERT_TRUE(device_->WriteNow(0, data).ok());

  std::vector<uint8_t> out(4096, 0);
  ipc::Request req;
  req.op = ipc::OpCode::kBlkRead;
  req.offset = 0;
  req.length = 4096;
  req.data = out.data();
  core::ExecTrace trace;
  const uint64_t reads_before = device_->stats().reads.load();
  ASSERT_TRUE(Run(stack, req, &trace).ok());
  EXPECT_EQ(device_->stats().reads.load(), reads_before + 1);
  EXPECT_EQ(out, data);
  // Second read hits.
  core::ExecTrace trace2;
  ASSERT_TRUE(Run(stack, req, &trace2).ok());
  EXPECT_EQ(device_->stats().reads.load(), reads_before + 1);
}

TEST_F(ModStackTest, LruCacheEvicts) {
  core::Stack* stack = MountYaml(
      "mount: blk::/cache3\n"
      "dag:\n"
      "  - mod: lru_cache\n"
      "    uuid: lru_t3\n"
      "    params:\n"
      "      capacity_pages: 4\n"
      "    outputs: [drv_t3]\n"
      "  - mod: kernel_driver\n"
      "    uuid: drv_t3\n");
  std::vector<uint8_t> data(4096, 1);
  ipc::Request req;
  req.op = ipc::OpCode::kBlkWrite;
  req.length = 4096;
  req.data = data.data();
  core::ExecTrace trace;
  for (int i = 0; i < 10; ++i) {
    req.offset = static_cast<uint64_t>(i) * 4096;
    ASSERT_TRUE(Run(stack, req, &trace).ok());
  }
  auto mod = registry_.Find("lru_t3");
  ASSERT_TRUE(mod.ok());
  EXPECT_EQ(dynamic_cast<LruCacheMod*>(*mod)->resident_pages(), 4u);
}

TEST_F(ModStackTest, PermissionsGateDeniesAndCounts) {
  core::Stack* stack = MountYaml(
      "mount: blk::/gated\n"
      "dag:\n"
      "  - mod: permissions\n"
      "    uuid: perm_t1\n"
      "    params:\n"
      "      default: deny\n"
      "      allow:\n"
      "        - prefix: blk::/gated/public\n"
      "          uids: [1000]\n"
      "    outputs: [drv_t4]\n"
      "  - mod: kernel_driver\n"
      "    uuid: drv_t4\n");
  std::vector<uint8_t> data(512, 9);
  ipc::Request req;
  req.op = ipc::OpCode::kBlkWrite;
  req.length = data.size();
  req.data = data.data();
  req.client_uid = 1000;
  req.SetPath("blk::/gated/public/x");
  core::ExecTrace trace;
  EXPECT_TRUE(Run(stack, req, &trace).ok());
  req.SetPath("blk::/gated/secret/x");
  core::ExecTrace trace2;
  EXPECT_EQ(Run(stack, req, &trace2).code(), StatusCode::kPermissionDenied);
  // Root bypasses.
  req.client_uid = 0;
  core::ExecTrace trace3;
  EXPECT_TRUE(Run(stack, req, &trace3).ok());

  auto mod = registry_.Find("perm_t1");
  ASSERT_TRUE(mod.ok());
  EXPECT_EQ(dynamic_cast<PermissionsMod*>(*mod)->checks_performed(), 3u);
}

TEST_F(ModStackTest, CompressRoundTripsThroughDevice) {
  core::Stack* stack = MountYaml(
      "mount: blk::/zip\n"
      "dag:\n"
      "  - mod: compress\n"
      "    uuid: zip_t1\n"
      "    outputs: [drv_t5]\n"
      "  - mod: kernel_driver\n"
      "    uuid: drv_t5\n");
  // Compressible payload.
  std::vector<uint8_t> data(16384);
  for (size_t i = 0; i < data.size(); ++i) data[i] = static_cast<uint8_t>(i % 11);
  ipc::Request req;
  req.op = ipc::OpCode::kBlkWrite;
  req.offset = 0;
  req.length = data.size();
  req.data = data.data();
  core::ExecTrace trace;
  ASSERT_TRUE(Run(stack, req, &trace).ok());

  auto mod = registry_.Find("zip_t1");
  ASSERT_TRUE(mod.ok());
  auto* zip = dynamic_cast<CompressMod*>(*mod);
  EXPECT_LT(zip->ratio(), 0.5);  // actually compressed
  EXPECT_EQ(device_->stats().bytes_written.load(), zip->bytes_out());

  std::vector<uint8_t> out(16384, 0);
  req.op = ipc::OpCode::kBlkRead;
  req.data = out.data();
  core::ExecTrace trace2;
  ASSERT_TRUE(Run(stack, req, &trace2).ok());
  EXPECT_EQ(out, data);
}

TEST_F(ModStackTest, ConsistencyWriteBackAbsorbsUntilFsync) {
  core::Stack* stack = MountYaml(
      "mount: blk::/wb\n"
      "dag:\n"
      "  - mod: consistency\n"
      "    uuid: wb_t1\n"
      "    params:\n"
      "      policy: write_back\n"
      "      watermark_extents: 100\n"
      "    outputs: [drv_t6]\n"
      "  - mod: kernel_driver\n"
      "    uuid: drv_t6\n");
  std::vector<uint8_t> data(4096, 0xBE);
  ipc::Request req;
  req.op = ipc::OpCode::kBlkWrite;
  req.offset = 0;
  req.length = 4096;
  req.data = data.data();
  core::ExecTrace trace;
  ASSERT_TRUE(Run(stack, req, &trace).ok());
  EXPECT_EQ(device_->stats().writes.load(), 0u);  // absorbed

  auto mod = registry_.Find("wb_t1");
  ASSERT_TRUE(mod.ok());
  auto* wb = dynamic_cast<ConsistencyMod*>(*mod);
  EXPECT_EQ(wb->dirty_extents(), 1u);

  // Read-your-writes from the dirty buffer.
  std::vector<uint8_t> out(4096, 0);
  req.op = ipc::OpCode::kBlkRead;
  req.data = out.data();
  core::ExecTrace trace2;
  ASSERT_TRUE(Run(stack, req, &trace2).ok());
  EXPECT_EQ(out, data);
  EXPECT_EQ(device_->stats().reads.load(), 0u);

  // Fsync flushes to the device.
  req.op = ipc::OpCode::kBlkFlush;
  req.data = nullptr;
  core::ExecTrace trace3;
  ASSERT_TRUE(Run(stack, req, &trace3).ok());
  EXPECT_EQ(device_->stats().writes.load(), 1u);
  EXPECT_EQ(wb->dirty_extents(), 0u);
}

TEST_F(ModStackTest, ConsistencyRelaxedSkipsFsync) {
  core::Stack* stack = MountYaml(
      "mount: blk::/relaxed\n"
      "dag:\n"
      "  - mod: consistency\n"
      "    uuid: rel_t1\n"
      "    params:\n"
      "      policy: relaxed\n"
      "    outputs: [drv_t7]\n"
      "  - mod: kernel_driver\n"
      "    uuid: drv_t7\n");
  std::vector<uint8_t> data(4096, 1);
  ipc::Request req;
  req.op = ipc::OpCode::kBlkWrite;
  req.length = 4096;
  req.data = data.data();
  core::ExecTrace trace;
  ASSERT_TRUE(Run(stack, req, &trace).ok());
  req.op = ipc::OpCode::kBlkFlush;
  core::ExecTrace trace2;
  ASSERT_TRUE(Run(stack, req, &trace2).ok());
  EXPECT_EQ(device_->stats().writes.load(), 0u);  // fsync was a no-op
}

TEST_F(ModStackTest, NoOpSchedMapsByOriginCore) {
  core::Stack* stack = MountYaml(
      "mount: blk::/noop\n"
      "dag:\n"
      "  - mod: noop_sched\n"
      "    uuid: noop_t1\n"
      "    params:\n"
      "      num_queues: 8\n"
      "    outputs: [drv_t8]\n"
      "  - mod: kernel_driver\n"
      "    uuid: drv_t8\n");
  ipc::Request req;
  req.op = ipc::OpCode::kBlkWrite;
  req.length = 0;
  req.client_pid = 13;
  core::ExecTrace trace;
  ASSERT_TRUE(Run(stack, req, &trace).ok());
  EXPECT_EQ(req.channel, 13u % 8u);
  // Deterministic per pid.
  req.client_pid = 21;
  core::ExecTrace trace2;
  ASSERT_TRUE(Run(stack, req, &trace2).ok());
  EXPECT_EQ(req.channel, 21u % 8u);
}

TEST_F(ModStackTest, BlkSwitchSeparatesSizeClasses) {
  core::Stack* stack = MountYaml(
      "mount: blk::/blksw\n"
      "dag:\n"
      "  - mod: blk_switch_sched\n"
      "    uuid: blksw_t1\n"
      "    params:\n"
      "      num_queues: 8\n"
      "      device: nvme0\n"
      "    outputs: [drv_t9]\n"
      "  - mod: kernel_driver\n"
      "    uuid: drv_t9\n");
  ipc::Request req;
  req.op = ipc::OpCode::kBlkWrite;
  req.length = 4096;  // latency class
  core::ExecTrace trace;
  ASSERT_TRUE(Run(stack, req, &trace).ok());
  EXPECT_LT(req.channel, 4u);
  req.length = 64 * 1024;  // throughput class
  core::ExecTrace trace2;
  ASSERT_TRUE(Run(stack, req, &trace2).ok());
  EXPECT_GE(req.channel, 4u);
}

TEST_F(ModStackTest, TraceRecordsComponentCosts) {
  core::Stack* stack = MountYaml(
      "mount: blk::/traced\n"
      "dag:\n"
      "  - mod: lru_cache\n"
      "    uuid: lru_tr\n"
      "    outputs: [sched_tr]\n"
      "  - mod: noop_sched\n"
      "    uuid: sched_tr\n"
      "    outputs: [drv_tr]\n"
      "  - mod: kernel_driver\n"
      "    uuid: drv_tr\n");
  std::vector<uint8_t> data(4096, 5);
  ipc::Request req;
  req.op = ipc::OpCode::kBlkWrite;
  req.length = 4096;
  req.data = data.data();
  core::ExecTrace trace;
  ASSERT_TRUE(Run(stack, req, &trace).ok());
  EXPECT_GT(trace.SoftwareFor("cache"), 0u);
  EXPECT_GT(trace.SoftwareFor("sched"), 0u);
  EXPECT_GT(trace.SoftwareFor("kernel_driver"), 0u);
  EXPECT_EQ(trace.SoftwareFor("cache") + trace.SoftwareFor("sched") +
                trace.SoftwareFor("kernel_driver"),
            trace.TotalSoftware());
  ASSERT_EQ(trace.device_ops().size(), 1u);
  EXPECT_EQ(trace.device_ops()[0].length, 4096u);
}

}  // namespace
}  // namespace labstor::labmods
