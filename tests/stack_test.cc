#include "core/stack.h"

#include <gtest/gtest.h>

#include "core/module_registry.h"
#include "simdev/registry.h"

namespace labstor::core {
namespace {

constexpr const char* kFullStackYaml =
    "mount: fs::/a\n"
    "rules:\n"
    "  exec_mode: sync\n"
    "dag:\n"
    "  - mod: permissions\n"
    "    uuid: perm1\n"
    "    outputs: [fs1]\n"
    "  - mod: labfs\n"
    "    uuid: fs1\n"
    "    outputs: [lru1]\n"
    "  - mod: lru_cache\n"
    "    uuid: lru1\n"
    "    outputs: [sched1]\n"
    "  - mod: noop_sched\n"
    "    uuid: sched1\n"
    "    outputs: [drv1]\n"
    "  - mod: kernel_driver\n"
    "    uuid: drv1\n";

class StackTest : public ::testing::Test {
 protected:
  StackTest() {
    auto dev = devices_.Create(simdev::DeviceParams::NvmeP3700(256 << 20));
    EXPECT_TRUE(dev.ok());
    ctx_.devices = &devices_;
    ctx_.num_workers = 2;
  }

  simdev::DeviceRegistry devices_;
  ModuleRegistry registry_;
  ModContext ctx_;
  StackNamespace ns_;
  ipc::Credentials alice_{100, 1000, 1000};
};

TEST_F(StackTest, ParseFullSpec) {
  auto spec = StackSpec::Parse(kFullStackYaml);
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_EQ(spec->mount, "fs::/a");
  EXPECT_EQ(spec->rules.exec_mode, ExecMode::kSync);
  ASSERT_EQ(spec->dag.size(), 5u);
  EXPECT_EQ(spec->dag[0].mod_name, "permissions");
  EXPECT_EQ(spec->dag[0].outputs, std::vector<std::string>{"fs1"});
}

TEST_F(StackTest, ParseRejectsMissingPieces) {
  EXPECT_FALSE(StackSpec::Parse("dag:\n  - mod: labfs\n").ok());  // no mount
  EXPECT_FALSE(StackSpec::Parse("mount: fs::/a\n").ok());         // no dag
  EXPECT_FALSE(
      StackSpec::Parse("mount: a\nrules:\n  exec_mode: warp\ndag:\n  - mod: m\n")
          .ok());  // bad exec mode
}

TEST_F(StackTest, ValidateCatchesUnknownOutput) {
  auto spec = StackSpec::Parse(
      "mount: fs::/a\n"
      "dag:\n"
      "  - mod: noop_sched\n"
      "    uuid: s\n"
      "    outputs: [ghost]\n");
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(ns_.Validate(*spec).code(), StatusCode::kInvalidArgument);
}

TEST_F(StackTest, ValidateCatchesDuplicateUuid) {
  auto spec = StackSpec::Parse(
      "mount: fs::/a\n"
      "dag:\n"
      "  - mod: noop_sched\n"
      "    uuid: x\n"
      "  - mod: kernel_driver\n"
      "    uuid: x\n");
  ASSERT_TRUE(spec.ok());
  EXPECT_FALSE(ns_.Validate(*spec).ok());
}

TEST_F(StackTest, ValidateCatchesCycle) {
  auto spec = StackSpec::Parse(
      "mount: fs::/a\n"
      "dag:\n"
      "  - mod: noop_sched\n"
      "    uuid: a\n"
      "    outputs: [b]\n"
      "  - mod: noop_sched\n"
      "    uuid: b\n"
      "    outputs: [a]\n");
  ASSERT_TRUE(spec.ok());
  EXPECT_FALSE(ns_.Validate(*spec).ok());
}

TEST_F(StackTest, ValidateEnforcesMaxLength) {
  StackNamespace tiny(StackNamespace::Options{.max_stack_length = 2});
  auto spec = StackSpec::Parse(kFullStackYaml);
  ASSERT_TRUE(spec.ok());
  EXPECT_FALSE(tiny.Validate(*spec).ok());
}

TEST_F(StackTest, MountBuildsAndWiresDag) {
  auto spec = StackSpec::Parse(kFullStackYaml);
  ASSERT_TRUE(spec.ok());
  auto stack = ns_.Mount(*spec, registry_, ctx_, alice_);
  ASSERT_TRUE(stack.ok()) << stack.status().ToString();
  EXPECT_GT((*stack)->id, 0u);
  ASSERT_EQ((*stack)->vertices.size(), 5u);
  EXPECT_EQ((*stack)->vertices[0].mod->mod_name(), "permissions");
  EXPECT_EQ((*stack)->vertices[0].outputs, std::vector<size_t>{1});
  EXPECT_EQ((*stack)->vertices[4].mod->mod_name(), "kernel_driver");
  EXPECT_TRUE((*stack)->vertices[4].outputs.empty());
  // Mods landed in the registry under their UUIDs.
  EXPECT_TRUE(registry_.Has("fs1"));
  EXPECT_TRUE(registry_.Has("drv1"));
}

TEST_F(StackTest, MountRejectsIncompatibleEdge) {
  auto spec = StackSpec::Parse(
      "mount: fs::/bad\n"
      "dag:\n"
      "  - mod: kernel_driver\n"
      "    uuid: d\n"
      "    outputs: [s]\n"
      "  - mod: noop_sched\n"
      "    uuid: s\n"
      "    outputs: [d2]\n"
      "  - mod: kernel_driver\n"
      "    uuid: d2\n");
  ASSERT_TRUE(spec.ok());
  EXPECT_FALSE(ns_.Mount(*spec, registry_, ctx_, alice_).ok());
}

TEST_F(StackTest, MountRejectsNonTerminalSink) {
  auto spec = StackSpec::Parse(
      "mount: fs::/bad\n"
      "dag:\n"
      "  - mod: noop_sched\n"
      "    uuid: s\n");
  ASSERT_TRUE(spec.ok());
  auto mounted = ns_.Mount(*spec, registry_, ctx_, alice_);
  EXPECT_FALSE(mounted.ok());
}

TEST_F(StackTest, MountPointConflictRejected) {
  auto spec = StackSpec::Parse(kFullStackYaml);
  ASSERT_TRUE(spec.ok());
  ASSERT_TRUE(ns_.Mount(*spec, registry_, ctx_, alice_).ok());
  EXPECT_EQ(ns_.Mount(*spec, registry_, ctx_, alice_).status().code(),
            StatusCode::kAlreadyExists);
}

TEST_F(StackTest, SharedInstanceAcrossStacks) {
  // Two stacks referencing the same driver UUID share the instance —
  // the paper's "multiple views over the same device".
  auto spec1 = StackSpec::Parse(kFullStackYaml);
  ASSERT_TRUE(spec1.ok());
  ASSERT_TRUE(ns_.Mount(*spec1, registry_, ctx_, alice_).ok());
  auto spec2 = StackSpec::Parse(
      "mount: fs::/b\n"
      "dag:\n"
      "  - mod: labfs\n"
      "    uuid: fs1\n"
      "    outputs: [drv1]\n"
      "  - mod: kernel_driver\n"
      "    uuid: drv1\n");
  ASSERT_TRUE(spec2.ok());
  auto stack2 = ns_.Mount(*spec2, registry_, ctx_, alice_);
  ASSERT_TRUE(stack2.ok()) << stack2.status().ToString();
  auto fs = registry_.Find("fs1");
  ASSERT_TRUE(fs.ok());
  EXPECT_EQ((*stack2)->vertices[0].mod, *fs);
  EXPECT_EQ(registry_.InstancesOf("labfs").size(), 1u);
}

TEST_F(StackTest, ResolveLongestPrefix) {
  auto spec1 = StackSpec::Parse(kFullStackYaml);  // fs::/a
  ASSERT_TRUE(spec1.ok());
  ASSERT_TRUE(ns_.Mount(*spec1, registry_, ctx_, alice_).ok());
  auto spec2 = StackSpec::Parse(
      "mount: fs::/a/deep\n"
      "dag:\n"
      "  - mod: labfs\n"
      "    uuid: fs2\n"
      "    outputs: [drv2]\n"
      "  - mod: kernel_driver\n"
      "    uuid: drv2\n");
  ASSERT_TRUE(spec2.ok());
  ASSERT_TRUE(ns_.Mount(*spec2, registry_, ctx_, alice_).ok());

  auto shallow = ns_.Resolve("fs::/a/file.txt");
  ASSERT_TRUE(shallow.ok());
  EXPECT_EQ((*shallow)->spec.mount, "fs::/a");
  auto deep = ns_.Resolve("fs::/a/deep/file.txt");
  ASSERT_TRUE(deep.ok());
  EXPECT_EQ((*deep)->spec.mount, "fs::/a/deep");
  auto exact = ns_.Resolve("fs::/a/deep");
  ASSERT_TRUE(exact.ok());
  EXPECT_EQ((*exact)->spec.mount, "fs::/a/deep");
  EXPECT_FALSE(ns_.Resolve("fs::/ax").ok());  // not a path-boundary match
  EXPECT_FALSE(ns_.Resolve("other::/x").ok());
}

TEST_F(StackTest, UnmountRequiresAdmin) {
  auto spec = StackSpec::Parse(kFullStackYaml);
  ASSERT_TRUE(spec.ok());
  ASSERT_TRUE(ns_.Mount(*spec, registry_, ctx_, alice_).ok());
  const ipc::Credentials mallory{666, 2000, 2000};
  EXPECT_EQ(ns_.Unmount("fs::/a", mallory).code(),
            StatusCode::kPermissionDenied);
  // The mounting user is an implicit admin; root always may.
  EXPECT_TRUE(ns_.Unmount("fs::/a", alice_).ok());
  EXPECT_EQ(ns_.size(), 0u);
}

TEST_F(StackTest, ModifyReplacesDag) {
  auto spec = StackSpec::Parse(kFullStackYaml);
  ASSERT_TRUE(spec.ok());
  ASSERT_TRUE(ns_.Mount(*spec, registry_, ctx_, alice_).ok());
  // Remove the permissions vertex (Lab-All -> Lab-Min, live).
  auto updated = StackSpec::Parse(
      "mount: fs::/a\n"
      "rules:\n"
      "  exec_mode: sync\n"
      "dag:\n"
      "  - mod: labfs\n"
      "    uuid: fs1\n"
      "    outputs: [lru1]\n"
      "  - mod: lru_cache\n"
      "    uuid: lru1\n"
      "    outputs: [sched1]\n"
      "  - mod: noop_sched\n"
      "    uuid: sched1\n"
      "    outputs: [drv1]\n"
      "  - mod: kernel_driver\n"
      "    uuid: drv1\n");
  ASSERT_TRUE(updated.ok());
  ASSERT_TRUE(ns_.Modify(*updated, registry_, ctx_, alice_).ok());
  auto stack = ns_.FindByMount("fs::/a");
  ASSERT_TRUE(stack.ok());
  EXPECT_EQ((*stack)->vertices.size(), 4u);
  EXPECT_EQ((*stack)->vertices[0].mod->mod_name(), "labfs");
  // Identity preserved.
  EXPECT_EQ((*stack)->id, 1u);
  // Non-admin cannot modify.
  const ipc::Credentials mallory{666, 2000, 2000};
  EXPECT_EQ(ns_.Modify(*updated, registry_, ctx_, mallory).code(),
            StatusCode::kPermissionDenied);
}

TEST_F(StackTest, FindByIdAndMounts) {
  auto spec = StackSpec::Parse(kFullStackYaml);
  ASSERT_TRUE(spec.ok());
  auto stack = ns_.Mount(*spec, registry_, ctx_, alice_);
  ASSERT_TRUE(stack.ok());
  auto by_id = ns_.FindById((*stack)->id);
  ASSERT_TRUE(by_id.ok());
  EXPECT_EQ(*by_id, *stack);
  EXPECT_FALSE(ns_.FindById(999).ok());
  EXPECT_EQ(ns_.Mounts().size(), 1u);
}

TEST(CanForwardTest, Matrix) {
  using core::CanForward;
  using core::ModType;
  EXPECT_TRUE(CanForward(ModType::kPermissions, ModType::kFilesystem));
  EXPECT_TRUE(CanForward(ModType::kFilesystem, ModType::kCache));
  EXPECT_TRUE(CanForward(ModType::kFilesystem, ModType::kDriver));
  EXPECT_TRUE(CanForward(ModType::kCache, ModType::kScheduler));
  EXPECT_TRUE(CanForward(ModType::kScheduler, ModType::kDriver));
  EXPECT_TRUE(CanForward(ModType::kTransform, ModType::kTransform));
  EXPECT_FALSE(CanForward(ModType::kDriver, ModType::kScheduler));
  EXPECT_FALSE(CanForward(ModType::kScheduler, ModType::kCache));
  EXPECT_FALSE(CanForward(ModType::kFilesystem, ModType::kFilesystem));
  EXPECT_FALSE(CanForward(ModType::kGeneric, ModType::kFilesystem));
  EXPECT_FALSE(CanForward(ModType::kPermissions, ModType::kGeneric));
}

}  // namespace
}  // namespace labstor::core
