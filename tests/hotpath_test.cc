// Hot-path regression suite (DESIGN.md §7): the lock-free assignment
// table, batch draining, the zero-allocation steady state, and
// rebalance-vs-drain races.
//
// This binary installs a counting global allocator so the
// steady-state test can assert the worker datapath performs zero heap
// allocations per request once warm.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <new>
#include <thread>
#include <unordered_set>
#include <vector>

#include "core/client.h"
#include "core/runtime.h"
#include "faultinject/faultinject.h"
#include "ipc/queue_pair.h"
#include "labmods/dummy.h"
#include "simdev/registry.h"

// ---------------------------------------------------------------
// Counting allocator: every C++ heap allocation in the process bumps
// one relaxed atomic, including allocations made by runtime worker
// threads inside a measured window.
// ---------------------------------------------------------------

// Sanitizers interpose their own allocator and track alloc/dealloc
// pairing across shared-library boundaries (libgtest); overriding
// operator new/delete underneath them produces false
// alloc-dealloc-mismatch reports. Counting is disabled there — the
// sanitize CI job still runs every behavioral assertion, and the plain
// tier-1 job checks the zero-allocation invariant.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define LABSTOR_COUNT_ALLOCS 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define LABSTOR_COUNT_ALLOCS 0
#else
#define LABSTOR_COUNT_ALLOCS 1
#endif
#else
#define LABSTOR_COUNT_ALLOCS 1
#endif

namespace {
std::atomic<uint64_t> g_heap_allocs{0};
uint64_t HeapAllocs() { return g_heap_allocs.load(std::memory_order_relaxed); }
}  // namespace

#if LABSTOR_COUNT_ALLOCS
void* operator new(std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (posix_memalign(&p, static_cast<std::size_t>(align), size ? size : 1) !=
      0) {
    throw std::bad_alloc();
  }
  return p;
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
// GCC pairs the inlined malloc-backed operator new with these frees
// and reports a mismatch that isn't one.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
#pragma GCC diagnostic pop
#endif  // LABSTOR_COUNT_ALLOCS

namespace labstor::core {
namespace {

using namespace std::chrono_literals;

StackSpec DummyStack(const std::string& mount, const std::string& uuid) {
  auto spec = StackSpec::Parse("mount: " + mount +
                               "\n"
                               "dag:\n"
                               "  - mod: dummy\n"
                               "    uuid: " +
                               uuid + "\n");
  EXPECT_TRUE(spec.ok()) << spec.status().ToString();
  return *spec;
}

class HotpathTest : public ::testing::Test {
 protected:
  HotpathTest() : devices_(nullptr) {
    auto dev = devices_.Create(simdev::DeviceParams::NvmeP3700(64 << 20));
    EXPECT_TRUE(dev.ok());
  }

  void TearDown() override { injector_.Uninstall(); }

  static faultinject::FaultPolicy Once(StatusCode code) {
    faultinject::FaultPolicy policy;
    policy.trigger = faultinject::FaultPolicy::Trigger::kOnce;
    policy.code = code;
    return policy;
  }

  simdev::DeviceRegistry devices_;
  faultinject::FaultInjector injector_{42};
};

// Pump one request ping-pong through a raw channel: Reuse + submit,
// then poll IsDone. Allocation-free by construction so it can run
// inside a counted window.
void PumpOne(ipc::ClientChannel& channel, ipc::Request* req,
             uint32_t stack_id) {
  req->Reuse();
  req->op = ipc::OpCode::kDummy;
  req->stack_id = stack_id;
  while (!channel.qp->Submit(req)) std::this_thread::yield();
  while (!req->IsDone()) std::this_thread::yield();
  while (channel.qp->PollCompletion().has_value()) {
  }
}

TEST_F(HotpathTest, SteadyStateExecutionAllocatesNothing) {
#if !LABSTOR_COUNT_ALLOCS
  GTEST_SKIP() << "allocation counting disabled under sanitizers";
#endif
  Runtime::Options options;
  options.max_workers = 2;
  // Keep the admin thread out of the measured window (first periodic
  // rebalance would land at 10 * admin_poll).
  options.admin_poll = 500ms;
  Runtime runtime(std::move(options), devices_);
  auto stack = runtime.MountStack(DummyStack("ctl::/zalloc", "dummy_za"),
                                  ipc::Credentials{1, 0, 0});
  ASSERT_TRUE(stack.ok());
  ASSERT_TRUE(runtime.Start().ok());
  auto channel = runtime.ipc().Connect(ipc::Credentials{77, 1000, 1000});
  ASSERT_TRUE(channel.ok());
  ipc::Request* req = channel->NewRequest();
  ASSERT_NE(req, nullptr);

  // Warm-up: thread-local scratch construction, stack-cache fill, ring
  // wrap, lazy libc state.
  for (int i = 0; i < 512; ++i) PumpOne(*channel, req, (*stack)->id);

  const uint64_t allocs_before = HeapAllocs();
  constexpr int kSteadyRequests = 2000;
  for (int i = 0; i < kSteadyRequests; ++i) {
    PumpOne(*channel, req, (*stack)->id);
  }
  const uint64_t allocs = HeapAllocs() - allocs_before;

  EXPECT_EQ(allocs, 0u) << "steady-state datapath allocated " << allocs
                        << " times over " << kSteadyRequests << " requests";
  ASSERT_TRUE(runtime.Stop().ok());
}

TEST_F(HotpathTest, QueuePairBatchDrainPreservesFifo) {
  ipc::QueuePair qp(/*id=*/9, ipc::QueueKind::kPrimary, /*ordered=*/false,
                    /*depth_pow2=*/16, ipc::Credentials{1, 0, 0});
  std::vector<ipc::Request> backing(10);
  for (size_t i = 0; i < backing.size(); ++i) {
    backing[i].id = i;
    ASSERT_TRUE(qp.Submit(&backing[i]));
  }
  ipc::Request* out[16] = {};
  // Partial batch: only as many as requested.
  ASSERT_EQ(qp.PollSubmissionBatch(out, 4), 4u);
  for (size_t i = 0; i < 4; ++i) EXPECT_EQ(out[i]->id, i);
  // Remainder in one oversized ask.
  ASSERT_EQ(qp.PollSubmissionBatch(out, 16), 6u);
  for (size_t i = 0; i < 6; ++i) EXPECT_EQ(out[i]->id, i + 4);
  EXPECT_EQ(qp.PollSubmissionBatch(out, 16), 0u);

  // Batched completion push round-trips through PollCompletion.
  ipc::Request* completions[10];
  for (size_t i = 0; i < 10; ++i) completions[i] = &backing[i];
  EXPECT_EQ(qp.CompleteBatch(completions, 10), 10u);
  for (size_t i = 0; i < 10; ++i) {
    auto polled = qp.PollCompletion();
    ASSERT_TRUE(polled.has_value());
    EXPECT_EQ((*polled)->id, i);
  }
}

TEST_F(HotpathTest, EstProcessingEwmaFoldsSamples) {
  ipc::QueuePair qp(/*id=*/3, ipc::QueueKind::kPrimary, /*ordered=*/false,
                    /*depth_pow2=*/8, ipc::Credentials{1, 0, 0});
  qp.UpdateEstProcessing(8000);
  EXPECT_EQ(qp.est_processing_ns.load(), 8000u);  // first sample seeds
  qp.UpdateEstProcessing(16000);
  EXPECT_EQ(qp.est_processing_ns.load(), 9000u);  // (8000*7 + 16000)/8
  // Concurrent folding loses no update (CAS loop): hammer from two
  // threads and require the estimate lands inside the sample range.
  std::thread a([&] {
    for (int i = 0; i < 20000; ++i) qp.UpdateEstProcessing(1000);
  });
  std::thread b([&] {
    for (int i = 0; i < 20000; ++i) qp.UpdateEstProcessing(2000);
  });
  a.join();
  b.join();
  const uint64_t est = qp.est_processing_ns.load();
  EXPECT_GE(est, 1000u);
  EXPECT_LE(est, 2000u);
}

// Regression for the live-worker bin mapping in Rebalance: after a
// worker dies, no queue may stay assigned to it (it would never drain
// again) and every primary queue must land on some live worker.
TEST_F(HotpathTest, RebalanceAfterWorkerDeathStrandsNoQueue) {
  Runtime::Options options;
  options.max_workers = 3;
  options.admin_poll = 2ms;
  options.ipc.request_timeout = 100ms;  // fast wait-timeout → fast retry
  Runtime runtime(std::move(options), devices_);
  auto stack = runtime.MountStack(DummyStack("ctl::/death", "dummy_dw"),
                                  ipc::Credentials{1, 0, 0});
  ASSERT_TRUE(stack.ok());
  ASSERT_TRUE(runtime.Start().ok());

  // Several clients → several primary queues to redistribute.
  RetryPolicy retry;
  retry.max_attempts = 6;
  Client client(runtime, ipc::Credentials{90, 1000, 1000}, retry);
  ASSERT_TRUE(client.Connect().ok());
  auto extra1 = runtime.ipc().Connect(ipc::Credentials{91, 1000, 1000});
  auto extra2 = runtime.ipc().Connect(ipc::Credentials{92, 1000, 1000});
  ASSERT_TRUE(extra1.ok());
  ASSERT_TRUE(extra2.ok());

  injector_.Arm("core.worker.death", Once(StatusCode::kInternal));
  injector_.Install();
  // The worker that dequeues this dies with it; the client's retry
  // path recovers through a surviving worker.
  auto req = client.NewRequest();
  ASSERT_TRUE(req.ok());
  (*req)->op = ipc::OpCode::kDummy;
  EXPECT_TRUE(client.Execute(**req, **stack).ok());
  ASSERT_EQ(runtime.dead_workers(), 1u);

  // Let the admin's periodic rebalance incorporate the late-connected
  // queues as well, then audit the published table.
  std::this_thread::sleep_for(100ms);
  size_t dead_id = 3;
  for (size_t w = 0; w < 3; ++w) {
    if (runtime.worker_dead(w)) dead_id = w;
  }
  ASSERT_LT(dead_id, 3u);
  EXPECT_TRUE(runtime.AssignedQueues(dead_id).empty())
      << "queue assigned to dead worker " << dead_id;
  std::unordered_set<ipc::QueuePair*> assigned;
  for (size_t w = 0; w < 3; ++w) {
    if (w == dead_id) continue;
    for (ipc::QueuePair* qp : runtime.AssignedQueues(w)) assigned.insert(qp);
  }
  for (ipc::QueuePair* qp : runtime.ipc().PrimaryQueues()) {
    EXPECT_TRUE(assigned.contains(qp))
        << "primary queue " << qp->id() << " stranded on no live worker";
  }
  ASSERT_TRUE(runtime.Stop().ok());
}

// Stress the lock-free snapshot: one thread hammers pipelined requests
// while the main thread forces continuous republishes (every mount
// triggers a Rebalance) and lock-free readers run concurrently. Run
// under TSan/ASan this is the data-race regression for the
// publish/reload protocol.
TEST_F(HotpathTest, RebalanceDuringDrainStress) {
  Runtime::Options options;
  options.max_workers = 3;
  options.admin_poll = 1ms;  // aggressive periodic rebalances too
  Runtime runtime(std::move(options), devices_);
  auto stack = runtime.MountStack(DummyStack("ctl::/stress", "dummy_st"),
                                  ipc::Credentials{1, 0, 0});
  ASSERT_TRUE(stack.ok());
  ASSERT_TRUE(runtime.Start().ok());
  auto channel = runtime.ipc().Connect(ipc::Credentials{95, 1000, 1000});
  ASSERT_TRUE(channel.ok());

  constexpr size_t kInFlight = 8;
  std::vector<ipc::Request*> requests;
  for (size_t i = 0; i < kInFlight; ++i) {
    ipc::Request* r = channel->NewRequest();
    ASSERT_NE(r, nullptr);
    requests.push_back(r);
  }
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> completed{0};
  std::thread pump([&] {
    const auto submit = [&](ipc::Request* r) {
      r->Reuse();
      r->op = ipc::OpCode::kDummy;
      r->stack_id = (*stack)->id;
      while (!channel->qp->Submit(r)) {
        if (stop.load(std::memory_order_relaxed)) return false;
        std::this_thread::yield();
      }
      return true;
    };
    for (ipc::Request* r : requests) {
      if (!submit(r)) return;
    }
    while (!stop.load(std::memory_order_relaxed)) {
      for (ipc::Request* r : requests) {
        if (!r->IsDone()) continue;
        completed.fetch_add(1, std::memory_order_relaxed);
        if (!submit(r)) return;
      }
      while (channel->qp->PollCompletion().has_value()) {
      }
    }
  });

  const uint64_t gen_before = runtime.assignment_generation();
  for (int i = 0; i < 40; ++i) {
    const std::string mount = "ctl::/churn" + std::to_string(i);
    const std::string uuid = "dummy_ch" + std::to_string(i);
    auto churn =
        runtime.MountStack(DummyStack(mount, uuid), ipc::Credentials{1, 0, 0});
    ASSERT_TRUE(churn.ok());
    // Concurrent lock-free reads of the table under publish churn.
    for (size_t w = 0; w < 3; ++w) (void)runtime.AssignedQueues(w);
    ASSERT_TRUE(
        runtime.UnmountStack(mount, ipc::Credentials{1, 0, 0}).ok());
    std::this_thread::sleep_for(1ms);
  }
  // Let the pump make progress through the churned tables.
  const uint64_t done_floor = completed.load() + 50;
  const auto deadline = std::chrono::steady_clock::now() + 30s;
  while (completed.load() < done_floor &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(1ms);
  }
  stop.store(true);
  pump.join();
  // Tail: every request still in flight must complete before teardown.
  for (ipc::Request* r : requests) {
    const auto tail_deadline = std::chrono::steady_clock::now() + 30s;
    while (!r->IsDone() &&
           std::chrono::steady_clock::now() < tail_deadline) {
      std::this_thread::yield();
    }
    EXPECT_TRUE(r->IsDone());
  }
  EXPECT_GE(runtime.assignment_generation(), gen_before + 40);
  EXPECT_GE(completed.load(), done_floor);
  EXPECT_EQ(runtime.dead_workers(), 0u);
  ASSERT_TRUE(runtime.Stop().ok());
}

// Client::Execute must reap its completion ring after every wait.
// Completions are pure notifications (the client learns completion by
// polling req->state), so left unreaped the cq fills after `depth`
// round trips and every later completion is counted dropped by the
// worker. A tiny depth makes the regression bite fast: 200 round
// trips over a depth-8 ring leave it full unless each Execute drains.
TEST_F(HotpathTest, ClientExecuteReapsCompletionRing) {
  Runtime::Options options;
  options.max_workers = 1;
  options.admin_poll = 500ms;  // keep the admin quiet during the loop
  options.ipc.queue_depth = 8;
  Runtime runtime(std::move(options), devices_);
  auto stack = runtime.MountStack(DummyStack("ctl::/reap", "dummy_rc"),
                                  ipc::Credentials{1, 0, 0});
  ASSERT_TRUE(stack.ok());
  ASSERT_TRUE(runtime.Start().ok());
  Client client(runtime, ipc::Credentials{88, 1000, 1000});
  ASSERT_TRUE(client.Connect().ok());
  auto req = client.NewRequest();
  ASSERT_TRUE(req.ok());
  for (int i = 0; i < 200; ++i) {
    (*req)->Reuse();
    (*req)->op = ipc::OpCode::kDummy;
    ASSERT_TRUE(client.Execute(**req, **stack).ok()) << "round trip " << i;
  }
  for (ipc::QueuePair* qp : runtime.ipc().PrimaryQueues()) {
    EXPECT_FALSE(qp->PollCompletion().has_value())
        << "completions left unreaped on queue " << qp->id();
  }
  ASSERT_TRUE(runtime.Stop().ok());
}

// Request::Reuse must clear the submit stamp: a recycled slot whose
// next submission is unstamped (telemetry off / sync path) must not
// report the previous occupant's queue wait.
TEST_F(HotpathTest, RequestReuseClearsSubmitStamp) {
  ipc::Request req;
  req.submit_ns = 123456789;
  req.worker = 7;
  req.result = StatusCode::kInternal;
  req.result_u64 = 42;
  req.Reuse();
  EXPECT_EQ(req.submit_ns, 0u);
  EXPECT_EQ(req.worker, 0u);
  EXPECT_EQ(req.result, StatusCode::kOk);
  EXPECT_EQ(req.result_u64, 0u);
  EXPECT_FALSE(req.IsDone());
}

}  // namespace
}  // namespace labstor::core
