// Distributed cluster suite (src/cluster, DESIGN.md §10): shard-map
// properties, label routing across gateways, membership churn, crash
// recovery, rolling upgrades — and the DST side: a crash enumerated at
// every migration sub-step, byte-identical seed replay, and the
// 8-node acceptance scenario swept over the seed list.
//
// Own main (like dst_test): dst::InitSeeds strips --dst_seed /
// --dst_random_seeds before gtest parses argv, so CI can replay a
// failing cluster run (`test_cluster --dst_seed=0x...`) or widen the
// sweep (`test_cluster --dst_random_seeds=25`).
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/shard_map.h"
#include "dst/cluster_scenario.h"
#include "dst/rigs.h"
#include "dst/schedule.h"

namespace labstor::cluster {
namespace {

using dst::ClusterRig;
using dst::ClusterScenarioOptions;
using dst::RunClusterScenario;
using dst::Schedule;
using dst::SeedList;

std::vector<std::string> TestLabels(size_t n) {
  std::vector<std::string> labels;
  labels.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    labels.push_back("t" + std::to_string(i % 4) + "/obj" + std::to_string(i));
  }
  return labels;
}

std::map<uint32_t, size_t> OwnerCounts(const ShardMap& map,
                                       const std::vector<std::string>& labels) {
  std::map<uint32_t, size_t> counts;
  for (const std::string& label : labels) ++counts[map.OwnerOfLabel(label)];
  return counts;
}

// ---------------------------------------------------------------------------
// ShardMap properties.
// ---------------------------------------------------------------------------

TEST(ShardMapTest, BalancesLabelsWithinBound) {
  const auto labels = TestLabels(1000);
  auto map = ShardMap::Build(1, {0, 1, 2, 3, 4, 5, 6, 7});
  ASSERT_NE(map, nullptr);
  const auto counts = OwnerCounts(*map, labels);
  ASSERT_EQ(counts.size(), 8u) << "every node owns at least one label";
  const double mean = 1000.0 / 8.0;
  for (const auto& [node, count] : counts) {
    EXPECT_LT(static_cast<double>(count), 2.0 * mean)
        << "node " << node << " owns " << count << " of 1000";
    EXPECT_GT(static_cast<double>(count), mean / 3.0)
        << "node " << node << " owns " << count << " of 1000";
  }
}

TEST(ShardMapTest, JoinMovesLabelsOnlyToNewNode) {
  const auto labels = TestLabels(1000);
  auto before = ShardMap::Build(1, {0, 1, 2, 3, 4, 5, 6, 7});
  auto after = ShardMap::Build(2, {0, 1, 2, 3, 4, 5, 6, 7, 8});
  size_t moved = 0;
  for (const std::string& label : labels) {
    const uint32_t a = before->OwnerOfLabel(label);
    const uint32_t b = after->OwnerOfLabel(label);
    if (a != b) {
      ++moved;
      // Minimal movement: a join may only move labels TO the joiner.
      EXPECT_EQ(b, 8u) << "label " << label << " moved " << a << "->" << b;
    }
  }
  EXPECT_GT(moved, 0u);
  // Expected share is 1000/9 ~= 111; allow 2x slack for hash variance.
  EXPECT_LT(moved, 2 * 1000 / 9);
}

TEST(ShardMapTest, LeaveMovesLabelsOnlyFromRemovedNode) {
  const auto labels = TestLabels(1000);
  auto before = ShardMap::Build(1, {0, 1, 2, 3, 4, 5, 6, 7});
  auto after = ShardMap::Build(2, {0, 1, 2, 4, 5, 6, 7});  // node 3 left
  for (const std::string& label : labels) {
    const uint32_t a = before->OwnerOfLabel(label);
    const uint32_t b = after->OwnerOfLabel(label);
    if (a != 3) {
      EXPECT_EQ(a, b) << "label " << label
                      << " moved although its owner did not leave";
    } else {
      EXPECT_NE(b, 3u);
    }
  }
}

TEST(ShardMapTest, BuildIsDeterministic) {
  auto a = ShardMap::Build(7, {2, 5, 9});
  auto b = ShardMap::Build(7, {9, 2, 5, 2});  // dup + order must not matter
  ASSERT_EQ(a->ring_points(), b->ring_points());
  for (const std::string& label : TestLabels(200)) {
    EXPECT_EQ(a->OwnerOfLabel(label), b->OwnerOfLabel(label));
  }
}

TEST(ShardMapTest, PublisherRejectsStaleGenerations) {
  ShardMapPublisher pub;
  EXPECT_TRUE(pub.Publish(ShardMap::Build(1, {0, 1})));
  EXPECT_FALSE(pub.Publish(ShardMap::Build(1, {0, 1, 2})));
  EXPECT_TRUE(pub.Publish(ShardMap::Build(2, {0, 1, 2})));
  EXPECT_EQ(pub.Load()->generation(), 2u);
}

// ---------------------------------------------------------------------------
// Cluster routing and membership.
// ---------------------------------------------------------------------------

// Drives one coroutine to completion on the rig's environment.
template <typename MakeTask>
Status Drive(ClusterRig& rig, MakeTask make_task) {
  auto status = std::make_shared<Status>();
  auto wrap = [](sim::Task<Status> task,
                 std::shared_ptr<Status> out) -> sim::Task<void> {
    *out = co_await std::move(task);
  };
  rig.env().Spawn(wrap(make_task(), status));
  rig.env().Run();
  return *status;
}

TEST(ClusterTest, ForwardingReachesOwnerFromAnyGateway) {
  ClusterConfig config;
  config.initial_nodes = 4;
  auto rig = ClusterRig::Create(config);
  ASSERT_TRUE(rig.ok()) << rig.status().ToString();
  Cluster& cluster = (*rig)->cluster();

  for (uint32_t g = 0; g < 4; ++g) {
    const std::string label = "t0/from_gw" + std::to_string(g);
    ASSERT_TRUE(Drive(**rig, [&] {
                  return cluster.Put(g, 0, label, 4096);
                }).ok());
    // Readable from every other gateway, size intact.
    for (uint32_t r = 0; r < 4; ++r) {
      auto size = std::make_shared<uint64_t>(0);
      ASSERT_TRUE(Drive(**rig, [&] {
                    return cluster.Get(r, 0, label, size.get());
                  }).ok());
      EXPECT_EQ(*size, 4096u);
    }
  }
  EXPECT_EQ(cluster.forward_loops(), 0u);
  EXPECT_GT(cluster.forwarded(), 0u) << "4 gateways, 4 nodes: some op must "
                                        "have landed on a non-owner gateway";
  EXPECT_TRUE(cluster.CheckInvariants(/*strict=*/true).ok());
}

TEST(ClusterTest, JoinThenLeaveKeepsAllAckedWrites) {
  ClusterConfig config;
  config.initial_nodes = 3;
  auto rig = ClusterRig::Create(config);
  ASSERT_TRUE(rig.ok()) << rig.status().ToString();
  Cluster& cluster = (*rig)->cluster();

  const auto labels = TestLabels(40);
  for (const std::string& label : labels) {
    ASSERT_TRUE(Drive(**rig, [&] {
                  return cluster.Put(0, 0, label, 8192);
                }).ok());
  }

  auto new_id = std::make_shared<uint32_t>(0);
  ASSERT_TRUE(Drive(**rig, [&] { return cluster.AddNode(new_id.get()); }).ok());
  EXPECT_EQ(*new_id, 3u);
  ASSERT_TRUE(cluster.CheckInvariants(/*strict=*/true).ok());
  EXPECT_GT(cluster.node(3)->label_count(), 0u)
      << "join must migrate some shards onto the new node";

  ASSERT_TRUE(Drive(**rig, [&] { return cluster.RemoveNode(0); }).ok());
  const Status strict = cluster.CheckInvariants(/*strict=*/true);
  ASSERT_TRUE(strict.ok()) << strict.ToString();
  for (const std::string& label : labels) {
    auto size = std::make_shared<uint64_t>(0);
    ASSERT_TRUE(Drive(**rig, [&] {
                  return cluster.Get(1, 0, label, size.get());
                }).ok())
        << label;
    EXPECT_EQ(*size, 8192u);
  }
}

TEST(ClusterTest, CrashedNodeRejoinsViaLogReplay) {
  ClusterConfig config;
  config.initial_nodes = 4;
  auto rig = ClusterRig::Create(config);
  ASSERT_TRUE(rig.ok()) << rig.status().ToString();
  Cluster& cluster = (*rig)->cluster();

  const auto labels = TestLabels(32);
  for (const std::string& label : labels) {
    ASSERT_TRUE(Drive(**rig, [&] {
                  return cluster.Put(0, 0, label, 4096);
                }).ok());
  }
  ASSERT_TRUE(cluster.CrashNode(2).ok());
  // Acked writes survive the crash (down store is durable).
  ASSERT_TRUE(cluster.CheckInvariants().ok());
  // Ops whose owner is down fail Unavailable; the rest keep serving.
  size_t served = 0, unavailable = 0;
  for (const std::string& label : labels) {
    const Status st = Drive(**rig, [&] { return cluster.Get(0, 0, label); });
    if (st.ok()) {
      ++served;
    } else {
      EXPECT_EQ(st.code(), StatusCode::kUnavailable) << st.ToString();
      ++unavailable;
    }
  }
  EXPECT_GT(served, 0u);
  EXPECT_GT(unavailable, 0u) << "node 2 owned none of 32 labels?";

  ASSERT_TRUE(Drive(**rig, [&] { return cluster.RejoinNode(2); }).ok());
  const Status strict = cluster.CheckInvariants(/*strict=*/true);
  ASSERT_TRUE(strict.ok()) << strict.ToString();
  for (const std::string& label : labels) {
    ASSERT_TRUE(Drive(**rig, [&] { return cluster.Get(0, 0, label); }).ok())
        << label;
  }
}

TEST(ClusterTest, RollingUpgradeKeepsClusterServing) {
  ClusterConfig config;
  config.initial_nodes = 4;
  auto rig = ClusterRig::Create(config);
  ASSERT_TRUE(rig.ok()) << rig.status().ToString();
  Cluster& cluster = (*rig)->cluster();
  sim::Environment& env = (*rig)->env();

  for (const std::string& label : TestLabels(16)) {
    ASSERT_TRUE(Drive(**rig, [&] {
                  return cluster.Put(0, 0, label, 2048);
                }).ok());
  }

  // Traffic overlapping the upgrade: puts land while nodes drain one
  // at a time (Execute holds arrivals at a draining node's door).
  auto upgrade_status = std::make_shared<Status>();
  auto traffic_failures = std::make_shared<int>(0);
  auto wrap = [](sim::Task<Status> task, std::shared_ptr<Status> out)
      -> sim::Task<void> { *out = co_await std::move(task); };
  auto traffic = [](Cluster* target, std::shared_ptr<int> failures)
      -> sim::Task<void> {
    for (int i = 0; i < 20; ++i) {
      const Status st = co_await target->Put(
          static_cast<uint32_t>(i % 4), 1,
          "t1/during_upgrade" + std::to_string(i), 1024);
      if (!st.ok()) ++*failures;
    }
  };
  env.Spawn(wrap(cluster.RollingUpgrade(2), upgrade_status));
  env.Spawn(traffic(&cluster, traffic_failures));
  env.Run();

  ASSERT_TRUE(upgrade_status->ok()) << upgrade_status->ToString();
  EXPECT_EQ(*traffic_failures, 0) << "no crash happened: every put must land";
  for (const uint32_t id : cluster.LiveNodeIds()) {
    EXPECT_EQ(cluster.node(id)->version(), 2u);
  }
  const Status strict = cluster.CheckInvariants(/*strict=*/true);
  ASSERT_TRUE(strict.ok()) << strict.ToString();
}

// ---------------------------------------------------------------------------
// DST: crash enumerated at every migration sub-step.
// ---------------------------------------------------------------------------

struct CrashPoint {
  size_t step = 0;
  MigrationPhase phase = MigrationPhase::kBeforeCopy;
  bool crash_source = true;  // else crash the destination
};

// Runs: seed writes -> AddNode (which migrates) with a crash injected
// at `point` -> invariants -> rejoin + rebalance -> strict audit.
void RunCrashPoint(const CrashPoint& point, size_t* steps_seen) {
  ClusterConfig config;
  config.initial_nodes = 3;
  auto rig = ClusterRig::Create(config);
  ASSERT_TRUE(rig.ok()) << rig.status().ToString();
  Cluster& cluster = (*rig)->cluster();

  for (const std::string& label : TestLabels(24)) {
    ASSERT_TRUE(Drive(**rig, [&] {
                  return cluster.Put(0, 0, label, 4096);
                }).ok());
  }

  size_t counter = 0;
  uint32_t crashed = ShardMap::kNoOwner;
  cluster.rebalancer().SetHook([&](const MigrationStep& step,
                                   MigrationPhase phase) {
    if (phase == MigrationPhase::kBeforeCopy) ++counter;
    if (crashed != ShardMap::kNoOwner) return;
    if (counter - 1 == point.step && phase == point.phase) {
      const uint32_t victim = point.crash_source ? step.from : step.to;
      if (cluster.CrashNode(victim).ok()) crashed = victim;
    }
  });

  const Status add = Drive(**rig, [&] { return cluster.AddNode(nullptr); });
  ASSERT_TRUE(add.ok()) << add.ToString();
  cluster.rebalancer().SetHook(nullptr);
  *steps_seen = counter;

  // Acked writes survive no matter where the crash landed.
  const Status inv = cluster.CheckInvariants();
  ASSERT_TRUE(inv.ok()) << inv.ToString();

  if (crashed != ShardMap::kNoOwner) {
    const Status rejoin =
        Drive(**rig, [&] { return cluster.RejoinNode(crashed); });
    ASSERT_TRUE(rejoin.ok()) << rejoin.ToString();
  }
  const Status reb = Drive(**rig, [&] { return cluster.Rebalance(); });
  ASSERT_TRUE(reb.ok()) << reb.ToString();
  const Status strict = cluster.CheckInvariants(/*strict=*/true);
  ASSERT_TRUE(strict.ok()) << strict.ToString();
  for (const std::string& label : TestLabels(24)) {
    auto size = std::make_shared<uint64_t>(0);
    ASSERT_TRUE(Drive(**rig, [&] {
                  return cluster.Get(0, 0, label, size.get());
                }).ok())
        << label;
    EXPECT_EQ(*size, 4096u);
  }
}

TEST(ClusterDstTest, CrashEnumeratedAtEveryMigrationSubStep) {
  // Probe run: count the migration steps the join produces.
  size_t total_steps = 0;
  {
    CrashPoint never;
    never.step = ~size_t{0};
    RunCrashPoint(never, &total_steps);
    if (HasFatalFailure()) return;
  }
  ASSERT_GT(total_steps, 0u) << "join migrated nothing";

  for (size_t step = 0; step < total_steps; ++step) {
    for (const MigrationPhase phase :
         {MigrationPhase::kBeforeCopy, MigrationPhase::kAfterCopy,
          MigrationPhase::kAfterCommit}) {
      for (const bool crash_source : {true, false}) {
        SCOPED_TRACE("step " + std::to_string(step) + " phase " +
                     std::to_string(static_cast<int>(phase)) +
                     (crash_source ? " crash-src" : " crash-dst"));
        CrashPoint point;
        point.step = step;
        point.phase = phase;
        point.crash_source = crash_source;
        size_t unused = 0;
        RunCrashPoint(point, &unused);
        if (HasFatalFailure()) return;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// DST: scenario replay and the seed-swept acceptance run.
// ---------------------------------------------------------------------------

TEST(ClusterDstTest, ReplayIsByteIdentical) {
  const uint64_t seed = SeedList().front();
  ClusterScenarioOptions options;
  options.num_steps = 60;

  std::string traces[2];
  for (int run = 0; run < 2; ++run) {
    ClusterConfig config;
    config.initial_nodes = 4;
    auto rig = ClusterRig::Create(config);
    ASSERT_TRUE(rig.ok()) << rig.status().ToString();
    Schedule sched(seed);
    auto stats = RunClusterScenario(**rig, sched, options);
    ASSERT_TRUE(stats.ok()) << stats.status().ToString() << "\n"
                            << sched.trace();
    traces[run] = sched.trace();
  }
  ASSERT_FALSE(traces[0].empty());
  EXPECT_EQ(traces[0], traces[1])
      << "same seed must replay byte-identically";
}

TEST(ClusterDstTest, DifferentSeedsDiverge) {
  ClusterScenarioOptions options;
  options.num_steps = 40;
  std::set<std::string> traces;
  int runs = 0;
  for (const uint64_t seed : SeedList()) {
    ClusterConfig config;
    config.initial_nodes = 4;
    auto rig = ClusterRig::Create(config);
    ASSERT_TRUE(rig.ok()) << rig.status().ToString();
    Schedule sched(seed);
    auto stats = RunClusterScenario(**rig, sched, options);
    ASSERT_TRUE(stats.ok()) << stats.status().ToString() << "\n"
                            << sched.trace();
    traces.insert(sched.trace());
    if (++runs == 3) break;
  }
  EXPECT_EQ(traces.size(), static_cast<size_t>(runs));
}

// The acceptance run: an 8-node cluster where every seed's action
// stream includes (at least, via coverage floors) a node crash, a
// rejoin, and a rolling upgrade, with the cluster invariants checked
// after every step and a strict placement audit at the end.
TEST(ClusterDstTest, EightNodeSeedSweepHoldsInvariants) {
  for (const uint64_t seed : SeedList()) {
    SCOPED_TRACE("seed 0x" + std::to_string(seed));
    ClusterConfig config;
    config.initial_nodes = 8;
    auto rig = ClusterRig::Create(config);
    ASSERT_TRUE(rig.ok()) << rig.status().ToString();
    Schedule sched(seed);
    auto stats = RunClusterScenario(**rig, sched);
    ASSERT_TRUE(stats.ok()) << stats.status().ToString() << "\n"
                            << sched.trace();
    EXPECT_GE(stats->joins, 1u);
    EXPECT_GE(stats->crashes, 1u);
    EXPECT_GE(stats->rejoins, 1u);
    EXPECT_GE(stats->upgrades, 1u);
    EXPECT_GE(stats->invariant_checks, stats->steps);
    EXPECT_GT(stats->ok_ops, 0u);
    Cluster& cluster = (*rig)->cluster();
    EXPECT_EQ(cluster.forward_loops(), 0u);
    // Per-tenant SLO telemetry was recorded for the traffic tenants.
    auto* hist =
        (*rig)->telemetry().metrics().GetHistogram("cluster.tenant0.latency_ns");
    EXPECT_GT(hist->Merged().count(), 0u);
  }
}

}  // namespace
}  // namespace labstor::cluster

int main(int argc, char** argv) {
  labstor::dst::InitSeeds(&argc, argv);
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
