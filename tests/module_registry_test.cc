#include "core/module_registry.h"

#include <gtest/gtest.h>

#include "common/yaml.h"
#include "core/stack_exec.h"
#include "faultinject/faultinject.h"
#include "labmods/dummy.h"
#include "labmods/lru_cache.h"

namespace labstor::core {
namespace {

// A private factory so tests don't disturb the global registry.
// (ModFactory owns a mutex, so it is populated in place.)
void PopulateFactory(ModFactory& factory) {
  EXPECT_TRUE(factory
                  .Register("dummy", 1,
                            [] { return std::make_unique<labmods::DummyMod>(); })
                  .ok());
  EXPECT_TRUE(factory
                  .Register("dummy", 2,
                            [] { return std::make_unique<labmods::DummyModV2>(); })
                  .ok());
}

TEST(ModFactoryTest, RegisterAndCreateLatest) {
  ModFactory factory;
  PopulateFactory(factory);
  EXPECT_TRUE(factory.Has("dummy"));
  EXPECT_FALSE(factory.Has("nope"));
  auto latest = factory.LatestVersion("dummy");
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ(*latest, 2u);
  auto mod = factory.Create("dummy");
  ASSERT_TRUE(mod.ok());
  EXPECT_EQ((*mod)->version(), 2u);
}

TEST(ModFactoryTest, CreateSpecificVersion) {
  ModFactory factory;
  PopulateFactory(factory);
  auto v1 = factory.Create("dummy", 1);
  ASSERT_TRUE(v1.ok());
  EXPECT_EQ((*v1)->version(), 1u);
  EXPECT_FALSE(factory.Create("dummy", 9).ok());
  EXPECT_FALSE(factory.Create("ghost").ok());
}

TEST(ModFactoryTest, DuplicateVersionRejected) {
  ModFactory factory;
  PopulateFactory(factory);
  EXPECT_EQ(factory
                .Register("dummy", 1,
                          [] { return std::make_unique<labmods::DummyMod>(); })
                .code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(factory.Register("x", 0, nullptr).code(),
            StatusCode::kInvalidArgument);
}

TEST(ModFactoryTest, GlobalFactoryHasBuiltins) {
  // Registered by the labmods object library's static initializers.
  ModFactory& global = ModFactory::Global();
  for (const char* name : {"labfs", "labkvs", "lru_cache", "permissions",
                           "compress", "consistency", "noop_sched",
                           "blk_switch_sched", "kernel_driver", "spdk", "dax",
                           "dummy"}) {
    EXPECT_TRUE(global.Has(name)) << name;
  }
}

TEST(ModuleRegistryTest, InstantiateOnceAndReuse) {
  ModFactory factory;
  PopulateFactory(factory);
  ModuleRegistry registry(&factory);
  ModContext ctx;
  auto first = registry.Instantiate("dummy", "d1", nullptr, ctx);
  ASSERT_TRUE(first.ok());
  auto second = registry.Instantiate("dummy", "d1", nullptr, ctx);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(*first, *second);  // same instance (paper: only if absent)
  EXPECT_TRUE(registry.Has("d1"));
  EXPECT_EQ(registry.AllInstances().size(), 1u);
}

TEST(ModuleRegistryTest, UuidBoundToModName) {
  ModFactory factory;
  PopulateFactory(factory);
  ASSERT_TRUE(
      factory.Register("other", 1, [] { return std::make_unique<labmods::DummyMod>(); })
          .ok());
  ModuleRegistry registry(&factory);
  ModContext ctx;
  ASSERT_TRUE(registry.Instantiate("dummy", "d1", nullptr, ctx).ok());
  EXPECT_EQ(registry.Instantiate("other", "d1", nullptr, ctx).status().code(),
            StatusCode::kAlreadyExists);
}

TEST(ModuleRegistryTest, FindMissing) {
  ModuleRegistry registry;
  EXPECT_EQ(registry.Find("ghost").status().code(), StatusCode::kNotFound);
}

TEST(ModuleRegistryTest, UpgradeMigratesState) {
  ModFactory factory;
  PopulateFactory(factory);
  ModuleRegistry registry(&factory);
  ModContext ctx;
  auto mod = registry.Instantiate("dummy", "d1", nullptr, ctx, /*version=*/1);
  ASSERT_TRUE(mod.ok());
  EXPECT_EQ((*mod)->version(), 1u);
  // Pump some state into v1.
  auto* dummy = dynamic_cast<labmods::DummyMod*>(*mod);
  ASSERT_NE(dummy, nullptr);
  ipc::Request req;
  Stack stack;  // Process ignores exec for dummy
  ModContext ctx2;
  ExecTrace trace;
  StackExec exec(stack, ctx2, trace);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(dummy->Process(req, exec).ok());
  EXPECT_EQ(dummy->messages(), 5u);

  ASSERT_TRUE(registry.Upgrade("d1", 2, ctx).ok());
  auto upgraded = registry.Find("d1");
  ASSERT_TRUE(upgraded.ok());
  EXPECT_EQ((*upgraded)->version(), 2u);
  auto* v2 = dynamic_cast<labmods::DummyMod*>(*upgraded);
  ASSERT_NE(v2, nullptr);
  EXPECT_EQ(v2->messages(), 5u);  // state carried by StateUpdate
}

TEST(ModuleRegistryTest, DowngradeRejected) {
  ModFactory factory;
  PopulateFactory(factory);
  ModuleRegistry registry(&factory);
  ModContext ctx;
  ASSERT_TRUE(registry.Instantiate("dummy", "d1", nullptr, ctx, 1).ok());
  ASSERT_TRUE(registry.Upgrade("d1", 2, ctx).ok());
  // Re-loading the same version is a legal code reload (Table I
  // upgrades the same dummy module hundreds of times).
  EXPECT_TRUE(registry.Upgrade("d1", 2, ctx).ok());
  // Strict downgrades are refused.
  EXPECT_EQ(registry.Upgrade("d1", 1, ctx).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(registry.Upgrade("ghost", 2, ctx).code(), StatusCode::kNotFound);
}

TEST(ModuleRegistryTest, UpgradePreservesCreationParams) {
  // Regression: Upgrade used to Init the fresh instance with nullptr,
  // silently resetting every operator-configured param to its default.
  // A param-sensitive mod (lru_cache, whose StateUpdate deliberately
  // migrates only mutable state) catches it: post-upgrade capacity
  // must still be the mounted 8 pages, not the 4096 default.
  ModFactory factory;
  ASSERT_TRUE(factory
                  .Register("lru_cache", 1,
                            [] { return std::make_unique<labmods::LruCacheMod>(1); })
                  .ok());
  ASSERT_TRUE(factory
                  .Register("lru_cache", 2,
                            [] { return std::make_unique<labmods::LruCacheMod>(2); })
                  .ok());
  ModuleRegistry registry(&factory);
  ModContext ctx;
  auto params = yaml::Parse("capacity_pages: 8");
  ASSERT_TRUE(params.ok());
  auto mod = registry.Instantiate("lru_cache", "c1", *params, ctx, 1);
  ASSERT_TRUE(mod.ok());
  EXPECT_EQ(dynamic_cast<labmods::LruCacheMod*>(*mod)->capacity_pages(), 8u);

  ASSERT_TRUE(registry.Upgrade("c1", 2, ctx).ok());
  auto upgraded = registry.Find("c1");
  ASSERT_TRUE(upgraded.ok());
  auto* cache = dynamic_cast<labmods::LruCacheMod*>(*upgraded);
  ASSERT_NE(cache, nullptr);
  EXPECT_EQ(cache->version(), 2u);
  EXPECT_EQ(cache->capacity_pages(), 8u)
      << "upgrade dropped the creation params";

  // The registry keeps the params for the upgrade after this one.
  auto stored = registry.ParamsOf("c1");
  ASSERT_TRUE(stored.ok());
  ASSERT_NE(*stored, nullptr);
  EXPECT_EQ((*stored)->GetUint("capacity_pages", 0), 8u);
  EXPECT_EQ(registry.ParamsOf("ghost").status().code(), StatusCode::kNotFound);
}

TEST(ModuleRegistryTest, UpgradeAllIsAllOrNothing) {
  ModFactory factory;
  PopulateFactory(factory);
  ModuleRegistry registry(&factory);
  ModContext ctx;
  for (const char* uuid : {"f1", "f2", "f3"}) {
    ASSERT_TRUE(registry.Instantiate("dummy", uuid, nullptr, ctx, 1).ok());
  }
  // Pump distinguishable state into each v1 instance.
  ipc::Request req;
  Stack stack;
  ModContext exec_ctx;
  ExecTrace trace;
  StackExec exec(stack, exec_ctx, trace);
  int pumps = 1;
  for (const char* uuid : {"f1", "f2", "f3"}) {
    auto mod = registry.Find(uuid);
    ASSERT_TRUE(mod.ok());
    for (int i = 0; i < pumps; ++i) {
      ASSERT_TRUE((*mod)->Process(req, exec).ok());
    }
    ++pumps;
  }

  // Fail staging of the SECOND of three instances (staged in sorted
  // uuid order). Regression: the old per-instance loop had already
  // swapped f1 to v2 when f2 failed — a mixed-version registry.
  faultinject::FaultInjector fi;
  faultinject::FaultPolicy policy;
  policy.trigger = faultinject::FaultPolicy::Trigger::kEveryN;
  policy.every_n = 2;
  policy.max_fires = 1;
  policy.message = "injected staging failure";
  fi.Arm("core.upgrade.stage", policy);
  {
    faultinject::ScopedInstall install(fi);
    auto result = registry.UpgradeAll("dummy", 2, ctx);
    EXPECT_FALSE(result.ok());
  }
  EXPECT_EQ(fi.fires("core.upgrade.stage"), 1u);
  pumps = 1;
  for (const char* uuid : {"f1", "f2", "f3"}) {
    auto mod = registry.Find(uuid);
    ASSERT_TRUE(mod.ok());
    EXPECT_EQ((*mod)->version(), 1u) << uuid << " swapped despite the failure";
    EXPECT_EQ(dynamic_cast<labmods::DummyMod*>(*mod)->messages(),
              static_cast<uint64_t>(pumps))
        << uuid << " lost state in the failed upgrade";
    ++pumps;
  }

  // Clean retry swaps all three atomically, state intact.
  auto result = registry.UpgradeAll("dummy", 2, ctx);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->swapped, 3u);
  EXPECT_EQ(result->noops, 0u);
  pumps = 1;
  for (const char* uuid : {"f1", "f2", "f3"}) {
    auto mod = registry.Find(uuid);
    ASSERT_TRUE(mod.ok());
    EXPECT_EQ((*mod)->version(), 2u);
    EXPECT_EQ(dynamic_cast<labmods::DummyMod*>(*mod)->messages(),
              static_cast<uint64_t>(pumps));
    ++pumps;
  }
  EXPECT_EQ(registry.UpgradeAll("ghost", 2, ctx).status().code(),
            StatusCode::kNotFound);
}

TEST(ModuleRegistryTest, SameVersionUpgradeIsNoop) {
  ModFactory factory;
  PopulateFactory(factory);
  ModuleRegistry registry(&factory);
  ModContext ctx;
  auto mod = registry.Instantiate("dummy", "d1", nullptr, ctx, 2);
  ASSERT_TRUE(mod.ok());

  bool was_noop = false;
  ASSERT_TRUE(registry.Upgrade("d1", 2, ctx, &was_noop).ok());
  EXPECT_TRUE(was_noop);
  // No Create/Init/StateUpdate churn: the very same instance survives.
  auto after = registry.Find("d1");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(*after, *mod);

  auto all = registry.UpgradeAll("dummy", 2, ctx);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->swapped, 0u);
  EXPECT_EQ(all->noops, 1u);
}

TEST(ModuleRegistryTest, InstancesOfFiltersByName) {
  ModFactory factory;
  PopulateFactory(factory);
  ModuleRegistry registry(&factory);
  ModContext ctx;
  ASSERT_TRUE(registry.Instantiate("dummy", "a", nullptr, ctx).ok());
  ASSERT_TRUE(registry.Instantiate("dummy", "b", nullptr, ctx).ok());
  EXPECT_EQ(registry.InstancesOf("dummy").size(), 2u);
  EXPECT_TRUE(registry.InstancesOf("ghost").empty());
}

}  // namespace
}  // namespace labstor::core
