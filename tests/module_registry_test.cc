#include "core/module_registry.h"

#include <gtest/gtest.h>

#include "core/stack_exec.h"
#include "labmods/dummy.h"

namespace labstor::core {
namespace {

// A private factory so tests don't disturb the global registry.
// (ModFactory owns a mutex, so it is populated in place.)
void PopulateFactory(ModFactory& factory) {
  EXPECT_TRUE(factory
                  .Register("dummy", 1,
                            [] { return std::make_unique<labmods::DummyMod>(); })
                  .ok());
  EXPECT_TRUE(factory
                  .Register("dummy", 2,
                            [] { return std::make_unique<labmods::DummyModV2>(); })
                  .ok());
}

TEST(ModFactoryTest, RegisterAndCreateLatest) {
  ModFactory factory;
  PopulateFactory(factory);
  EXPECT_TRUE(factory.Has("dummy"));
  EXPECT_FALSE(factory.Has("nope"));
  auto latest = factory.LatestVersion("dummy");
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ(*latest, 2u);
  auto mod = factory.Create("dummy");
  ASSERT_TRUE(mod.ok());
  EXPECT_EQ((*mod)->version(), 2u);
}

TEST(ModFactoryTest, CreateSpecificVersion) {
  ModFactory factory;
  PopulateFactory(factory);
  auto v1 = factory.Create("dummy", 1);
  ASSERT_TRUE(v1.ok());
  EXPECT_EQ((*v1)->version(), 1u);
  EXPECT_FALSE(factory.Create("dummy", 9).ok());
  EXPECT_FALSE(factory.Create("ghost").ok());
}

TEST(ModFactoryTest, DuplicateVersionRejected) {
  ModFactory factory;
  PopulateFactory(factory);
  EXPECT_EQ(factory
                .Register("dummy", 1,
                          [] { return std::make_unique<labmods::DummyMod>(); })
                .code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(factory.Register("x", 0, nullptr).code(),
            StatusCode::kInvalidArgument);
}

TEST(ModFactoryTest, GlobalFactoryHasBuiltins) {
  // Registered by the labmods object library's static initializers.
  ModFactory& global = ModFactory::Global();
  for (const char* name : {"labfs", "labkvs", "lru_cache", "permissions",
                           "compress", "consistency", "noop_sched",
                           "blk_switch_sched", "kernel_driver", "spdk", "dax",
                           "dummy"}) {
    EXPECT_TRUE(global.Has(name)) << name;
  }
}

TEST(ModuleRegistryTest, InstantiateOnceAndReuse) {
  ModFactory factory;
  PopulateFactory(factory);
  ModuleRegistry registry(&factory);
  ModContext ctx;
  auto first = registry.Instantiate("dummy", "d1", nullptr, ctx);
  ASSERT_TRUE(first.ok());
  auto second = registry.Instantiate("dummy", "d1", nullptr, ctx);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(*first, *second);  // same instance (paper: only if absent)
  EXPECT_TRUE(registry.Has("d1"));
  EXPECT_EQ(registry.AllInstances().size(), 1u);
}

TEST(ModuleRegistryTest, UuidBoundToModName) {
  ModFactory factory;
  PopulateFactory(factory);
  ASSERT_TRUE(
      factory.Register("other", 1, [] { return std::make_unique<labmods::DummyMod>(); })
          .ok());
  ModuleRegistry registry(&factory);
  ModContext ctx;
  ASSERT_TRUE(registry.Instantiate("dummy", "d1", nullptr, ctx).ok());
  EXPECT_EQ(registry.Instantiate("other", "d1", nullptr, ctx).status().code(),
            StatusCode::kAlreadyExists);
}

TEST(ModuleRegistryTest, FindMissing) {
  ModuleRegistry registry;
  EXPECT_EQ(registry.Find("ghost").status().code(), StatusCode::kNotFound);
}

TEST(ModuleRegistryTest, UpgradeMigratesState) {
  ModFactory factory;
  PopulateFactory(factory);
  ModuleRegistry registry(&factory);
  ModContext ctx;
  auto mod = registry.Instantiate("dummy", "d1", nullptr, ctx, /*version=*/1);
  ASSERT_TRUE(mod.ok());
  EXPECT_EQ((*mod)->version(), 1u);
  // Pump some state into v1.
  auto* dummy = dynamic_cast<labmods::DummyMod*>(*mod);
  ASSERT_NE(dummy, nullptr);
  ipc::Request req;
  Stack stack;  // Process ignores exec for dummy
  ModContext ctx2;
  ExecTrace trace;
  StackExec exec(stack, ctx2, trace);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(dummy->Process(req, exec).ok());
  EXPECT_EQ(dummy->messages(), 5u);

  ASSERT_TRUE(registry.Upgrade("d1", 2, ctx).ok());
  auto upgraded = registry.Find("d1");
  ASSERT_TRUE(upgraded.ok());
  EXPECT_EQ((*upgraded)->version(), 2u);
  auto* v2 = dynamic_cast<labmods::DummyMod*>(*upgraded);
  ASSERT_NE(v2, nullptr);
  EXPECT_EQ(v2->messages(), 5u);  // state carried by StateUpdate
}

TEST(ModuleRegistryTest, DowngradeRejected) {
  ModFactory factory;
  PopulateFactory(factory);
  ModuleRegistry registry(&factory);
  ModContext ctx;
  ASSERT_TRUE(registry.Instantiate("dummy", "d1", nullptr, ctx, 1).ok());
  ASSERT_TRUE(registry.Upgrade("d1", 2, ctx).ok());
  // Re-loading the same version is a legal code reload (Table I
  // upgrades the same dummy module hundreds of times).
  EXPECT_TRUE(registry.Upgrade("d1", 2, ctx).ok());
  // Strict downgrades are refused.
  EXPECT_EQ(registry.Upgrade("d1", 1, ctx).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(registry.Upgrade("ghost", 2, ctx).code(), StatusCode::kNotFound);
}

TEST(ModuleRegistryTest, InstancesOfFiltersByName) {
  ModFactory factory;
  PopulateFactory(factory);
  ModuleRegistry registry(&factory);
  ModContext ctx;
  ASSERT_TRUE(registry.Instantiate("dummy", "a", nullptr, ctx).ok());
  ASSERT_TRUE(registry.Instantiate("dummy", "b", nullptr, ctx).ok());
  EXPECT_EQ(registry.InstancesOf("dummy").size(), 2u);
  EXPECT_TRUE(registry.InstancesOf("ghost").empty());
}

}  // namespace
}  // namespace labstor::core
