#include "sim/environment.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "sim/cost_model.h"
#include "sim/task.h"

namespace labstor::sim {
namespace {

TEST(SimTest, TimeStartsAtZero) {
  Environment env;
  EXPECT_EQ(env.now(), 0u);
  EXPECT_EQ(env.Run(), 0u);
}

Task<void> DelayProcess(Environment& env, Time d, std::vector<Time>* log) {
  co_await env.Delay(d);
  log->push_back(env.now());
}

TEST(SimTest, DelayAdvancesVirtualTime) {
  Environment env;
  std::vector<Time> log;
  env.Spawn(DelayProcess(env, 100, &log));
  env.Run();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0], 100u);
  EXPECT_EQ(env.now(), 100u);
}

TEST(SimTest, ProcessesInterleaveByTime) {
  Environment env;
  std::vector<Time> log;
  env.Spawn(DelayProcess(env, 300, &log));
  env.Spawn(DelayProcess(env, 100, &log));
  env.Spawn(DelayProcess(env, 200, &log));
  env.Run();
  ASSERT_EQ(log.size(), 3u);
  EXPECT_EQ(log[0], 100u);
  EXPECT_EQ(log[1], 200u);
  EXPECT_EQ(log[2], 300u);
}

Task<void> TickProcess(Environment& env, int id, std::vector<int>* order) {
  co_await env.Delay(10);
  order->push_back(id);
}

TEST(SimTest, EqualTimesRunFifo) {
  Environment env;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) env.Spawn(TickProcess(env, i, &order));
  env.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

Task<int> Compute(Environment& env, int x) {
  co_await env.Delay(50);
  co_return x * 2;
}

Task<void> AwaitChild(Environment& env, int* out) {
  *out = co_await Compute(env, 21);
}

TEST(SimTest, AwaitingSubtaskPropagatesValueAndTime) {
  Environment env;
  int out = 0;
  env.Spawn(AwaitChild(env, &out));
  env.Run();
  EXPECT_EQ(out, 42);
  EXPECT_EQ(env.now(), 50u);
}

Task<void> Thrower(Environment& env) {
  co_await env.Delay(1);
  throw std::runtime_error("sim process failed");
}

TEST(SimTest, RootExceptionPropagatesToRun) {
  Environment env;
  env.Spawn(Thrower(env));
  EXPECT_THROW(env.Run(), std::runtime_error);
}

Task<int> ChildThrower(Environment& env) {
  co_await env.Delay(1);
  throw std::runtime_error("child failed");
}

Task<void> CatchingParent(Environment& env, bool* caught) {
  try {
    (void)co_await ChildThrower(env);
  } catch (const std::runtime_error&) {
    *caught = true;
  }
}

TEST(SimTest, ChildExceptionCatchableInParent) {
  Environment env;
  bool caught = false;
  env.Spawn(CatchingParent(env, &caught));
  env.Run();
  EXPECT_TRUE(caught);
}

TEST(SimTest, RunUntilStopsAtDeadline) {
  Environment env;
  std::vector<Time> log;
  env.Spawn(DelayProcess(env, 100, &log));
  env.Spawn(DelayProcess(env, 5000, &log));
  env.RunUntil(1000);
  EXPECT_EQ(log.size(), 1u);
  EXPECT_EQ(env.now(), 100u);
  // Remaining process still runs if we continue.
  env.Run();
  EXPECT_EQ(log.size(), 2u);
  EXPECT_EQ(env.now(), 5000u);
}

Task<void> EventWaiter(Environment& env, Event& ev, std::vector<Time>* log) {
  co_await ev.Wait();
  log->push_back(env.now());
}

Task<void> EventTriggerer(Environment& env, Event& ev) {
  co_await env.Delay(500);
  ev.Trigger();
}

TEST(SimTest, EventWakesAllWaitersAtTriggerTime) {
  Environment env;
  Event ev(env);
  std::vector<Time> log;
  env.Spawn(EventWaiter(env, ev, &log));
  env.Spawn(EventWaiter(env, ev, &log));
  env.Spawn(EventTriggerer(env, ev));
  env.Run();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0], 500u);
  EXPECT_EQ(log[1], 500u);
}

Task<void> ResourceUser(Environment& env, Resource& res, Time hold,
                        std::vector<std::pair<Time, Time>>* spans) {
  co_await res.Acquire();
  const Time start = env.now();
  co_await env.Delay(hold);
  res.Release();
  spans->emplace_back(start, env.now());
}

TEST(SimTest, UnitResourceSerializesFifo) {
  Environment env;
  Resource res(env, 1);
  std::vector<std::pair<Time, Time>> spans;
  for (int i = 0; i < 3; ++i) env.Spawn(ResourceUser(env, res, 100, &spans));
  env.Run();
  ASSERT_EQ(spans.size(), 3u);
  // Strictly serialized: [0,100], [100,200], [200,300].
  EXPECT_EQ(spans[0], (std::pair<Time, Time>{0, 100}));
  EXPECT_EQ(spans[1], (std::pair<Time, Time>{100, 200}));
  EXPECT_EQ(spans[2], (std::pair<Time, Time>{200, 300}));
  EXPECT_EQ(res.free(), 1u);
}

TEST(SimTest, MultiTokenResourceAllowsParallelism) {
  Environment env;
  Resource res(env, 2);
  std::vector<std::pair<Time, Time>> spans;
  for (int i = 0; i < 4; ++i) env.Spawn(ResourceUser(env, res, 100, &spans));
  env.Run();
  ASSERT_EQ(spans.size(), 4u);
  // Two run [0,100], two run [100,200]: makespan 200, not 400.
  EXPECT_EQ(env.now(), 200u);
  EXPECT_EQ(res.free(), 2u);
}

Task<void> GuardUser(Environment& env, Resource& res, std::vector<Time>* log) {
  co_await res.Acquire();
  {
    ResourceGuard guard(res);
    co_await env.Delay(10);
    log->push_back(env.now());
  }  // release here
  co_await env.Delay(1000);
}

TEST(SimTest, ResourceGuardReleasesAtScopeExit) {
  Environment env;
  Resource res(env, 1);
  std::vector<Time> log;
  env.Spawn(GuardUser(env, res, &log));
  env.Spawn(GuardUser(env, res, &log));
  env.Run();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0], 10u);
  EXPECT_EQ(log[1], 20u);  // second acquires as soon as guard released
}

Task<void> BarrierWorker(Environment& env, Barrier& barrier, Time work) {
  co_await env.Delay(work);
  barrier.Arrive();
}

Task<void> BarrierJoiner(Environment& env, Barrier& barrier, Time* joined_at) {
  co_await barrier.Join();
  *joined_at = env.now();
}

TEST(SimTest, BarrierJoinWaitsForAllArrivals) {
  Environment env;
  Barrier barrier(env, 3);
  Time joined_at = 0;
  env.Spawn(BarrierJoiner(env, barrier, &joined_at));
  env.Spawn(BarrierWorker(env, barrier, 10));
  env.Spawn(BarrierWorker(env, barrier, 500));
  env.Spawn(BarrierWorker(env, barrier, 200));
  env.Run();
  EXPECT_EQ(joined_at, 500u);
  EXPECT_EQ(barrier.arrived(), 3u);
}

TEST(SimTest, BarrierJoinAfterAllArrivedReturnsImmediately) {
  Environment env;
  Barrier barrier(env, 1);
  barrier.Arrive();
  Time joined_at = 1234;
  env.Spawn(BarrierJoiner(env, barrier, &joined_at));
  env.Run();
  EXPECT_EQ(joined_at, 0u);
}

Task<void> YieldingProcess(Environment& env, int id, std::vector<int>* order) {
  order->push_back(id);
  co_await env.Yield();
  order->push_back(id + 100);
}

TEST(SimTest, YieldRunsBehindAlreadyQueuedEvents) {
  Environment env;
  std::vector<int> order;
  env.Spawn(YieldingProcess(env, 1, &order));
  env.Spawn(YieldingProcess(env, 2, &order));
  env.Run();
  // Both first halves run before either second half.
  EXPECT_EQ(order, (std::vector<int>{1, 2, 101, 102}));
}

TEST(SimTest, UnfinishedRootsDestroyedSafely) {
  std::vector<Time> log;
  {
    Environment env;
    env.Spawn(DelayProcess(env, 1000000, &log));
    env.RunUntil(10);
    // env destructor must clean up the suspended coroutine.
  }
  EXPECT_TRUE(log.empty());
}

TEST(CostModelTest, CopyCostScalesLinearly) {
  const SoftwareCosts& costs = DefaultCosts();
  EXPECT_EQ(costs.CopyCost(0), 0u);
  EXPECT_EQ(costs.CopyCost(4096), static_cast<Time>(4096 * 0.15));
  EXPECT_GT(costs.CopyCost(1 << 20), costs.CopyCost(1 << 10));
}

TEST(CostModelTest, CompressSlowerThanCopy) {
  const SoftwareCosts& costs = DefaultCosts();
  EXPECT_GT(costs.CompressCost(1 << 20), costs.CopyCost(1 << 20));
}

TEST(CostModelTest, LabStorPathCheaperThanKernelPath) {
  // The structural claim behind Fig. 6: one shared-memory round trip
  // costs less than syscall + block layer + IRQ completion.
  const SoftwareCosts& c = DefaultCosts();
  const Time labstor = c.shm_submit + c.worker_poll + c.request_alloc +
                       c.driver_submit + c.shm_complete;
  const Time kernel = c.syscall + c.block_layer + c.bio_alloc + c.dma_map +
                      c.driver_submit + c.irq_completion;
  EXPECT_LT(labstor, kernel);
}

}  // namespace
}  // namespace labstor::sim
