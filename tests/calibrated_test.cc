// Calibrated workload harness + DAOS-style interfaces (DESIGN.md §14):
// profile validation, distribution shape, burst/diurnal modulation,
// seed determinism (digest byte-identity across service times, start
// times, and the dst seed sweep), DAOS object key mapping and
// multi-key op counts, DAOS array chunk layout, and a single-node
// stack integration run.
//
// Own main: dst::InitSeeds strips --dst_seed / --dst_random_seeds
// before gtest parses argv, so CI can sweep CalibratedSweepTest.
#include <map>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bench/common.h"
#include "common/rng.h"
#include "dst/schedule.h"
#include "labmods/daos_array.h"
#include "labmods/daos_obj.h"
#include "sim/environment.h"
#include "workload/calibrated.h"

namespace labstor {
namespace {

using workload::CalibratedOptions;
using workload::CalibratedProfile;
using workload::CalibratedRequest;
using workload::CalibratedStats;
using workload::MetaOp;
using workload::OpClass;
using workload::Scenario;

CalibratedOptions SmallOpts(uint64_t seed = 7) {
  CalibratedOptions opts;
  opts.streams = 2;
  opts.duration = 5 * sim::kMs;
  opts.rate_per_stream = 20000.0;
  opts.seed = seed;
  return opts;
}

const workload::CalibratedOpFn kNullOp =
    [](const CalibratedRequest&) -> sim::Task<Status> {
  co_return Status::Ok();
};

// ---------------------------------------------------------------
// Profiles.
// ---------------------------------------------------------------

TEST(CalibratedProfileTest, PresetsValidate) {
  for (const Scenario s : workload::AllScenarios()) {
    const CalibratedProfile p = workload::ProfileFor(s);
    EXPECT_TRUE(p.Validate().ok()) << p.name;
    EXPECT_STREQ(workload::ScenarioName(s), p.name.c_str());
  }
}

TEST(CalibratedProfileTest, ValidateRejectsBadParameters) {
  CalibratedProfile p = workload::ProfileFor(Scenario::kReadHeavy);
  p.sizes.clear();
  EXPECT_FALSE(p.Validate().ok());

  p = workload::ProfileFor(Scenario::kReadHeavy);
  p.sizes[0].weight = -1.0;
  EXPECT_FALSE(p.Validate().ok());

  p = workload::ProfileFor(Scenario::kReadHeavy);
  p.metadata_fraction = 1.5;
  EXPECT_FALSE(p.Validate().ok());

  p = workload::ProfileFor(Scenario::kReadHeavy);
  p.meta_create_fraction = 0.7;
  p.meta_stat_fraction = 0.7;  // sums past 1
  EXPECT_FALSE(p.Validate().ok());

  p = workload::ProfileFor(Scenario::kMixedDiurnal);
  p.diurnal_amplitude = 1.0;  // rate would hit zero
  EXPECT_FALSE(p.Validate().ok());
}

// ---------------------------------------------------------------
// Distribution shape.
// ---------------------------------------------------------------

TEST(CalibratedDrawTest, SizeMixtureIs4kHeavyWithLargeTail) {
  const CalibratedProfile p = workload::ProfileFor(Scenario::kReadHeavy);
  Rng rng(123);
  std::map<uint64_t, uint64_t> counts;
  constexpr int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) ++counts[workload::SampleSize(p, rng)];
  // 4K dominates (weight 0.55), and the multi-MB tail exists but is
  // thin — the IO500 shape the profile encodes.
  EXPECT_GT(counts[4096], kDraws / 2 - 1000);
  EXPECT_GT(counts[16 << 20], 0u);
  EXPECT_LT(counts[16 << 20], kDraws / 10);
  // Weight-proportional within ~20% relative tolerance.
  double total_weight = 0;
  for (const auto& bin : p.sizes) total_weight += bin.weight;
  for (const auto& bin : p.sizes) {
    const double expected = kDraws * bin.weight / total_weight;
    EXPECT_NEAR(static_cast<double>(counts[bin.bytes]), expected,
                expected * 0.2 + 30)
        << bin.bytes;
  }
}

TEST(CalibratedDrawTest, OpMixMatchesProfileFractions) {
  const CalibratedProfile p = workload::ProfileFor(Scenario::kMetadataStorm);
  Rng rng(99);
  int meta = 0, reads = 0, data = 0, creates = 0;
  constexpr int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) {
    const CalibratedRequest req = workload::DrawRequest(p, 0, i, rng);
    if (req.cls == OpClass::kMetadata) {
      ++meta;
      EXPECT_EQ(req.size_bytes, 0u);
      if (req.meta == MetaOp::kCreate) ++creates;
    } else {
      ++data;
      EXPECT_GT(req.size_bytes, 0u);
      if (req.cls == OpClass::kDataRead) ++reads;
    }
  }
  EXPECT_NEAR(meta / static_cast<double>(kDraws), p.metadata_fraction, 0.02);
  EXPECT_NEAR(reads / static_cast<double>(data), p.read_fraction, 0.03);
  EXPECT_NEAR(creates / static_cast<double>(meta), p.meta_create_fraction,
              0.03);
}

TEST(CalibratedDrawTest, DiurnalFactorTracksSineEnvelope) {
  CalibratedProfile p = workload::ProfileFor(Scenario::kMixedDiurnal);
  p.diurnal_amplitude = 0.5;
  p.diurnal_period = 1000;
  EXPECT_DOUBLE_EQ(workload::DiurnalFactor(p, 0), 1.0);
  EXPECT_NEAR(workload::DiurnalFactor(p, 250), 1.5, 1e-9);   // peak
  EXPECT_NEAR(workload::DiurnalFactor(p, 750), 0.5, 1e-9);   // trough
  p.diurnal_amplitude = 0.0;
  EXPECT_DOUBLE_EQ(workload::DiurnalFactor(p, 250), 1.0);
}

// ---------------------------------------------------------------
// Harness runs (null op under the DES).
// ---------------------------------------------------------------

TEST(CalibratedRunTest, CountBoundAndClassAccounting) {
  sim::Environment env;
  CalibratedOptions opts;
  opts.streams = 3;
  opts.ops_per_stream = 50;
  opts.rate_per_stream = 100000.0;
  opts.seed = 5;
  const CalibratedStats stats = workload::RunCalibrated(
      env, opts, workload::ProfileFor(Scenario::kMixedDiurnal), kNullOp);
  EXPECT_LE(stats.arrivals.issued, 150u);
  EXPECT_GT(stats.arrivals.issued, 100u);  // duration=0: count-bounded
  EXPECT_EQ(stats.arrivals.issued, stats.arrivals.completed);
  EXPECT_EQ(stats.arrivals.issued,
            stats.data_reads + stats.data_writes + stats.metadata_ops);
  EXPECT_EQ(stats.failed_ops, 0u);
  EXPECT_GT(stats.bytes_read + stats.bytes_written, 0u);
}

TEST(CalibratedRunTest, DurationBoundStopsIssuing) {
  sim::Environment env;
  CalibratedOptions opts = SmallOpts();
  const CalibratedStats stats = workload::RunCalibrated(
      env, opts, workload::ProfileFor(Scenario::kReadHeavy), kNullOp);
  EXPECT_GT(stats.arrivals.issued, 0u);
  // Base expectation: rate * duration * streams, with burst headroom.
  const double base = opts.rate_per_stream * 5e-3 * opts.streams;
  EXPECT_LT(stats.arrivals.issued, base * 3);
}

TEST(CalibratedRunTest, BurstsModulateArrivals) {
  // Same base rate with and without the on/off modulation: the bursty
  // profile must enter ON states and issue more than the flat one.
  CalibratedProfile bursty = workload::ProfileFor(Scenario::kWriteBurst);
  CalibratedProfile flat = bursty;
  flat.burst_multiplier = 1.0;

  sim::Environment env1, env2;
  const CalibratedStats with_bursts =
      workload::RunCalibrated(env1, SmallOpts(), bursty, kNullOp);
  const CalibratedStats without =
      workload::RunCalibrated(env2, SmallOpts(), flat, kNullOp);
  EXPECT_GT(with_bursts.bursts_entered, 0u);
  EXPECT_EQ(without.bursts_entered, 0u);
  EXPECT_GT(with_bursts.arrivals.issued, without.arrivals.issued);
}

TEST(CalibratedRunTest, DiurnalEnvelopeShiftsArrivalsToThePeak) {
  // Amplitude 0.9, one full period: the first half-period (sin > 0)
  // must see far more arrivals than the second (sin < 0).
  CalibratedProfile p = workload::ProfileFor(Scenario::kReadHeavy);
  p.burst_multiplier = 1.0;  // isolate the envelope
  p.diurnal_amplitude = 0.9;
  p.diurnal_period = 4 * sim::kMs;

  sim::Environment env;
  CalibratedOptions opts = SmallOpts();
  opts.streams = 1;
  opts.duration = 4 * sim::kMs;
  uint64_t first_half = 0, second_half = 0;
  const workload::CalibratedOpFn counting_op =
      [&](const CalibratedRequest&) -> sim::Task<Status> {
    (env.now() < 2 * sim::kMs ? first_half : second_half) += 1;
    co_return Status::Ok();
  };
  workload::RunCalibrated(env, opts, p, counting_op);
  EXPECT_GT(first_half, 2 * second_half);
}

TEST(CalibratedRunTest, TelemetryCountersMatchStats) {
  sim::Environment env;
  telemetry::Telemetry tel;
  CalibratedOptions opts = SmallOpts();
  opts.telemetry = &tel;
  const CalibratedProfile p = workload::ProfileFor(Scenario::kMixedDiurnal);
  const CalibratedStats stats = workload::RunCalibrated(env, opts, p, kNullOp);
  auto& m = tel.metrics();
  const std::string prefix = "workload.calibrated." + p.name;
  EXPECT_EQ(m.GetCounter(prefix + ".issued")->Value(), stats.arrivals.issued);
  EXPECT_EQ(m.GetCounter(prefix + ".data_read")->Value(), stats.data_reads);
  EXPECT_EQ(m.GetCounter(prefix + ".data_write")->Value(), stats.data_writes);
  EXPECT_EQ(m.GetCounter(prefix + ".metadata")->Value(), stats.metadata_ops);
  EXPECT_EQ(m.GetCounter(prefix + ".failed")->Value(), 0u);
}

TEST(CalibratedRunTest, FailedOpsAreCountedButDoNotStopTheRun) {
  sim::Environment env;
  uint64_t calls = 0;
  const workload::CalibratedOpFn flaky =
      [&calls](const CalibratedRequest&) -> sim::Task<Status> {
    ++calls;
    if (calls % 3 == 0) co_return Status::Internal("injected");
    co_return Status::Ok();
  };
  const CalibratedStats stats = workload::RunCalibrated(
      env, SmallOpts(), workload::ProfileFor(Scenario::kReadHeavy), flaky);
  EXPECT_EQ(stats.failed_ops, calls / 3);
  EXPECT_EQ(stats.arrivals.completed, calls);
}

// ---------------------------------------------------------------
// Determinism: the issue digest.
// ---------------------------------------------------------------

TEST(CalibratedDigestTest, SameSeedSameDigestDifferentSeedDifferentDigest) {
  const CalibratedProfile p = workload::ProfileFor(Scenario::kMixedDiurnal);
  sim::Environment env1, env2, env3;
  const CalibratedStats a =
      workload::RunCalibrated(env1, SmallOpts(41), p, kNullOp);
  const CalibratedStats b =
      workload::RunCalibrated(env2, SmallOpts(41), p, kNullOp);
  const CalibratedStats c =
      workload::RunCalibrated(env3, SmallOpts(42), p, kNullOp);
  EXPECT_EQ(a.issue_digest, b.issue_digest);
  EXPECT_EQ(a.arrivals.issued, b.arrivals.issued);
  EXPECT_NE(a.issue_digest, c.issue_digest);
}

TEST(CalibratedDigestTest, DigestIndependentOfServiceTime) {
  // Open loop: a run whose ops take real (virtual) time must issue the
  // exact same sequence as a dry run against an instant op.
  const CalibratedProfile p = workload::ProfileFor(Scenario::kWriteBurst);
  sim::Environment env1;
  const CalibratedStats dry =
      workload::RunCalibrated(env1, SmallOpts(), p, kNullOp);

  sim::Environment env2;
  const workload::CalibratedOpFn slow =
      [&env2](const CalibratedRequest& req) -> sim::Task<Status> {
    co_await env2.Delay(10 * sim::kUs + req.size_bytes / 100);
    co_return Status::Ok();
  };
  const CalibratedStats loaded =
      workload::RunCalibrated(env2, SmallOpts(), p, slow);
  EXPECT_EQ(dry.issue_digest, loaded.issue_digest);
  EXPECT_EQ(dry.arrivals.issued, loaded.arrivals.issued);
}

TEST(CalibratedDigestTest, DigestIndependentOfSetupPhase) {
  // A prepopulation phase that advances the DES clock before the
  // harness starts must not shift the issue sequence (times are folded
  // relative to harness start).
  const CalibratedProfile p = workload::ProfileFor(Scenario::kMixedDiurnal);
  sim::Environment env1;
  const CalibratedStats fresh =
      workload::RunCalibrated(env1, SmallOpts(), p, kNullOp);

  sim::Environment env2;
  env2.Spawn([](sim::Environment& env) -> sim::Task<void> {
    co_await env.Delay(3 * sim::kMs + 137);
  }(env2));
  env2.Run();
  ASSERT_GT(env2.now(), 0u);
  const CalibratedStats shifted =
      workload::RunCalibrated(env2, SmallOpts(), p, kNullOp);
  EXPECT_EQ(fresh.issue_digest, shifted.issue_digest);
  EXPECT_EQ(fresh.arrivals.issued, shifted.arrivals.issued);
}

// ---------------------------------------------------------------
// DAOS object interface.
// ---------------------------------------------------------------

struct KvCall {
  char op;  // 'P', 'G', 'D'
  uint32_t stream;
  std::string key;
  uint64_t size;
};

class RecordingKvEndpoint final : public labmods::KvEndpoint {
 public:
  sim::Task<Status> Put(uint32_t stream, std::string key,
                        uint64_t size) override {
    calls.push_back({'P', stream, key, size});
    co_return NextStatus();
  }
  sim::Task<Status> Get(uint32_t stream, std::string key) override {
    calls.push_back({'G', stream, key, 0});
    co_return NextStatus();
  }
  sim::Task<Status> Delete(uint32_t stream, std::string key) override {
    calls.push_back({'D', stream, key, 0});
    co_return NextStatus();
  }

  std::vector<KvCall> calls;
  int fail_after = -1;  // fail every call once this many have landed

 private:
  Status NextStatus() {
    if (fail_after >= 0 && static_cast<int>(calls.size()) > fail_after) {
      return Status::Internal("injected");
    }
    return Status::Ok();
  }
};

// Drives a Task<Status> to completion under the DES.
Status RunTask(sim::Environment& env, sim::Task<Status> task) {
  Status out;
  env.Spawn([](sim::Task<Status> t, Status* result) -> sim::Task<void> {
    *result = co_await std::move(t);
  }(std::move(task), &out));
  env.Run();
  return out;
}

TEST(DaosObjTest, KeyForEncodesObjectDkeyAkey) {
  RecordingKvEndpoint ep;
  labmods::DaosObjStore store(ep, "obj");
  EXPECT_EQ(store.KeyFor({5, 7}, "dk", "ak"), "obj/o5.7/dk/ak");
}

TEST(DaosObjTest, UpdateMultiIssuesOnePutPerAkeyInOrder) {
  sim::Environment env;
  RecordingKvEndpoint ep;
  labmods::DaosObjStore store(ep, "obj");
  std::vector<labmods::AkeyUpdate> updates;
  updates.push_back({"a0", 100});
  updates.push_back({"a1", 200});
  updates.push_back({"a2", 300});
  const Status st =
      RunTask(env, store.UpdateMulti(3, {1, 2}, "dk", std::move(updates)));
  EXPECT_TRUE(st.ok());
  ASSERT_EQ(ep.calls.size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(ep.calls[i].op, 'P');
    EXPECT_EQ(ep.calls[i].stream, 3u);
    EXPECT_EQ(ep.calls[i].key,
              "obj/o1.2/dk/a" + std::to_string(i));
    EXPECT_EQ(ep.calls[i].size, 100 * (i + 1));
  }
  EXPECT_EQ(store.updates(), 1u);
  EXPECT_EQ(store.keys_touched(), 3u);
}

TEST(DaosObjTest, FetchMultiStopsAtFirstFailure) {
  sim::Environment env;
  RecordingKvEndpoint ep;
  ep.fail_after = 2;
  labmods::DaosObjStore store(ep, "obj");
  const Status st =
      RunTask(env, store.FetchMulti(0, {1, 1}, "dk", {"a", "b", "c", "d"}));
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(ep.calls.size(), 3u);  // third get failed; fourth never sent
  EXPECT_EQ(store.fetches(), 1u);
}

TEST(DaosObjTest, PunchDeletesEveryAkey) {
  sim::Environment env;
  RecordingKvEndpoint ep;
  labmods::DaosObjStore store(ep, "obj");
  const Status st = RunTask(env, store.Punch(1, {9, 9}, "dk", {"x", "y"}));
  EXPECT_TRUE(st.ok());
  ASSERT_EQ(ep.calls.size(), 2u);
  EXPECT_EQ(ep.calls[0].op, 'D');
  EXPECT_EQ(ep.calls[0].key, "obj/o9.9/dk/x");
  EXPECT_EQ(ep.calls[1].key, "obj/o9.9/dk/y");
  EXPECT_EQ(store.punches(), 1u);
}

// ---------------------------------------------------------------
// DAOS array interface.
// ---------------------------------------------------------------

struct FileCall {
  char op;  // 'C', 'W', 'R', 'S', 'U'
  std::string path;
  uint64_t offset;
  uint64_t length;
};

class RecordingFileEndpoint final : public labmods::FileEndpoint {
 public:
  sim::Task<Status> Create(uint32_t, std::string path) override {
    calls.push_back({'C', path, 0, 0});
    co_return Status::Ok();
  }
  sim::Task<Status> WriteAt(uint32_t, std::string path, uint64_t offset,
                            uint64_t length) override {
    calls.push_back({'W', path, offset, length});
    co_return Status::Ok();
  }
  sim::Task<Status> ReadAt(uint32_t, std::string path, uint64_t offset,
                           uint64_t length) override {
    calls.push_back({'R', path, offset, length});
    co_return Status::Ok();
  }
  sim::Task<Status> Stat(uint32_t, std::string path) override {
    calls.push_back({'S', path, 0, 0});
    co_return Status::Ok();
  }
  sim::Task<Status> Remove(uint32_t, std::string path) override {
    calls.push_back({'U', path, 0, 0});
    co_return Status::Ok();
  }
  std::vector<FileCall> calls;
};

labmods::ArraySpec TestSpec() {
  labmods::ArraySpec spec;
  spec.cell_size = 1024;
  spec.chunk_size = 4096;  // 4 cells per chunk
  spec.targets = 3;
  return spec;
}

TEST(DaosArrayTest, SingleChunkAccessYieldsOneExtent) {
  RecordingFileEndpoint ep;
  labmods::DaosArray array(ep, "arr", TestSpec());
  const auto extents = array.Extents(7, 1, 2);  // cells 1-2 of chunk 0
  ASSERT_EQ(extents.size(), 1u);
  EXPECT_EQ(extents[0].target, 0u);
  EXPECT_EQ(extents[0].path, "arr/oid7.t0");
  EXPECT_EQ(extents[0].offset, 1024u);
  EXPECT_EQ(extents[0].length, 2048u);
}

TEST(DaosArrayTest, ChunkBoundarySplitsAndRoundRobinsTargets) {
  RecordingFileEndpoint ep;
  labmods::DaosArray array(ep, "arr", TestSpec());
  // Cells 3..8 span chunks 0,1,2 -> targets 0,1,2.
  const auto extents = array.Extents(1, 3, 6);
  ASSERT_EQ(extents.size(), 3u);
  EXPECT_EQ(extents[0].target, 0u);
  EXPECT_EQ(extents[0].offset, 3 * 1024u);
  EXPECT_EQ(extents[0].length, 1024u);
  EXPECT_EQ(extents[1].target, 1u);
  EXPECT_EQ(extents[1].offset, 0u);  // chunk 1 is target 1's first chunk
  EXPECT_EQ(extents[1].length, 4096u);
  EXPECT_EQ(extents[2].target, 2u);
  EXPECT_EQ(extents[2].offset, 0u);
  EXPECT_EQ(extents[2].length, 1024u);
}

TEST(DaosArrayTest, FixedStrideWrapsBackToTargetZero) {
  RecordingFileEndpoint ep;
  labmods::DaosArray array(ep, "arr", TestSpec());
  // Chunk 3 (cells 12..15) wraps to target 0 at file offset chunk_size
  // (its second chunk on that target: 3 / 3 = 1).
  const auto extents = array.Extents(1, 12, 4);
  ASSERT_EQ(extents.size(), 1u);
  EXPECT_EQ(extents[0].target, 0u);
  EXPECT_EQ(extents[0].offset, 4096u);
  EXPECT_EQ(extents[0].length, 4096u);
}

TEST(DaosArrayTest, WriteIssuesOneIoPerExtentAndCounts) {
  sim::Environment env;
  RecordingFileEndpoint ep;
  labmods::DaosArray array(ep, "arr", TestSpec());
  const Status st = RunTask(env, array.Write(0, 1, 3, 6));
  EXPECT_TRUE(st.ok());
  ASSERT_EQ(ep.calls.size(), 3u);
  for (const FileCall& call : ep.calls) EXPECT_EQ(call.op, 'W');
  EXPECT_EQ(array.extent_ios(), 3u);
  EXPECT_EQ(array.bytes_written(), 6 * 1024u);
  EXPECT_EQ(array.bytes_read(), 0u);
}

TEST(DaosArrayTest, ObjectLifecycleTouchesEveryTargetFile) {
  sim::Environment env;
  RecordingFileEndpoint ep;
  labmods::DaosArray array(ep, "arr", TestSpec());
  EXPECT_TRUE(RunTask(env, array.CreateObject(0, 4)).ok());
  EXPECT_TRUE(RunTask(env, array.StatObject(0, 4)).ok());
  EXPECT_TRUE(RunTask(env, array.RemoveObject(0, 4)).ok());
  ASSERT_EQ(ep.calls.size(), 3u + 1u + 3u);
  std::set<std::string> created, removed;
  for (const FileCall& call : ep.calls) {
    if (call.op == 'C') created.insert(call.path);
    if (call.op == 'U') removed.insert(call.path);
  }
  EXPECT_EQ(created.size(), 3u);
  EXPECT_EQ(created, removed);
}

// ---------------------------------------------------------------
// Single-node stack integration: calibrated traffic through the DAOS
// object interface over a real LabKVS stack.
// ---------------------------------------------------------------

TEST(CalibratedStackTest, ObjectStoreOverLabKvsCompletesWithoutFailures) {
  sim::Environment env;
  simdev::DeviceRegistry devices(&env);
  auto params = simdev::DeviceParams::NvmeP3700(1ull << 30);
  params.name = "dct";
  ASSERT_TRUE(devices.Create(params).ok());
  core::SimRuntime rt(env, devices, /*workers=*/2);
  auto stack = rt.MountYaml(bench::LabKvsStack(
      "kvs::/t", "ct", /*with_permissions=*/false, /*sync=*/false, "dct"));
  ASSERT_TRUE(stack.ok());
  CalibratedOptions opts;
  opts.streams = 2;
  opts.ops_per_stream = 60;
  opts.rate_per_stream = 50000.0;
  opts.seed = 17;
  for (uint32_t s = 0; s < opts.streams; ++s) {
    rt.RegisterQueue(1 + s, 5 * sim::kUs);
  }
  labmods::StackKvEndpoint ep(rt, **stack, "kvs::/t", 1);
  labmods::DaosObjStore store(ep, "obj");

  // Put-only mapping so nothing can miss: every op lands as an update
  // keyed by its class (failures would mean real stack breakage).
  const workload::CalibratedOpFn op =
      [&store](const CalibratedRequest& req) -> sim::Task<Status> {
    labmods::AkeyUpdate update;
    update.akey = workload::OpClassName(req.cls);
    update.size = req.size_bytes;
    co_return co_await store.Update(
        req.stream, {req.stream, req.index % 8}, "d", std::move(update));
  };
  const CalibratedStats stats = workload::RunCalibrated(
      env, opts, workload::ProfileFor(Scenario::kMetadataStorm), op);
  EXPECT_EQ(stats.arrivals.issued, 120u);
  EXPECT_EQ(stats.arrivals.completed, 120u);
  EXPECT_EQ(stats.failed_ops, 0u);
  EXPECT_EQ(store.updates(), 120u);
  EXPECT_GT(stats.meta_latency.count(), 0u);
}

// ---------------------------------------------------------------
// Seed sweep (CI: --dst_seed / --dst_random_seeds).
// ---------------------------------------------------------------

TEST(CalibratedSweepTest, EverySeedReplaysByteIdentically) {
  std::set<uint64_t> digests;
  for (const uint64_t seed : dst::SeedList()) {
    for (const Scenario s :
         {Scenario::kWriteBurst, Scenario::kMixedDiurnal}) {
      const CalibratedProfile p = workload::ProfileFor(s);
      sim::Environment env1, env2;
      const CalibratedStats a =
          workload::RunCalibrated(env1, SmallOpts(seed), p, kNullOp);
      const CalibratedStats b =
          workload::RunCalibrated(env2, SmallOpts(seed), p, kNullOp);
      ASSERT_EQ(a.issue_digest, b.issue_digest)
          << p.name << " seed=0x" << std::hex << seed;
      ASSERT_EQ(a.arrivals.issued, b.arrivals.issued);
      ASSERT_GT(a.arrivals.issued, 0u);
      digests.insert(a.issue_digest);
    }
  }
  // Distinct seeds (x scenarios) produce distinct sequences.
  EXPECT_GE(digests.size(), 2 * dst::SeedList().size() - 1);
}

}  // namespace
}  // namespace labstor

int main(int argc, char** argv) {
  labstor::dst::InitSeeds(&argc, argv);
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
