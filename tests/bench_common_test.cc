// Regression tests for the shared bench helpers (bench/common.{h,cc}):
// the nearest-rank percentile math in Summarize and the RFC 8259
// string escaping in JsonQuote. Both had long-standing bugs that every
// BENCH_*.json inherited (percentiles one rank high; raw control
// characters emitted into "valid" JSON), so the expected values here
// are pinned on small hand-checkable vectors.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "bench/common.h"

namespace labstor::bench {
namespace {

// ---------- Summarize: nearest-rank percentiles ----------

TEST(SummarizeTest, EmptyInputIsAllZero) {
  const TailStats s = Summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
  EXPECT_EQ(s.p50, 0.0);
  EXPECT_EQ(s.p99, 0.0);
  EXPECT_EQ(s.p999, 0.0);
}

TEST(SummarizeTest, SingleSampleIsEveryPercentile) {
  const TailStats s = Summarize({7.0});
  EXPECT_EQ(s.count, 1u);
  EXPECT_EQ(s.mean, 7.0);
  EXPECT_EQ(s.p50, 7.0);
  EXPECT_EQ(s.p99, 7.0);
  EXPECT_EQ(s.p999, 7.0);
}

// The regression the fix is for: nearest-rank p50 of {1,2} is
// rank ceil(2*0.5) = 1, i.e. the value 1. The pre-fix index math
// (samples[n * permille / 1000] = samples[1]) returned 2.
TEST(SummarizeTest, MedianOfTwoIsLowerSample) {
  const TailStats s = Summarize({2.0, 1.0});
  EXPECT_EQ(s.p50, 1.0);
}

TEST(SummarizeTest, KnownSmallVectors) {
  // n=4, sorted {10,20,30,40}: p50 -> rank ceil(2.0)=2 -> 20;
  // p99 -> rank ceil(3.96)=4 -> 40.
  TailStats s = Summarize({40.0, 10.0, 30.0, 20.0});
  EXPECT_EQ(s.p50, 20.0);
  EXPECT_EQ(s.p99, 40.0);
  EXPECT_EQ(s.p999, 40.0);
  EXPECT_EQ(s.mean, 25.0);

  // n=5, {1..5}: p50 -> rank ceil(2.5)=3 -> 3.
  s = Summarize({5.0, 4.0, 3.0, 2.0, 1.0});
  EXPECT_EQ(s.p50, 3.0);
  EXPECT_EQ(s.p99, 5.0);
}

TEST(SummarizeTest, HundredSamplesPinAllThreePercentiles) {
  // samples = 1..100. Nearest rank: p50 -> rank 50 -> value 50,
  // p99 -> rank 99 -> value 99 (pre-fix math indexed samples[99] = 100),
  // p999 -> rank ceil(99.9) = 100 -> value 100.
  std::vector<double> v;
  for (int i = 1; i <= 100; ++i) v.push_back(i);
  const TailStats s = Summarize(std::move(v));
  EXPECT_EQ(s.p50, 50.0);
  EXPECT_EQ(s.p99, 99.0);
  EXPECT_EQ(s.p999, 100.0);
}

TEST(SummarizeTest, ThousandSamples) {
  // 1..1000: p999 -> rank 999 -> 999 (pre-fix: samples[999] = 1000).
  std::vector<double> v;
  for (int i = 1; i <= 1000; ++i) v.push_back(i);
  const TailStats s = Summarize(std::move(v));
  EXPECT_EQ(s.p50, 500.0);
  EXPECT_EQ(s.p99, 990.0);
  EXPECT_EQ(s.p999, 999.0);
}

// ---------- JsonQuote: RFC 8259 escaping ----------

// Minimal JSON string unquoter for the round-trip check: accepts
// exactly the escapes RFC 8259 defines.
bool JsonUnquote(const std::string& quoted, std::string* out) {
  if (quoted.size() < 2 || quoted.front() != '"' || quoted.back() != '"') {
    return false;
  }
  out->clear();
  for (size_t i = 1; i + 1 < quoted.size(); ++i) {
    const char c = quoted[i];
    if (static_cast<unsigned char>(c) < 0x20) return false;  // bare control
    if (c != '\\') {
      out->push_back(c);
      continue;
    }
    if (i + 1 >= quoted.size() - 1) return false;  // dangling backslash
    const char esc = quoted[++i];
    switch (esc) {
      case '"':  out->push_back('"'); break;
      case '\\': out->push_back('\\'); break;
      case '/':  out->push_back('/'); break;
      case 'b':  out->push_back('\b'); break;
      case 'f':  out->push_back('\f'); break;
      case 'n':  out->push_back('\n'); break;
      case 'r':  out->push_back('\r'); break;
      case 't':  out->push_back('\t'); break;
      case 'u': {
        if (i + 4 >= quoted.size()) return false;
        unsigned code = 0;
        if (std::sscanf(quoted.c_str() + i + 1, "%4x", &code) != 1) {
          return false;
        }
        if (code > 0xFF) return false;  // test corpus is byte strings
        out->push_back(static_cast<char>(code));
        i += 4;
        break;
      }
      default:
        return false;
    }
  }
  return true;
}

TEST(JsonQuoteTest, PlainStringsPassThrough) {
  EXPECT_EQ(JsonQuote("read-heavy"), "\"read-heavy\"");
  EXPECT_EQ(JsonQuote(""), "\"\"");
}

TEST(JsonQuoteTest, QuotesAndBackslashesEscaped) {
  EXPECT_EQ(JsonQuote("a\"b"), "\"a\\\"b\"");
  EXPECT_EQ(JsonQuote("a\\b"), "\"a\\\\b\"");
}

// The regression: a scenario/device name carrying \n or \t used to be
// emitted raw, producing a literal newline inside a JSON string —
// invalid per RFC 8259 and unparseable by strict parsers.
TEST(JsonQuoteTest, ControlCharactersAreEscaped) {
  EXPECT_EQ(JsonQuote("line1\nline2"), "\"line1\\nline2\"");
  EXPECT_EQ(JsonQuote("col\tcol"), "\"col\\tcol\"");
  EXPECT_EQ(JsonQuote(std::string("nul\x01", 4)), "\"nul\\u0001\"");
  // No bare control character may survive in the quoted form.
  const std::string quoted = JsonQuote("\x02\x03\x1f");
  for (const char c : quoted) {
    EXPECT_GE(static_cast<unsigned char>(c), 0x20u);
  }
}

TEST(JsonQuoteTest, RoundTripsEveryByteBelow0x80) {
  std::string all;
  for (int b = 1; b < 0x80; ++b) all.push_back(static_cast<char>(b));
  std::string back;
  ASSERT_TRUE(JsonUnquote(JsonQuote(all), &back));
  EXPECT_EQ(back, all);
}

TEST(JsonQuoteTest, RoundTripsTrickyScenarioNames) {
  const std::vector<std::string> corpus = {
      "mixed-diurnal", "dev\nnvme0", "a\tb\rc", "quote\"inside",
      "back\\slash", std::string("embedded\x00nul", 12), "\x1b[31mred\x1b[0m",
  };
  for (const std::string& s : corpus) {
    std::string back;
    ASSERT_TRUE(JsonUnquote(JsonQuote(s), &back)) << JsonQuote(s);
    EXPECT_EQ(back, s);
  }
}

}  // namespace
}  // namespace labstor::bench
