// Parameterized property tests: invariants swept across API kinds,
// device presets, corpora, orchestrator policies, stack compositions,
// and value distributions.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <tuple>

#include "bench/common.h"
#include "common/histogram.h"
#include "common/rng.h"
#include "core/client.h"
#include "core/orchestrator.h"
#include "core/runtime.h"
#include "kernelsim/access_api.h"
#include "labmods/genericfs.h"
#include "labmods/lz77.h"
#include "simdev/registry.h"

namespace labstor {
namespace {

// ---------------------------------------------------------------
// 1. Every access route: overhead positive, end-to-end = overhead +
//    device service, kernel routes never beat the LabStor bypass.
// ---------------------------------------------------------------

class ApiRouteTest : public ::testing::TestWithParam<kernelsim::ApiKind> {};

sim::Task<void> DoOneIo(kernelsim::AccessApi& api) {
  co_await api.DoIo(simdev::IoOp::kWrite, 3, 1 << 20, 4096);
}

TEST_P(ApiRouteTest, OverheadPositiveAndComposes) {
  const kernelsim::ApiKind kind = GetParam();
  const sim::SoftwareCosts& c = sim::DefaultCosts();
  const sim::Time overhead = kernelsim::ApiOverhead(kind, c);
  EXPECT_GT(overhead, 0u);

  sim::Environment env;
  simdev::SimDevice device(&env, simdev::DeviceParams::NvmeP3700());
  kernelsim::AccessApi api(env, device, kind);
  env.Spawn(DoOneIo(api));
  const sim::Time end = env.Run();
  const auto p = simdev::DeviceParams::NvmeP3700();
  EXPECT_EQ(end, overhead + p.write_latency +
                     static_cast<sim::Time>(p.write_ns_per_byte * 4096));
}

TEST_P(ApiRouteTest, KernelRoutesPayAtLeastTheBlockSpine) {
  const kernelsim::ApiKind kind = GetParam();
  const sim::SoftwareCosts& c = sim::DefaultCosts();
  const bool is_kernel_route = kind == kernelsim::ApiKind::kPosix ||
                               kind == kernelsim::ApiKind::kPosixAio ||
                               kind == kernelsim::ApiKind::kLibAio ||
                               kind == kernelsim::ApiKind::kIoUring;
  if (is_kernel_route) {
    EXPECT_GE(kernelsim::ApiOverhead(kind, c), kernelsim::KernelBlockSpine(c));
  } else {
    EXPECT_LT(kernelsim::ApiOverhead(kind, c), kernelsim::KernelBlockSpine(c));
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllRoutes, ApiRouteTest,
    ::testing::Values(kernelsim::ApiKind::kPosix,
                      kernelsim::ApiKind::kPosixAio,
                      kernelsim::ApiKind::kLibAio,
                      kernelsim::ApiKind::kIoUring,
                      kernelsim::ApiKind::kLabKernelDriver,
                      kernelsim::ApiKind::kLabSpdk,
                      kernelsim::ApiKind::kLabDax),
    [](const auto& info) {
      return std::string(kernelsim::ApiKindName(info.param));
    });

// ---------------------------------------------------------------
// 2. Every device preset: service times scale with size, the
//    functional store round-trips, capacity is enforced.
// ---------------------------------------------------------------

struct DeviceCase {
  const char* name;
  simdev::DeviceParams (*make)(uint64_t);
};

class DevicePresetTest : public ::testing::TestWithParam<DeviceCase> {};

TEST_P(DevicePresetTest, ServiceTimeMonotonicInSize) {
  simdev::TimingModel model(GetParam().make(1 << 30));
  sim::Time prev = 0;
  for (const uint64_t size : {512ull, 4096ull, 65536ull, 1048576ull}) {
    // Same offset stream (sequential) so HDD seeks don't perturb.
    const sim::Time t =
        model.ServiceTime(simdev::IoOp::kWrite, 0, size, 0);
    EXPECT_GE(t, prev) << "size " << size;
    prev = t;
  }
}

TEST_P(DevicePresetTest, FunctionalRoundTrip) {
  simdev::SimDevice device(nullptr, GetParam().make(16 << 20));
  std::vector<uint8_t> data(9000);
  for (size_t i = 0; i < data.size(); ++i) data[i] = static_cast<uint8_t>(i * 7);
  ASSERT_TRUE(device.WriteNow(4096, data).ok());
  std::vector<uint8_t> out(9000);
  ASSERT_TRUE(device.ReadNow(4096, out).ok());
  EXPECT_EQ(out, data);
}

TEST_P(DevicePresetTest, CapacityEnforced) {
  simdev::SimDevice device(nullptr, GetParam().make(1 << 20));
  std::vector<uint8_t> data(4096);
  EXPECT_TRUE(device.WriteNow((1 << 20) - 4096, data).ok());
  EXPECT_FALSE(device.WriteNow((1 << 20) - 4095, data).ok());
}

TEST_P(DevicePresetTest, ParallelismParametersSane) {
  const simdev::DeviceParams p = GetParam().make(1 << 20);
  EXPECT_GE(p.num_hw_queues, 1u);
  EXPECT_GE(p.per_queue_parallelism, 1u);
  EXPECT_GE(p.device_parallelism, 1u);
  EXPECT_GT(p.write_ns_per_byte, 0.0);
  EXPECT_GT(p.read_ns_per_byte, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllPresets, DevicePresetTest,
    ::testing::Values(DeviceCase{"nvme", &simdev::DeviceParams::NvmeP3700},
                      DeviceCase{"sata_ssd", &simdev::DeviceParams::SataSsd},
                      DeviceCase{"hdd", &simdev::DeviceParams::SasHdd},
                      DeviceCase{"pmem", &simdev::DeviceParams::PmemEmulated}),
    [](const auto& info) { return std::string(info.param.name); });

// ---------------------------------------------------------------
// 3. LZ77 round-trips across corpus kind x size.
// ---------------------------------------------------------------

class Lz77SweepTest
    : public ::testing::TestWithParam<std::tuple<int, size_t>> {};

TEST_P(Lz77SweepTest, RoundTrips) {
  const auto [kind, size] = GetParam();
  Rng rng(static_cast<uint64_t>(kind) * 1000 + size);
  std::vector<uint8_t> input(size);
  switch (kind) {
    case 0:  // zeros
      break;
    case 1:  // periodic
      for (size_t i = 0; i < size; ++i) input[i] = static_cast<uint8_t>(i % 13);
      break;
    case 2:  // text-like
      for (size_t i = 0; i < size; ++i) {
        input[i] = static_cast<uint8_t>('a' + rng.Zipf(26, 0.9));
      }
      break;
    case 3:  // random
      for (auto& b : input) b = static_cast<uint8_t>(rng.Next());
      break;
    default:
      break;
  }
  const std::vector<uint8_t> compressed = labmods::Lz77Compress(input);
  auto restored = labmods::Lz77Decompress(compressed, input.size());
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(*restored, input);
  // Even random data must not blow up beyond the format's 9/8 + slack.
  EXPECT_LE(compressed.size(), input.size() + input.size() / 8 + 16);
}

std::string Lz77CaseName(
    const ::testing::TestParamInfo<std::tuple<int, size_t>>& info) {
  static const char* kKinds[] = {"zeros", "periodic", "text", "random"};
  return std::string(kKinds[std::get<0>(info.param)]) + "_" +
         std::to_string(std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    CorpusSweep, Lz77SweepTest,
    ::testing::Combine(::testing::Values(0, 1, 2, 3),
                       ::testing::Values(size_t{0}, size_t{1}, size_t{100},
                                         size_t{4096}, size_t{100000})),
    Lz77CaseName);

// ---------------------------------------------------------------
// 4. Every orchestrator policy: complete, duplicate-free assignments
//    within the worker budget, across queue/worker scales.
// ---------------------------------------------------------------

struct PolicyCase {
  const char* name;
  std::unique_ptr<core::WorkOrchestrator> (*make)();
};

class PolicySweepTest
    : public ::testing::TestWithParam<std::tuple<PolicyCase, size_t, size_t>> {
};

TEST_P(PolicySweepTest, AssignmentIsCompleteAndDuplicateFree) {
  const auto& [policy_case, num_queues, max_workers] = GetParam();
  auto policy = policy_case.make();
  Rng rng(num_queues * 31 + max_workers);
  std::vector<core::QueueLoad> queues;
  for (size_t i = 0; i < num_queues; ++i) {
    queues.push_back(core::QueueLoad{
        static_cast<uint32_t>(i + 1),
        rng.Bernoulli(0.3) ? 20 * sim::kMs : 3 * sim::kUs,
        rng.Uniform(100)});
  }
  const core::Assignment a = policy->Rebalance(queues, max_workers);
  EXPECT_LE(a.num_workers(), max_workers);
  EXPECT_EQ(a.latency_dedicated.size(), a.worker_queues.size());
  std::set<uint32_t> seen;
  for (const auto& worker : a.worker_queues) {
    for (const uint32_t qid : worker) {
      EXPECT_TRUE(seen.insert(qid).second) << "queue " << qid << " duplicated";
    }
  }
  EXPECT_EQ(seen.size(), num_queues);  // every queue drained by someone
}

INSTANTIATE_TEST_SUITE_P(
    PolicyScales, PolicySweepTest,
    ::testing::Combine(
        ::testing::Values(
            PolicyCase{"rr",
                       [] {
                         return std::unique_ptr<core::WorkOrchestrator>(
                             new core::RoundRobinOrchestrator());
                       }},
            PolicyCase{"fixed2",
                       [] {
                         return std::unique_ptr<core::WorkOrchestrator>(
                             new core::FixedOrchestrator(2));
                       }},
            PolicyCase{"dynamic",
                       [] {
                         return std::unique_ptr<core::WorkOrchestrator>(
                             new core::DynamicOrchestrator());
                       }}),
        ::testing::Values(size_t{1}, size_t{7}, size_t{32}),
        ::testing::Values(size_t{1}, size_t{4}, size_t{16})),
    [](const auto& info) {
      return std::string(std::get<0>(info.param).name) + "_q" +
             std::to_string(std::get<1>(info.param)) + "_w" +
             std::to_string(std::get<2>(info.param));
    });

// ---------------------------------------------------------------
// 5. Stack compositions: whatever mods sit between GenericFS and the
//    driver, a write/read round trip preserves every byte.
// ---------------------------------------------------------------

struct StackCase {
  const char* name;
  const char* middle;  // DAG fragment between labfs and the driver
  const char* exec_mode;
  const char* driver;
};

class StackCompositionTest : public ::testing::TestWithParam<StackCase> {};

TEST_P(StackCompositionTest, WriteReadFidelity) {
  const StackCase& sc = GetParam();
  simdev::DeviceRegistry devices(nullptr);
  ASSERT_TRUE(devices.Create(simdev::DeviceParams::NvmeP3700(128 << 20)).ok());
  core::Runtime::Options options;
  options.max_workers = 2;
  core::Runtime runtime(std::move(options), devices);

  std::string yaml = std::string("mount: fs::/p\n") +
                     "rules:\n  exec_mode: " + sc.exec_mode + "\n" +
                     "dag:\n"
                     "  - mod: labfs\n"
                     "    uuid: fs_param\n"
                     "    params:\n"
                     "      log_records_per_worker: 2048\n"
                     "    outputs: [" +
                     (*sc.middle ? "mid_param" : "drv_param") + "]\n";
  if (*sc.middle) {
    yaml += std::string("  - mod: ") + sc.middle +
            "\n"
            "    uuid: mid_param\n"
            "    outputs: [drv_param]\n";
  }
  yaml += std::string("  - mod: ") + sc.driver +
          "\n"
          "    uuid: drv_param\n";
  auto spec = core::StackSpec::Parse(yaml);
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  auto stack = runtime.MountStack(*spec, ipc::Credentials{1, 0, 0});
  ASSERT_TRUE(stack.ok()) << stack.status().ToString();
  const bool needs_workers = (*stack)->exec_mode() == core::ExecMode::kAsync;
  if (needs_workers) ASSERT_TRUE(runtime.Start().ok());

  core::Client client(runtime, ipc::Credentials{100, 1000, 1000});
  ASSERT_TRUE(client.Connect().ok());
  labmods::GenericFs fs(client);
  auto fd = fs.Create("fs::/p/file");
  ASSERT_TRUE(fd.ok()) << fd.status().ToString();
  // Compressible + unaligned payload, two writes, one overlapping.
  Rng rng(99);
  std::vector<uint8_t> data(20000);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<uint8_t>(rng.Zipf(50, 0.8));
  }
  ASSERT_TRUE(fs.Write(*fd, data, 123).ok());
  std::vector<uint8_t> out(20000);
  auto read = fs.Read(*fd, out, 123);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, data.size());
  EXPECT_EQ(out, data);
  ASSERT_TRUE(fs.Fsync(*fd).ok());
  if (needs_workers) ASSERT_TRUE(runtime.Stop().ok());
}

INSTANTIATE_TEST_SUITE_P(
    Compositions, StackCompositionTest,
    ::testing::Values(
        StackCase{"bare_sync", "", "sync", "kernel_driver"},
        StackCase{"bare_async", "", "async", "kernel_driver"},
        StackCase{"lru_sync", "lru_cache", "sync", "kernel_driver"},
        StackCase{"adaptive_sync", "adaptive_cache", "sync", "kernel_driver"},
        StackCase{"compress_sync", "compress", "sync", "kernel_driver"},
        StackCase{"consistency_sync", "consistency", "sync", "kernel_driver"},
        StackCase{"lru_async", "lru_cache", "async", "kernel_driver"},
        StackCase{"spdk_sync", "", "sync", "spdk"},
        StackCase{"uring_sync", "", "sync", "uring_driver"},
        StackCase{"dax_sync", "", "sync", "dax"}),
    [](const auto& info) { return std::string(info.param.name); });

// ---------------------------------------------------------------
// 6. Histogram percentiles stay within bucket error across
//    distributions.
// ---------------------------------------------------------------

class HistogramSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(HistogramSweepTest, PercentilesWithinFivePercent) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 5);
  Histogram h;
  std::vector<uint64_t> values;
  for (int i = 0; i < 50000; ++i) {
    uint64_t v = 0;
    switch (GetParam()) {
      case 0: v = 1000 + rng.Uniform(1'000'000); break;              // uniform
      case 1: v = static_cast<uint64_t>(rng.Exponential(50'000)) + 1; break;
      case 2: v = 100 * (1 + rng.Zipf(10'000, 0.9)); break;          // heavy tail
      default: break;
    }
    h.Record(v);
    values.push_back(v);
  }
  std::sort(values.begin(), values.end());
  for (const double p : {50.0, 90.0, 99.0}) {
    const uint64_t exact =
        values[static_cast<size_t>(p / 100.0 * values.size()) - 1];
    const uint64_t approx = h.Percentile(p);
    EXPECT_NEAR(static_cast<double>(approx), static_cast<double>(exact),
                0.05 * static_cast<double>(exact) + 2.0)
        << "p" << p;
  }
}

std::string HistogramCaseName(const ::testing::TestParamInfo<int>& info) {
  static const char* kNames[] = {"uniform", "expo", "zipf"};
  return std::string(kNames[info.param]);
}

INSTANTIATE_TEST_SUITE_P(Distributions, HistogramSweepTest,
                         ::testing::Values(0, 1, 2), HistogramCaseName);

}  // namespace
}  // namespace labstor
