// ZNS driver LabMod: zoned-namespace semantics (sequential-only
// writes, zone append with assigned offsets, resets, state machine).
#include "labmods/zns_driver.h"

#include <gtest/gtest.h>

#include "core/debug_harness.h"
#include "simdev/registry.h"

namespace labstor::labmods {
namespace {

class ZnsTest : public ::testing::Test {
 protected:
  ZnsTest() {
    auto dev = devices_.Create(simdev::DeviceParams::NvmeP3700(16 << 20));
    EXPECT_TRUE(dev.ok());
    device_ = *dev;
    core::ModContext ctx;
    ctx.devices = &devices_;
    auto params = yaml::Parse("zone_size_mb: 1\n");
    EXPECT_TRUE(params.ok());
    auto harness = core::DebugHarness::Create("zns_driver", *params, ctx);
    EXPECT_TRUE(harness.ok()) << harness.status().ToString();
    harness_ = std::move(*harness);
    zns_ = dynamic_cast<ZnsDriverMod*>(&harness_->mod());
    EXPECT_NE(zns_, nullptr);
  }

  Status Op(ipc::OpCode op, uint64_t offset, std::span<uint8_t> data) {
    ipc::Request req;
    req.op = op;
    req.offset = offset;
    req.length = data.size();
    req.data = data.empty() ? nullptr : data.data();
    const Status st = harness_->Feed(req);
    last_result_ = req.result_u64;
    return st;
  }

  simdev::DeviceRegistry devices_;
  simdev::SimDevice* device_ = nullptr;
  std::unique_ptr<core::DebugHarness> harness_;
  ZnsDriverMod* zns_ = nullptr;
  uint64_t last_result_ = 0;
};

TEST_F(ZnsTest, ZonesCoverTheDevice) {
  EXPECT_EQ(zns_->num_zones(), 16u);  // 16MB / 1MB zones
  auto z0 = zns_->Zone(0);
  ASSERT_TRUE(z0.ok());
  EXPECT_EQ(z0->start, 0u);
  EXPECT_EQ(z0->write_pointer, 0u);
  EXPECT_EQ(z0->state, ZoneState::kEmpty);
  EXPECT_FALSE(zns_->Zone(99).ok());
}

TEST_F(ZnsTest, SequentialWritesAdvanceThePointer) {
  std::vector<uint8_t> data(4096, 0x11);
  ASSERT_TRUE(Op(ipc::OpCode::kBlkWrite, 0, data).ok());
  ASSERT_TRUE(Op(ipc::OpCode::kBlkWrite, 4096, data).ok());
  auto zone = zns_->Zone(0);
  ASSERT_TRUE(zone.ok());
  EXPECT_EQ(zone->write_pointer, 8192u);
  EXPECT_EQ(zone->state, ZoneState::kOpen);
}

TEST_F(ZnsTest, NonSequentialWriteRejected) {
  std::vector<uint8_t> data(4096, 0x22);
  ASSERT_TRUE(Op(ipc::OpCode::kBlkWrite, 0, data).ok());
  // Skipping ahead violates the write pointer.
  EXPECT_EQ(Op(ipc::OpCode::kBlkWrite, 8192, data).code(),
            StatusCode::kInvalidArgument);
  // Rewriting the start does too.
  EXPECT_EQ(Op(ipc::OpCode::kBlkWrite, 0, data).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(ZnsTest, WriteMayNotCrossZoneBoundary) {
  std::vector<uint8_t> big(2 << 20, 0x33);  // 2MB into a 1MB zone
  EXPECT_EQ(Op(ipc::OpCode::kBlkWrite, 0, big).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(ZnsTest, ZoneFillsToFullAndRejectsMore) {
  std::vector<uint8_t> quarter(256 << 10, 0x44);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(
        Op(ipc::OpCode::kBlkWrite, static_cast<uint64_t>(i) * (256 << 10),
           quarter)
            .ok());
  }
  auto zone = zns_->Zone(0);
  ASSERT_TRUE(zone.ok());
  EXPECT_EQ(zone->state, ZoneState::kFull);
  EXPECT_EQ(Op(ipc::OpCode::kBlkWrite, 1 << 20, quarter).code(),
            StatusCode::kOk);  // next zone is fine
  // Any write aimed into the FULL zone is refused by its state.
  EXPECT_EQ(Op(ipc::OpCode::kBlkWrite, 0, quarter).code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(ZnsTest, AppendReturnsAssignedOffsetAndLandsData) {
  std::vector<uint8_t> a(4096, 0xAA);
  std::vector<uint8_t> b(4096, 0xBB);
  // Appends target the zone containing req.offset; the device picks
  // the actual location.
  ASSERT_TRUE(Op(ipc::OpCode::kZoneAppend, 0, a).ok());
  EXPECT_EQ(last_result_, 0u);
  ASSERT_TRUE(Op(ipc::OpCode::kZoneAppend, 0, b).ok());
  EXPECT_EQ(last_result_, 4096u);
  std::vector<uint8_t> out(4096);
  ASSERT_TRUE(device_->ReadNow(4096, out).ok());
  EXPECT_EQ(out, b);
}

TEST_F(ZnsTest, ResetRewindsAndAllowsRewrite) {
  std::vector<uint8_t> data(4096, 0x55);
  ASSERT_TRUE(Op(ipc::OpCode::kBlkWrite, 0, data).ok());
  ASSERT_TRUE(Op(ipc::OpCode::kZoneReset, 0, {}).ok());
  auto zone = zns_->Zone(0);
  ASSERT_TRUE(zone.ok());
  EXPECT_EQ(zone->write_pointer, 0u);
  EXPECT_EQ(zone->state, ZoneState::kEmpty);
  EXPECT_TRUE(Op(ipc::OpCode::kBlkWrite, 0, data).ok());
}

TEST_F(ZnsTest, ReadBeyondWritePointerRejected) {
  std::vector<uint8_t> data(4096, 0x66);
  ASSERT_TRUE(Op(ipc::OpCode::kBlkWrite, 0, data).ok());
  std::vector<uint8_t> out(4096);
  EXPECT_TRUE(Op(ipc::OpCode::kBlkRead, 0, out).ok());
  EXPECT_EQ(Op(ipc::OpCode::kBlkRead, 4096, out).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(ZnsTest, StateSurvivesUpgrade) {
  std::vector<uint8_t> data(4096, 0x77);
  ASSERT_TRUE(Op(ipc::OpCode::kBlkWrite, 0, data).ok());
  ZnsDriverMod fresh;
  ASSERT_TRUE(fresh.StateUpdate(*zns_).ok());
  auto zone = fresh.Zone(0);
  ASSERT_TRUE(zone.ok());
  EXPECT_EQ(zone->write_pointer, 4096u);
}

}  // namespace
}  // namespace labstor::labmods
