// ZNS driver LabMod: zoned-namespace semantics (sequential-only
// writes, zone append with assigned offsets, resets, the full
// empty/open/closed/full state machine with open-zone limits,
// conventional zones, and LabFS's log-structured placement on top.
//
// Own main: dst::InitSeeds strips --dst_seed before gtest parses argv,
// so a failing property-test seed replays exactly.
#include "labmods/zns_driver.h"

#include <gtest/gtest.h>

#include "core/client.h"
#include "core/debug_harness.h"
#include "core/runtime.h"
#include "dst/schedule.h"
#include "labmods/genericfs.h"
#include "labmods/labfs.h"
#include "simdev/registry.h"

namespace labstor::labmods {
namespace {

class ZnsTest : public ::testing::Test {
 protected:
  ZnsTest() {
    auto dev = devices_.Create(simdev::DeviceParams::NvmeP3700(16 << 20));
    EXPECT_TRUE(dev.ok());
    device_ = *dev;
    core::ModContext ctx;
    ctx.devices = &devices_;
    auto params = yaml::Parse("zone_size_mb: 1\n");
    EXPECT_TRUE(params.ok());
    auto harness = core::DebugHarness::Create("zns_driver", *params, ctx);
    EXPECT_TRUE(harness.ok()) << harness.status().ToString();
    harness_ = std::move(*harness);
    zns_ = dynamic_cast<ZnsDriverMod*>(&harness_->mod());
    EXPECT_NE(zns_, nullptr);
  }

  Status Op(ipc::OpCode op, uint64_t offset, std::span<uint8_t> data) {
    ipc::Request req;
    req.op = op;
    req.offset = offset;
    req.length = data.size();
    req.data = data.empty() ? nullptr : data.data();
    const Status st = harness_->Feed(req);
    last_result_ = req.result_u64;
    return st;
  }

  simdev::DeviceRegistry devices_;
  simdev::SimDevice* device_ = nullptr;
  std::unique_ptr<core::DebugHarness> harness_;
  ZnsDriverMod* zns_ = nullptr;
  uint64_t last_result_ = 0;
};

TEST_F(ZnsTest, ZonesCoverTheDevice) {
  EXPECT_EQ(zns_->num_zones(), 16u);  // 16MB / 1MB zones
  auto z0 = zns_->Zone(0);
  ASSERT_TRUE(z0.ok());
  EXPECT_EQ(z0->start, 0u);
  EXPECT_EQ(z0->write_pointer, 0u);
  EXPECT_EQ(z0->state, ZoneState::kEmpty);
  EXPECT_FALSE(zns_->Zone(99).ok());
}

TEST_F(ZnsTest, SequentialWritesAdvanceThePointer) {
  std::vector<uint8_t> data(4096, 0x11);
  ASSERT_TRUE(Op(ipc::OpCode::kBlkWrite, 0, data).ok());
  ASSERT_TRUE(Op(ipc::OpCode::kBlkWrite, 4096, data).ok());
  auto zone = zns_->Zone(0);
  ASSERT_TRUE(zone.ok());
  EXPECT_EQ(zone->write_pointer, 8192u);
  EXPECT_EQ(zone->state, ZoneState::kOpen);
}

TEST_F(ZnsTest, NonSequentialWriteRejected) {
  std::vector<uint8_t> data(4096, 0x22);
  ASSERT_TRUE(Op(ipc::OpCode::kBlkWrite, 0, data).ok());
  // Skipping ahead violates the write pointer.
  EXPECT_EQ(Op(ipc::OpCode::kBlkWrite, 8192, data).code(),
            StatusCode::kInvalidArgument);
  // Rewriting the start does too.
  EXPECT_EQ(Op(ipc::OpCode::kBlkWrite, 0, data).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(ZnsTest, WriteMayNotCrossZoneBoundary) {
  std::vector<uint8_t> big(2 << 20, 0x33);  // 2MB into a 1MB zone
  EXPECT_EQ(Op(ipc::OpCode::kBlkWrite, 0, big).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(ZnsTest, ZoneFillsToFullAndRejectsMore) {
  std::vector<uint8_t> quarter(256 << 10, 0x44);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(
        Op(ipc::OpCode::kBlkWrite, static_cast<uint64_t>(i) * (256 << 10),
           quarter)
            .ok());
  }
  auto zone = zns_->Zone(0);
  ASSERT_TRUE(zone.ok());
  EXPECT_EQ(zone->state, ZoneState::kFull);
  EXPECT_EQ(Op(ipc::OpCode::kBlkWrite, 1 << 20, quarter).code(),
            StatusCode::kOk);  // next zone is fine
  // Any write aimed into the FULL zone is refused by its state.
  EXPECT_EQ(Op(ipc::OpCode::kBlkWrite, 0, quarter).code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(ZnsTest, AppendReturnsAssignedOffsetAndLandsData) {
  std::vector<uint8_t> a(4096, 0xAA);
  std::vector<uint8_t> b(4096, 0xBB);
  // Appends target the zone containing req.offset; the device picks
  // the actual location.
  ASSERT_TRUE(Op(ipc::OpCode::kZoneAppend, 0, a).ok());
  EXPECT_EQ(last_result_, 0u);
  ASSERT_TRUE(Op(ipc::OpCode::kZoneAppend, 0, b).ok());
  EXPECT_EQ(last_result_, 4096u);
  std::vector<uint8_t> out(4096);
  ASSERT_TRUE(device_->ReadNow(4096, out).ok());
  EXPECT_EQ(out, b);
}

TEST_F(ZnsTest, ResetRewindsAndAllowsRewrite) {
  std::vector<uint8_t> data(4096, 0x55);
  ASSERT_TRUE(Op(ipc::OpCode::kBlkWrite, 0, data).ok());
  ASSERT_TRUE(Op(ipc::OpCode::kZoneReset, 0, {}).ok());
  auto zone = zns_->Zone(0);
  ASSERT_TRUE(zone.ok());
  EXPECT_EQ(zone->write_pointer, 0u);
  EXPECT_EQ(zone->state, ZoneState::kEmpty);
  EXPECT_TRUE(Op(ipc::OpCode::kBlkWrite, 0, data).ok());
}

TEST_F(ZnsTest, ReadBeyondWritePointerRejected) {
  std::vector<uint8_t> data(4096, 0x66);
  ASSERT_TRUE(Op(ipc::OpCode::kBlkWrite, 0, data).ok());
  std::vector<uint8_t> out(4096);
  EXPECT_TRUE(Op(ipc::OpCode::kBlkRead, 0, out).ok());
  EXPECT_EQ(Op(ipc::OpCode::kBlkRead, 4096, out).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(ZnsTest, StateSurvivesUpgrade) {
  std::vector<uint8_t> data(4096, 0x77);
  ASSERT_TRUE(Op(ipc::OpCode::kBlkWrite, 0, data).ok());
  ZnsDriverMod fresh;
  ASSERT_TRUE(fresh.StateUpdate(*zns_).ok());
  auto zone = fresh.Zone(0);
  ASSERT_TRUE(zone.ok());
  EXPECT_EQ(zone->write_pointer, 4096u);
}

// ---------------------------------------------------------------------------
// State machine: explicit open/close/finish, open-zone limits, and
// conventional zones.
// ---------------------------------------------------------------------------

class ZnsLimitTest : public ::testing::Test {
 protected:
  explicit ZnsLimitTest(const char* extra = "max_open_zones: 2\n") {
    auto dev = devices_.Create(simdev::DeviceParams::NvmeP3700(16 << 20));
    EXPECT_TRUE(dev.ok());
    device_ = *dev;
    core::ModContext ctx;
    ctx.devices = &devices_;
    auto params = yaml::Parse(std::string("zone_size_mb: 1\n") + extra);
    EXPECT_TRUE(params.ok());
    auto harness = core::DebugHarness::Create("zns_driver", *params, ctx);
    EXPECT_TRUE(harness.ok()) << harness.status().ToString();
    harness_ = std::move(*harness);
    zns_ = dynamic_cast<ZnsDriverMod*>(&harness_->mod());
    EXPECT_NE(zns_, nullptr);
  }

  Status Op(ipc::OpCode op, uint64_t offset, std::span<uint8_t> data) {
    ipc::Request req;
    req.op = op;
    req.offset = offset;
    req.length = data.size();
    req.data = data.empty() ? nullptr : data.data();
    const Status st = harness_->Feed(req);
    last_result_ = req.result_u64;
    return st;
  }

  static constexpr uint64_t kZone = 1 << 20;

  simdev::DeviceRegistry devices_;
  simdev::SimDevice* device_ = nullptr;
  std::unique_ptr<core::DebugHarness> harness_;
  ZnsDriverMod* zns_ = nullptr;
  uint64_t last_result_ = 0;
};

TEST_F(ZnsLimitTest, OpenZoneLimitEnforcedAcrossOpenPaths) {
  EXPECT_EQ(zns_->max_open_zones(), 2u);
  ASSERT_TRUE(Op(ipc::OpCode::kZoneOpen, 0 * kZone, {}).ok());
  ASSERT_TRUE(Op(ipc::OpCode::kZoneOpen, 1 * kZone, {}).ok());
  EXPECT_EQ(zns_->open_zones(), 2u);
  // Explicit open, implicit open via write, and implicit open via
  // append all draw from the same exhausted pool.
  EXPECT_EQ(Op(ipc::OpCode::kZoneOpen, 2 * kZone, {}).code(),
            StatusCode::kResourceExhausted);
  std::vector<uint8_t> block(4096, 0x42);
  EXPECT_EQ(Op(ipc::OpCode::kBlkWrite, 2 * kZone, block).code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Op(ipc::OpCode::kZoneAppend, 2 * kZone, block).code(),
            StatusCode::kResourceExhausted);
  // Re-opening an already-open zone costs nothing.
  EXPECT_TRUE(Op(ipc::OpCode::kZoneOpen, 0, {}).ok());
  EXPECT_EQ(zns_->open_zones(), 2u);
}

TEST_F(ZnsLimitTest, CloseFinishAndResetReleaseTheSlot) {
  std::vector<uint8_t> block(4096, 0x43);
  ASSERT_TRUE(Op(ipc::OpCode::kBlkWrite, 0 * kZone, block).ok());
  ASSERT_TRUE(Op(ipc::OpCode::kBlkWrite, 1 * kZone, block).ok());
  EXPECT_EQ(zns_->open_zones(), 2u);

  // Close: open -> closed frees the slot; zone 2 can now open.
  ASSERT_TRUE(Op(ipc::OpCode::kZoneClose, 0, {}).ok());
  EXPECT_EQ(zns_->open_zones(), 1u);
  ASSERT_TRUE(Op(ipc::OpCode::kZoneOpen, 2 * kZone, {}).ok());

  // Finish: seals zone 1 (wp jumps to the end) and frees its slot.
  ASSERT_TRUE(Op(ipc::OpCode::kZoneFinish, 1 * kZone, {}).ok());
  auto z1 = zns_->Zone(1);
  ASSERT_TRUE(z1.ok());
  EXPECT_EQ(z1->state, ZoneState::kFull);
  EXPECT_EQ(z1->write_pointer, 1 * kZone + kZone);
  EXPECT_EQ(zns_->open_zones(), 1u);
  EXPECT_TRUE(Op(ipc::OpCode::kZoneFinish, 1 * kZone, {}).ok())
      << "finish is idempotent on a FULL zone";

  // Reset: frees the slot of the still-open zone 2 and empties it.
  ASSERT_TRUE(Op(ipc::OpCode::kZoneReset, 2 * kZone, {}).ok());
  EXPECT_EQ(zns_->open_zones(), 0u);
}

TEST_F(ZnsLimitTest, ClosedZoneResumesWritingAtItsPointer) {
  std::vector<uint8_t> block(4096, 0x44);
  ASSERT_TRUE(Op(ipc::OpCode::kBlkWrite, 0, block).ok());
  ASSERT_TRUE(Op(ipc::OpCode::kZoneClose, 0, {}).ok());
  auto zone = zns_->Zone(0);
  ASSERT_TRUE(zone.ok());
  EXPECT_EQ(zone->state, ZoneState::kClosed);
  EXPECT_EQ(zone->write_pointer, 4096u) << "close must preserve the pointer";
  // Writing at the preserved pointer implicitly reopens the zone.
  ASSERT_TRUE(Op(ipc::OpCode::kBlkWrite, 4096, block).ok());
  zone = zns_->Zone(0);
  ASSERT_TRUE(zone.ok());
  EXPECT_EQ(zone->state, ZoneState::kOpen);
  EXPECT_EQ(zone->write_pointer, 8192u);
}

TEST_F(ZnsLimitTest, IllegalTransitionsRejected) {
  std::vector<uint8_t> block(4096, 0x45);
  // close on EMPTY: nothing to close.
  EXPECT_EQ(Op(ipc::OpCode::kZoneClose, 0, {}).code(),
            StatusCode::kFailedPrecondition);
  // open on FULL: must reset first.
  ASSERT_TRUE(Op(ipc::OpCode::kZoneFinish, 0, {}).ok());
  EXPECT_EQ(Op(ipc::OpCode::kZoneOpen, 0, {}).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Op(ipc::OpCode::kZoneClose, 0, {}).code(),
            StatusCode::kFailedPrecondition);
  // Reset legalizes everything again.
  ASSERT_TRUE(Op(ipc::OpCode::kZoneReset, 0, {}).ok());
  EXPECT_TRUE(Op(ipc::OpCode::kBlkWrite, 0, block).ok());
}

TEST_F(ZnsLimitTest, ZoneManagementOpsOccupyTheDevice) {
  const uint64_t before = device_->stats().zone_mgmt_ops.load();
  ASSERT_TRUE(Op(ipc::OpCode::kZoneFinish, 0, {}).ok());
  ASSERT_TRUE(Op(ipc::OpCode::kZoneReset, 0, {}).ok());
  EXPECT_EQ(device_->stats().zone_mgmt_ops.load(), before + 2);
}

class ZnsConventionalTest : public ZnsLimitTest {
 protected:
  ZnsConventionalTest() : ZnsLimitTest("conventional_zones: 2\n") {}
};

TEST_F(ZnsConventionalTest, ConventionalZonesAllowRandomWrites) {
  EXPECT_EQ(zns_->conventional_zones(), 2u);
  std::vector<uint8_t> block(4096, 0x46);
  // Out-of-order writes inside a conventional zone are legal and
  // consume no open-zone slot.
  ASSERT_TRUE(Op(ipc::OpCode::kBlkWrite, 8192, block).ok());
  ASSERT_TRUE(Op(ipc::OpCode::kBlkWrite, 0, block).ok());
  ASSERT_TRUE(Op(ipc::OpCode::kBlkWrite, 0, block).ok()) << "overwrite ok";
  EXPECT_EQ(zns_->open_zones(), 0u);
  auto zone = zns_->Zone(0);
  ASSERT_TRUE(zone.ok());
  EXPECT_TRUE(zone->conventional);
  EXPECT_EQ(zone->write_pointer, 12288u) << "pointer = high-water mark";
  // Zone management is meaningless on conventional zones.
  EXPECT_EQ(Op(ipc::OpCode::kZoneAppend, 0, block).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Op(ipc::OpCode::kZoneOpen, 0, {}).code(),
            StatusCode::kInvalidArgument);
  // The first sequential zone behaves normally.
  ASSERT_TRUE(Op(ipc::OpCode::kZoneAppend, 2 * kZone, block).ok());
  EXPECT_EQ(last_result_, 2 * kZone);
}

// ---------------------------------------------------------------------------
// Property test: randomized op sequences against a reference model of
// the spec. Seeded and replayable (--dst_seed).
// ---------------------------------------------------------------------------

// The reference model mirrors the *specification* (NVMe ZNS semantics
// as DESIGN.md §13 states them), written independently of the driver's
// control flow: per-zone (state, wp) plus a global open-zone pool.
class RefModel {
 public:
  RefModel(uint64_t zone_size, size_t zones, uint32_t max_open)
      : zone_size_(zone_size), max_open_(max_open), zones_(zones) {}

  struct Zone {
    ZoneState state = ZoneState::kEmpty;
    uint64_t wp = 0;  // relative to the zone start
  };

  // Each Apply returns whether the op must succeed; on success the
  // model transitions. `assigned` receives the append offset.
  bool Write(size_t z) {
    Zone& zone = zones_[z];
    if (zone.state == ZoneState::kFull) return false;
    if (!EnsureOpen(zone)) return false;
    Advance(zone);
    return true;
  }
  bool Append(size_t z, uint64_t* assigned) {
    Zone& zone = zones_[z];
    if (zone.state == ZoneState::kFull) return false;
    if (!EnsureOpen(zone)) return false;
    *assigned = z * zone_size_ + zone.wp;
    Advance(zone);
    return true;
  }
  bool Open(size_t z) {
    Zone& zone = zones_[z];
    if (zone.state == ZoneState::kFull) return false;
    return EnsureOpen(zone);
  }
  bool Close(size_t z) {
    Zone& zone = zones_[z];
    if (zone.state == ZoneState::kClosed) return true;
    if (zone.state != ZoneState::kOpen) return false;
    --open_;
    zone.state = ZoneState::kClosed;
    return true;
  }
  bool Finish(size_t z) {
    Zone& zone = zones_[z];
    if (zone.state == ZoneState::kFull) return true;
    if (zone.state == ZoneState::kOpen) --open_;
    zone.state = ZoneState::kFull;
    zone.wp = zone_size_;
    return true;
  }
  bool ResetZone(size_t z) {
    Zone& zone = zones_[z];
    if (zone.state == ZoneState::kOpen) --open_;
    zone.state = ZoneState::kEmpty;
    zone.wp = 0;
    return true;
  }
  bool Read(size_t z, uint64_t len) { return zones_[z].wp >= len; }

  const Zone& zone(size_t z) const { return zones_[z]; }
  uint32_t open_count() const { return open_; }

 private:
  bool EnsureOpen(Zone& zone) {
    if (zone.state == ZoneState::kOpen) return true;
    if (max_open_ != 0 && open_ >= max_open_) return false;
    zone.state = ZoneState::kOpen;
    ++open_;
    return true;
  }
  void Advance(Zone& zone) {
    zone.wp += 4096;
    if (zone.wp == zone_size_) {
      zone.state = ZoneState::kFull;
      --open_;
    }
  }

  uint64_t zone_size_;
  uint32_t max_open_;
  uint32_t open_ = 0;
  std::vector<Zone> zones_;
};

class ZnsPropertyTest : public ZnsLimitTest {
 protected:
  ZnsPropertyTest() : ZnsLimitTest("max_open_zones: 3\n") {}
};

TEST_F(ZnsPropertyTest, RandomOpSequencesMatchTheReferenceModel) {
  constexpr size_t kZones = 16;
  constexpr int kOps = 400;
  for (const uint64_t seed : dst::SeedList()) {
    SCOPED_TRACE("seed 0x" + std::to_string(seed));
    // Fresh driver per seed: re-init through a fresh fixture would be
    // heavier; a reset sweep restores the all-empty state instead.
    for (size_t z = 0; z < kZones; ++z) {
      ASSERT_TRUE(Op(ipc::OpCode::kZoneReset, z * kZone, {}).ok());
    }
    dst::Schedule sched(seed);
    RefModel model(kZone, kZones, 3);
    std::vector<uint8_t> block(4096, static_cast<uint8_t>(seed));

    for (int i = 0; i < kOps; ++i) {
      const size_t z = sched.Range("zns.zone", 0, kZones - 1);
      const uint64_t kind = sched.Range("zns.op", 0, 6);
      Status st;
      bool expect_ok = false;
      switch (kind) {
        case 0: {  // sequential write at the model's pointer
          const uint64_t wp = model.zone(z).wp;
          expect_ok = model.Write(z);
          // A FULL zone's pointer sits at the zone end; aim the write
          // at the zone start instead so it still targets zone z.
          const uint64_t offset =
              z * kZone + std::min(wp, kZone - 4096);
          st = Op(ipc::OpCode::kBlkWrite, offset, block);
          break;
        }
        case 1: {  // append; device-assigned offset must match
          uint64_t assigned = 0;
          expect_ok = model.Append(z, &assigned);
          st = Op(ipc::OpCode::kZoneAppend, z * kZone, block);
          if (expect_ok && st.ok()) {
            EXPECT_EQ(last_result_, assigned)
                << "append landed off-model in zone " << z << "; "
                << sched.ReplayHint();
          }
          break;
        }
        case 2:
          expect_ok = model.Open(z);
          st = Op(ipc::OpCode::kZoneOpen, z * kZone, {});
          break;
        case 3:
          expect_ok = model.Close(z);
          st = Op(ipc::OpCode::kZoneClose, z * kZone, {});
          break;
        case 4:
          expect_ok = model.Finish(z);
          st = Op(ipc::OpCode::kZoneFinish, z * kZone, {});
          break;
        case 5:
          expect_ok = model.ResetZone(z);
          st = Op(ipc::OpCode::kZoneReset, z * kZone, {});
          break;
        default: {
          std::vector<uint8_t> out(4096);
          expect_ok = model.Read(z, 4096);
          st = Op(ipc::OpCode::kBlkRead, z * kZone, out);
          break;
        }
      }
      ASSERT_EQ(st.ok(), expect_ok)
          << "op " << i << " kind " << kind << " zone " << z << ": "
          << st.ToString() << "; " << sched.ReplayHint();

      // Per-op invariants: the driver agrees with the model zone by
      // zone, and never exceeds the open-zone limit.
      ASSERT_EQ(zns_->open_zones(), model.open_count())
          << sched.ReplayHint();
      ASSERT_LE(zns_->open_zones(), 3u) << sched.ReplayHint();
      auto zone = zns_->Zone(z);
      ASSERT_TRUE(zone.ok());
      EXPECT_EQ(zone->state, model.zone(z).state)
          << "zone " << z << " state diverged; " << sched.ReplayHint();
      EXPECT_EQ(zone->write_pointer - zone->start, model.zone(z).wp)
          << "zone " << z << " pointer diverged; " << sched.ReplayHint();
      ASSERT_LE(zone->write_pointer, zone->start + zone->size)
          << "pointer past the zone end; " << sched.ReplayHint();
    }
  }
}

// ---------------------------------------------------------------------------
// LabFS log-structured placement over the ZNS driver (DESIGN.md §13).
// ---------------------------------------------------------------------------

class ZnsPlacementTest : public ::testing::Test {
 protected:
  static constexpr const char* kStackYaml =
      "mount: fs::/zfs\n"
      "rules:\n"
      "  exec_mode: sync\n"
      "dag:\n"
      "  - mod: labfs\n"
      "    uuid: labfs_zns\n"
      "    params:\n"
      "      log_records_per_worker: 2048\n"
      "      zns_placement: true\n"
      "      zone_size_mb: 1\n"
      "    outputs: [zns_drv]\n"
      "  - mod: zns_driver\n"
      "    uuid: zns_drv\n"
      "    params:\n"
      "      zone_size_mb: 1\n";

  ZnsPlacementTest()
      : devices_(nullptr),
        runtime_(
            [] {
              core::Runtime::Options options;
              options.max_workers = 1;
              return options;
            }(),
            devices_),
        client_(runtime_, ipc::Credentials{100, 1000, 1000}),
        fs_(client_) {
    auto dev = devices_.Create(simdev::DeviceParams::NvmeP3700(16 << 20));
    EXPECT_TRUE(dev.ok());
    device_ = *dev;
    auto spec = core::StackSpec::Parse(kStackYaml);
    EXPECT_TRUE(spec.ok()) << spec.status().ToString();
    auto stack = runtime_.MountStack(*spec, ipc::Credentials{1, 0, 0});
    EXPECT_TRUE(stack.ok()) << stack.status().ToString();
    EXPECT_TRUE(client_.Connect().ok());
    auto mod = runtime_.registry().Find("labfs_zns");
    EXPECT_TRUE(mod.ok());
    labfs_ = dynamic_cast<LabFsMod*>(*mod);
    EXPECT_NE(labfs_, nullptr);
    EXPECT_TRUE(labfs_->zns_placement_enabled());
  }

  simdev::DeviceRegistry devices_;
  core::Runtime runtime_;
  core::Client client_;
  GenericFs fs_;
  simdev::SimDevice* device_ = nullptr;
  LabFsMod* labfs_ = nullptr;
};

TEST_F(ZnsPlacementTest, WriteReadRoundtripThroughZoneAppends) {
  auto fd = fs_.Create("fs::/zfs/a");
  ASSERT_TRUE(fd.ok()) << fd.status().ToString();
  std::vector<uint8_t> data(8192);
  for (size_t i = 0; i < data.size(); ++i) data[i] = static_cast<uint8_t>(i);
  auto wrote = fs_.Write(*fd, data, 0);
  ASSERT_TRUE(wrote.ok()) << wrote.status().ToString();
  EXPECT_EQ(*wrote, data.size());
  EXPECT_EQ(labfs_->placement()->live_blocks(), 2u);

  std::vector<uint8_t> out(8192);
  auto read = fs_.Read(*fd, out, 0);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(out, data);
}

TEST_F(ZnsPlacementTest, PartialOverwriteMergesViaReadModifyWrite) {
  auto fd = fs_.Create("fs::/zfs/rmw");
  ASSERT_TRUE(fd.ok());
  std::vector<uint8_t> base(4096, 0xAB);
  ASSERT_TRUE(fs_.Write(*fd, base, 0).ok());

  // Overwrite 100 bytes in the middle: the block must be appended
  // anew with old bytes around the new range.
  std::vector<uint8_t> patch(100, 0xCD);
  ASSERT_TRUE(fs_.Write(*fd, patch, 50).ok());
  EXPECT_EQ(labfs_->placement()->live_blocks(), 1u)
      << "overwrite relocates, never grows, the mapping";

  std::vector<uint8_t> out(4096);
  ASSERT_TRUE(fs_.Read(*fd, out, 0).ok());
  for (size_t i = 0; i < out.size(); ++i) {
    const uint8_t want = (i >= 50 && i < 150) ? 0xCD : 0xAB;
    ASSERT_EQ(out[i], want) << "byte " << i;
  }
}

TEST_F(ZnsPlacementTest, OverwritesReclaimFullyDeadZones) {
  auto fd = fs_.Create("fs::/zfs/hot");
  ASSERT_TRUE(fd.ok());
  std::vector<uint8_t> block(4096, 0x11);
  // A 1MB zone holds 256 blocks. Rewriting one hot block ~700 times
  // fills zones with dead versions; the policy must recycle them
  // rather than run out of space.
  for (int i = 0; i < 700; ++i) {
    block[0] = static_cast<uint8_t>(i);
    auto wrote = fs_.Write(*fd, block, 0);
    ASSERT_TRUE(wrote.ok()) << "write " << i << ": "
                            << wrote.status().ToString();
  }
  EXPECT_EQ(labfs_->placement()->live_blocks(), 1u);
  EXPECT_GT(labfs_->placement()->zones_reclaimed(), 0u);
  std::vector<uint8_t> out(4096);
  ASSERT_TRUE(fs_.Read(*fd, out, 0).ok());
  EXPECT_EQ(out[0], static_cast<uint8_t>(699));
}

TEST_F(ZnsPlacementTest, UnlinkReturnsZonesToTheReclaimPool) {
  const uint64_t dead_before = labfs_->placement()->dead_zones();
  auto fd = fs_.Create("fs::/zfs/big");
  ASSERT_TRUE(fd.ok());
  std::vector<uint8_t> chunk(64 << 10, 0x77);
  for (int i = 0; i < 24; ++i) {  // 1.5MB: spans more than one zone
    ASSERT_TRUE(
        fs_.Write(*fd, chunk, static_cast<uint64_t>(i) * chunk.size()).ok());
  }
  EXPECT_LT(labfs_->placement()->dead_zones(), dead_before);
  ASSERT_TRUE(fs_.Unlink("fs::/zfs/big").ok());
  EXPECT_EQ(labfs_->placement()->live_blocks(), 0u);
  EXPECT_EQ(labfs_->placement()->dead_zones(), dead_before)
      << "every zone the file occupied must be reclaimable again";
}

TEST_F(ZnsPlacementTest, RecoveryRebuildsValidCountsAndKeepsWriting) {
  auto fd = fs_.Create("fs::/zfs/f");
  ASSERT_TRUE(fd.ok());
  std::vector<uint8_t> data(12288, 0x5C);
  ASSERT_TRUE(fs_.Write(*fd, data, 0).ok());
  const uint64_t live_before = labfs_->placement()->live_blocks();
  ASSERT_EQ(live_before, 3u);

  // Crash-recover the filesystem: inodes rebuild from the metadata
  // log, placement valid counts rebuild from the inodes.
  ASSERT_TRUE(runtime_.registry().RepairAll().ok());
  EXPECT_EQ(labfs_->placement()->live_blocks(), live_before);
  auto size = fs_.StatSize("fs::/zfs/f");
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, data.size());

  // Post-recovery writes activate (and reset) a fully-dead zone; the
  // relocated block must read back, and old content stays reachable.
  std::vector<uint8_t> patch(4096, 0x9E);
  ASSERT_TRUE(fs_.Write(*fd, patch, 4096).ok());
  std::vector<uint8_t> out(12288);
  ASSERT_TRUE(fs_.Read(*fd, out, 0).ok());
  for (size_t i = 0; i < out.size(); ++i) {
    const uint8_t want = (i >= 4096 && i < 8192) ? 0x9E : 0x5C;
    ASSERT_EQ(out[i], want) << "byte " << i;
  }
}

}  // namespace
}  // namespace labstor::labmods

int main(int argc, char** argv) {
  labstor::dst::InitSeeds(&argc, argv);
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
