#include "common/rng.h"

#include <gtest/gtest.h>

#include <vector>

namespace labstor {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, UniformStaysInBound) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.Uniform(17), 17u);
}

TEST(RngTest, RangeInclusive) {
  Rng rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const uint64_t v = rng.Range(3, 5);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 5u);
    saw_lo |= (v == 3);
    saw_hi |= (v == 5);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 100000; ++i) {
    const double v = rng.NextDouble();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 100000.0, 0.5, 0.01);
}

TEST(RngTest, ExponentialMeanApproximatelyCorrect) {
  Rng rng(13);
  double sum = 0;
  constexpr int kSamples = 200000;
  for (int i = 0; i < kSamples; ++i) sum += rng.Exponential(10.0);
  EXPECT_NEAR(sum / kSamples, 10.0, 0.2);
}

TEST(RngTest, ZipfIsSkewedTowardLowRanks) {
  Rng rng(17);
  constexpr uint64_t kN = 1000;
  std::vector<int> counts(kN, 0);
  for (int i = 0; i < 100000; ++i) {
    const uint64_t v = rng.Zipf(kN, 0.9);
    ASSERT_LT(v, kN);
    ++counts[v];
  }
  // Rank 0 must dominate the median rank heavily.
  EXPECT_GT(counts[0], 10 * counts[kN / 2] + 1);
}

TEST(RngTest, ZipfDegenerateN1) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.Zipf(1, 0.9), 0u);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(23);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

}  // namespace
}  // namespace labstor
